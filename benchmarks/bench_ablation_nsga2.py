"""A4 — ablation: NSGA-II Pareto-front quality for the pruning search.

Compares the hypervolume (area-above-front, lower-left-better) of the
NSGA-II pruning front against same-budget random sampling of pruning
masks on the exact 8x8 Wallace multiplier.

Expected shape: NSGA-II's front dominates random sampling's — larger
hypervolume with the same number of netlist evaluations.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.approx.metrics import compute_error_metrics
from repro.approx.nsga2 import Nsga2, Nsga2Config, pareto_front
from repro.approx.pruning import PruningSpace
from repro.circuits.area import netlist_ge
from repro.circuits.synthesis import make_multiplier
from repro.experiments.report import render_table

#: Reference point for hypervolume (area GE, NMED) — anything worse than
#: this contributes nothing.
_REFERENCE = (700.0, 0.1)


def _hypervolume(front: List[Tuple[float, float]]) -> float:
    """2-D hypervolume against the fixed reference (minimisation)."""
    points = sorted(
        (p for p in front if p[0] < _REFERENCE[0] and p[1] < _REFERENCE[1])
    )
    volume = 0.0
    previous_error = _REFERENCE[1]
    for area, error in points:
        if error >= previous_error:
            continue
        volume += (_REFERENCE[0] - area) * (previous_error - error)
        previous_error = error
    return volume


def bench_ablation_nsga2_front_quality(benchmark):
    base = make_multiplier(8, 8, kind="wallace")
    space = PruningSpace(base, max_candidates=64)

    def evaluate(genome):
        circuit = space.apply(genome)
        table = circuit.truth_table()
        metrics = compute_error_metrics(table, 8, 8)
        return (netlist_ge(circuit.netlist), metrics.nmed)

    def run_both():
        search = Nsga2(
            evaluate,
            lambda rng: space.random_genome(rng),
            Nsga2Config(population_size=24, generations=12, seed=0),
        )
        nsga_front = [obj for _, obj in search.run()]
        budget = search.evaluations

        rng = np.random.default_rng(42)
        random_points = []
        for _ in range(budget):
            genome = space.random_genome(rng)
            random_points.append((genome, evaluate(genome)))
        random_front = [obj for _, obj in pareto_front(random_points)]
        return nsga_front, random_front, budget

    nsga_front, random_front, budget = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    nsga_hv = _hypervolume(nsga_front)
    random_hv = _hypervolume(random_front)
    print()
    print(
        render_table(
            ["search", "evaluations", "front_size", "hypervolume"],
            [
                ["NSGA-II", budget, len(nsga_front), round(nsga_hv, 2)],
                ["random", budget, len(random_front), round(random_hv, 2)],
            ],
            title="A4 — pruning-front quality (8x8 Wallace, 64 candidates)",
        )
    )
    assert nsga_hv >= random_hv
