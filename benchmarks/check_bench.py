"""Benchmark gate: bit-identity and speedup assertions over BENCH JSON.

One script usable locally and in CI (it replaces the inline heredoc
gates the workflow used to carry)::

    python benchmarks/check_bench.py BENCH_search.json BENCH_accuracy.json
    python benchmarks/check_bench.py BENCH_search.json --min-speedup 3.0

Each report must carry ``all_identical: true`` (bit-identity is the
*hard* gate — an engine that diverges from the serial reference is
wrong, not slow) and a speedup at or above ``--min-speedup``
(``min_speedup`` for multi-problem reports like ``BENCH_search.json``,
``speedup`` for single-number reports like ``BENCH_accuracy.json``).

The default speedup bar is deliberately loose (1.5x): smoke runs on
shared CI runners see multi-x timer noise, so identity is enforced
strictly and throughput only sanity-checked.  Nightly paper-scale runs
pass a higher bar explicitly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def check_report(path: str, min_speedup: float) -> List[str]:
    """Validate one BENCH report; returns a list of failure messages."""
    failures: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable report ({exc})"]

    name = report.get("benchmark", path)
    identical = report.get("all_identical")
    if identical is not True:
        failures.append(
            f"{name}: all_identical={identical!r} — engine diverged from "
            "the serial reference"
        )

    speedup = report.get("min_speedup", report.get("speedup"))
    if speedup is None:
        failures.append(f"{name}: report carries no speedup field")
    elif speedup < min_speedup:
        failures.append(
            f"{name}: speedup {speedup} below the {min_speedup}x gate"
        )

    if not failures:
        print(f"ok: {name} — identical=True, speedup={speedup}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Enforce bit-identity and speedup gates on BENCH_*.json"
    )
    parser.add_argument(
        "reports", nargs="+", metavar="REPORT.json",
        help="benchmark report files to check",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="minimum acceptable speedup (default: 1.5, the smoke bar)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    for path in args.reports:
        failures.extend(check_report(path, args.min_speedup))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
