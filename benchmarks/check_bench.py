"""Benchmark gate: bit-identity and speedup assertions over BENCH JSON.

One script usable locally and in CI (it replaces the inline heredoc
gates the workflow used to carry)::

    python benchmarks/check_bench.py BENCH_search.json BENCH_accuracy.json
    python benchmarks/check_bench.py BENCH_search.json --min-speedup 3.0
    python benchmarks/check_bench.py BENCH_search.json \
        --max-checkpoint-overhead 0.05

Each report must carry ``all_identical: true`` (bit-identity is the
*hard* gate — an engine that diverges from the serial reference is
wrong, not slow) and a speedup at or above ``--min-speedup``
(``min_speedup`` for multi-problem reports like ``BENCH_search.json``,
``speedup`` for single-number reports like ``BENCH_accuracy.json``).

Reports that price crash safety additionally carry
``max_checkpoint_overhead`` (relative slowdown of the checkpointed
engine run, e.g. ``0.03`` = 3%); pass ``--max-checkpoint-overhead`` to
gate it.  Reports without the field are skipped by that gate, so the
flag is safe to apply to a mixed report list.

Reports from the kernel-aware benchmarks carry ``kernel_speedup`` (the
compiled kernel tier's gain over the numpy tier on the same engine
shape) plus the ``kernels`` availability map; pass
``--min-kernel-speedup`` to gate it.  The flag takes either one global
bar (``--min-kernel-speedup 1.5``) or per-benchmark bars keyed by the
report's ``benchmark`` field (``--min-kernel-speedup
library_build=2.5 accuracy_parallel=1.3``) — the two hot loops have
very different numpy baselines to beat, so one bar would either
water down the circuit gate or fail the LUT gate.  When the report
shows that only the numpy tier was available on the benchmarking
machine (no compiler, no numba) the gate is *skipped with a visible
notice* instead of failing — "nothing to compare" is a provisioning
condition, not a perf regression.  Reports without the field, or
benchmarks without a bar in per-benchmark form, are likewise skipped.

Reports from the task-graph overlap benchmark (``bench_overlap.py``)
carry ``overlap_speedup`` — barriered two-stage dispatch vs pipelined
:class:`~repro.engine.taskgraph.TaskGraph` dispatch on the same work;
pass ``--min-overlap-speedup`` to gate it.  Reports without the field
are skipped by that gate.

Reports that price the self-healing remote fleet carry
``recovery_overhead`` (relative slowdown of a hardened coordinator —
per-task deadlines armed, results journalled — over a plain one on
the same fleet and workload); pass ``--max-recovery-overhead`` to
gate it.  Reports without the field are skipped by that gate.  Like
the checkpoint gate, the bar is loose in CI smoke (short maps make
the ratio noisy) and tight (0.10) in the nightly paper-scale run.

The default speedup bar is deliberately loose (1.5x): smoke runs on
shared CI runners see multi-x timer noise, so identity is enforced
strictly and throughput only sanity-checked.  Nightly paper-scale runs
pass a higher bar explicitly — same for the checkpoint-overhead gate
(loose in smoke, 0.05 nightly per PERF.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def check_report(
    path: str,
    min_speedup: float,
    max_checkpoint_overhead: Optional[float] = None,
    min_kernel_speedup=None,
    min_overlap_speedup: Optional[float] = None,
    max_recovery_overhead: Optional[float] = None,
) -> List[str]:
    """Validate one BENCH report; returns a list of failure messages."""
    failures: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        # distinct from "unreadable": an absent report usually means the
        # benchmark step itself crashed or was skipped, and the gate
        # must say so instead of hinting at a parse problem
        return [
            f"{path}: missing report file — the benchmark that should "
            "have written it did not run (or wrote elsewhere)"
        ]
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable report ({exc})"]

    name = report.get("benchmark", path)
    identical = report.get("all_identical")
    if identical is not True:
        failures.append(
            f"{name}: all_identical={identical!r} — engine diverged from "
            "the serial reference"
        )

    speedup = report.get("min_speedup", report.get("speedup"))
    if speedup is None:
        failures.append(f"{name}: report carries no speedup field")
    elif speedup < min_speedup:
        failures.append(
            f"{name}: speedup {speedup} below the {min_speedup}x gate"
        )

    overhead = report.get("max_checkpoint_overhead")
    if max_checkpoint_overhead is not None and overhead is not None:
        if overhead > max_checkpoint_overhead:
            failures.append(
                f"{name}: checkpoint overhead {overhead} above the "
                f"{max_checkpoint_overhead} gate"
            )

    kernel_speedup = report.get("kernel_speedup")
    kernel_extra = ""
    if isinstance(min_kernel_speedup, dict):
        min_kernel_speedup = min_kernel_speedup.get(name)
    if min_kernel_speedup is not None and kernel_speedup is not None:
        kernels = report.get("kernels") or {}
        compiled = sorted(
            tier
            for tier, available in kernels.items()
            if available and tier != "numpy"
        )
        if not compiled:
            # only numpy was available where the bench ran: there is no
            # compiled tier to hold to the bar, so skip — loudly, so a
            # misprovisioned nightly runner is visible in the log
            print(
                f"notice: {name} — kernel-speedup gate SKIPPED: only the "
                f"numpy tier was available (kernels={kernels})"
            )
        elif kernel_speedup < min_kernel_speedup:
            failures.append(
                f"{name}: kernel_speedup {kernel_speedup} "
                f"(tier {report.get('kernel_tier')!r}) below the "
                f"{min_kernel_speedup}x gate"
            )
        else:
            kernel_extra = (
                f", kernel_speedup={kernel_speedup} "
                f"({report.get('kernel_tier')})"
            )

    overlap_speedup = report.get("overlap_speedup")
    overlap_extra = ""
    if min_overlap_speedup is not None and overlap_speedup is not None:
        if overlap_speedup < min_overlap_speedup:
            failures.append(
                f"{name}: overlap_speedup {overlap_speedup} below the "
                f"{min_overlap_speedup}x gate"
            )
        else:
            overlap_extra = f", overlap_speedup={overlap_speedup}"

    recovery_overhead = report.get("recovery_overhead")
    recovery_extra = ""
    if max_recovery_overhead is not None and recovery_overhead is not None:
        if recovery_overhead > max_recovery_overhead:
            failures.append(
                f"{name}: recovery_overhead {recovery_overhead} above the "
                f"{max_recovery_overhead} gate"
            )
        else:
            recovery_extra = f", recovery_overhead={recovery_overhead}"

    if not failures:
        extra = "" if overhead is None else f", checkpoint_overhead={overhead}"
        print(
            f"ok: {name} — identical=True, speedup={speedup}"
            f"{extra}{kernel_extra}{overlap_extra}{recovery_extra}"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Enforce bit-identity and speedup gates on BENCH_*.json"
    )
    parser.add_argument(
        "reports", nargs="+", metavar="REPORT.json",
        help="benchmark report files to check",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.5,
        help="minimum acceptable speedup (default: 1.5, the smoke bar)",
    )
    parser.add_argument(
        "--max-checkpoint-overhead", type=float, default=None,
        metavar="FRACTION",
        help="maximum acceptable checkpoint overhead as a fraction "
        "(e.g. 0.05 = 5%%); off by default, reports without the "
        "field are skipped",
    )
    parser.add_argument(
        "--min-kernel-speedup", nargs="+", default=None,
        metavar="X | BENCH=X",
        help="minimum acceptable compiled-kernel speedup over the numpy "
        "tier; off by default.  One bare number applies to every "
        "report; NAME=X pairs apply per report 'benchmark' field "
        "(unlisted benchmarks are not gated).  Skipped with a notice "
        "when the report shows only the numpy tier was available, or "
        "carries no kernel_speedup field",
    )
    parser.add_argument(
        "--min-overlap-speedup", type=float, default=None, metavar="X",
        help="minimum acceptable task-graph overlap speedup (barriered "
        "waves vs pipelined dispatch, see bench_overlap.py); off by "
        "default, reports without the overlap_speedup field are "
        "skipped",
    )
    parser.add_argument(
        "--max-recovery-overhead", type=float, default=None,
        metavar="FRACTION",
        help="maximum acceptable self-healing coordinator overhead as a "
        "fraction (e.g. 0.10 = 10%%, the nightly bar); off by "
        "default, reports without the recovery_overhead field are "
        "skipped",
    )
    args = parser.parse_args(argv)

    min_kernel_speedup = None
    if args.min_kernel_speedup is not None:
        values = args.min_kernel_speedup
        if len(values) == 1 and "=" not in values[0]:
            min_kernel_speedup = float(values[0])
        else:
            min_kernel_speedup = {}
            for item in values:
                bench, _, bar = item.partition("=")
                if not bar:
                    parser.error(
                        "--min-kernel-speedup takes one number or "
                        f"NAME=X pairs, got {item!r}"
                    )
                min_kernel_speedup[bench] = float(bar)

    failures: List[str] = []
    for path in args.reports:
        failures.extend(
            check_report(
                path,
                args.min_speedup,
                args.max_checkpoint_overhead,
                min_kernel_speedup,
                args.min_overlap_speedup,
                args.max_recovery_overhead,
            )
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
