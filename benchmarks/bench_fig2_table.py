"""E2 — Fig. 2 table: carbon-footprint reduction of approximate-only designs.

Regenerates the paper's embedded table — average and peak embodied
carbon reduction (%) over the NVDLA sweep for accuracy tiers 0.5 / 1.0 /
2.0 % at 7 / 14 / 28 nm — and prints the same Avg/Peak rows.

Expected shape (paper): single-digit-percent savings that grow with the
allowed accuracy drop; peak always exceeds average; savings differ
across nodes (the paper's exact node ordering depends on unpublished
area/fab assumptions — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.fig2 import fig2_reduction_table


def bench_fig2_reduction_table(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: fig2_reduction_table(settings=settings, network="vgg16"),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    tiers = sorted(settings.drop_tiers_percent)
    for node in settings.nodes_nm:
        previous_avg = -1.0
        for tier in tiers:
            avg, peak = result.reductions[(node, tier)]
            # savings exist and grow with the allowed drop
            assert avg > 0.0, (node, tier)
            assert peak >= avg, (node, tier)
            assert avg >= previous_avg - 1e-9, (node, tier)
            previous_avg = avg
        # the loosest tier lands in the paper's single-digit band
        avg2, peak2 = result.reductions[(node, tiers[-1])]
        assert 1.0 < avg2 < 15.0
        assert 1.5 < peak2 < 20.0
