"""E3 — Fig. 3: normalised embodied carbon across DNNs and nodes.

Regenerates the paper's Fig. 3 bar chart data: for every workload
(VGG16, VGG19, ResNet50, ResNet152) and node (7/14/28 nm), the embodied
carbon of the exact 30-FPS baseline, the approximate-only variant and
the proposed GA-CDP design, normalised to the exact implementation.

Expected shape (paper): approximate-only slightly below 1.0; GA-CDP
substantially below — up to ~65% savings for VGG16 and 30-70% across
the other networks.
"""

from __future__ import annotations

from repro.experiments.fig3 import fig3_comparison


def bench_fig3_comparison(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: fig3_comparison(settings=settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    for (network, node), cell in result.cells.items():
        exact_n, approx_n, ga_n = cell.normalised
        assert exact_n == 1.0
        # approximation alone helps, a little
        assert approx_n < 1.0, (network, node)
        # the full methodology helps a lot
        assert ga_n < approx_n, (network, node)
        # all three satisfy the 30 FPS threshold
        assert cell.exact.fps >= 30.0
        assert cell.approximate_only.fps >= 30.0
        assert cell.ga_cdp.fps >= 30.0
        # and the GA design respects the accuracy budget
        assert cell.ga_cdp.accuracy_drop_percent <= 2.0

    # headline claim: savings in the 30-70% band for every network
    best = result.max_savings_percent()
    for network, saving in best.items():
        assert 25.0 <= saving <= 75.0, (network, saving)
