"""Timed accuracy benchmark: the multi-core accuracy stage end to end.

Runs the behavioural accuracy study (drop per multiplier over the whole
step-1 library) through every execution tier of the accuracy stage:

* the **seed scalar loop** — one full quantised-CNN inference per
  multiplier via ``BehavioralValidator.drop_percent`` (the bit-exact
  reference the speedups are measured against);
* the **serial stack** — one ``QuantCNN.forward_stack`` pass with
  ``stack_workers=1`` (PR 2's batched engine, the parallel reference);
* the **parallel stack** — the same pass thread-tiled over the
  multiplier/row-block axes (``stack_workers=N``);
* the **kernel stack** — the serial stacked pass on the best available
  compiled kernel tier (``auto``; see :mod:`repro.engine.kernels`).
  The numpy tiers are pinned to ``kernel_tier="numpy"`` so the
  compiled tier is measured against a genuine numpy baseline;
* the **backend-sharded stage** — ``drop_percents`` splitting the
  library into sub-stacks dispatched over the ``thread`` and
  ``process`` execution backends (the engine clients' path).

Every tier must return drops bit-identical to the scalar loop (the
hard gate); the report records per-tier timings and speedups.  The
headline ``speedup`` is the end-to-end accuracy-stage gain of the best
tier over the seed scalar loop; ``parallel`` carries the thread-tiling
gain over the serial stack, which only exceeds 1 on multi-core
runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_accuracy_parallel.py \
        [--smoke] [--workers N] [-o PATH]

``--smoke`` shrinks the step-1 library so the run fits CI smoke
budgets; the behavioural task itself stays paper-scale.  The default
output path is ``BENCH_accuracy.json`` — this benchmark supersedes
``bench_accuracy_batch.py`` as the canonical accuracy report (the
batch-vs-scalar numbers are a subset of what it records).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np

from repro.accuracy.behavioral import BehavioralValidator
from repro.approx.library import build_library
from repro.engine.backends import shutdown_shared_pools
from repro.engine.grid import GridConfig, GridRunner
from repro.engine.kernels import (
    get_kernel,
    kernel_availability,
    resolve_kernel_tier,
)
from repro.nn.synthetic import make_task

TRIALS = 3  # best-of-N: shared runners have multi-x timer noise


def _timed_drops(make_validator, multipliers) -> Dict:
    """Best-of-N timing of a library-wide drop evaluation."""
    times: List[float] = []
    drops = None
    for _ in range(TRIALS):
        validator = make_validator()
        validator.exact_accuracy()  # shared baseline outside the timing
        start = time.perf_counter()
        drops = validator.drop_percents(multipliers)
        times.append(time.perf_counter() - start)
    return {"s": round(min(times), 4), "drops": drops}


def _timed_scalar(task, multipliers) -> Dict:
    times: List[float] = []
    drops = None
    for _ in range(TRIALS):
        validator = BehavioralValidator(task=task)
        validator.exact_accuracy()
        start = time.perf_counter()
        drops = [validator.drop_percent(m) for m in multipliers]
        times.append(time.perf_counter() - start)
    return {"s": round(min(times), 4), "drops": drops}


def check_stack_logits(task, library, workers: int) -> bool:
    """Bit-identity of serial vs thread-tiled stacked logits."""
    luts = [m.lut for m in library]
    serial = task.model.forward_stack(task.test_x, luts, stack_workers=1)
    parallel = task.model.forward_stack(
        task.test_x, luts, stack_workers=workers
    )
    return bool(np.array_equal(serial, parallel))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small step-1 library (CI budget); the task stays paper-scale",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread/pool worker count (default: CPU count)",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_accuracy.json", help="report path"
    )
    args = parser.parse_args()
    workers = args.workers if args.workers else (os.cpu_count() or 1)

    start = time.perf_counter()
    if args.smoke:
        library = build_library(
            width=8, seed=0, population=12, generations=5,
            hybrid=False, structural=False,
        )
    else:
        library = build_library()
    library_s = time.perf_counter() - start

    task = make_task()
    multipliers = list(library)

    # warm both execution paths (prepared layers, signed tables) so the
    # timings measure steady-state inference, not first-touch costs
    warm = [m.lut for m in multipliers[:2]]
    task.model.forward_stack(task.test_x, warm)
    task.model.forward(task.test_x, warm[0])

    scalar = _timed_scalar(task, multipliers)
    # the numpy tiers are pinned so a machine where the compiled tier
    # resolves by default still benches a genuine numpy baseline
    stack_serial = _timed_drops(
        lambda: BehavioralValidator(
            task=task, stack_workers=1, kernel_tier="numpy"
        ),
        multipliers,
    )
    stack_parallel = _timed_drops(
        lambda: BehavioralValidator(
            task=task, stack_workers=workers, kernel_tier="numpy"
        ),
        multipliers,
    )
    # None defers to REPRO_KERNEL_TIER (then auto), so a nightly run
    # can force e.g. the numba tier without editing the benchmark
    kernel_tier = resolve_kernel_tier(None)
    stack_kernel = _timed_drops(
        lambda: BehavioralValidator(
            task=task, stack_workers=1, kernel_tier=kernel_tier
        ),
        multipliers,
    )
    backends = {}
    for mode in ("thread", "process"):
        runner = GridRunner(GridConfig(mode=mode, workers=workers))
        backends[mode] = _timed_drops(
            lambda runner=runner: BehavioralValidator(
                task=task, stack_workers=1, kernel_tier="numpy", runner=runner
            ),
            multipliers,
        )
    shutdown_shared_pools()

    reference = scalar["drops"]
    tiers = {
        "stack_serial": stack_serial,
        "stack_parallel": stack_parallel,
        "stack_kernel": stack_kernel,
        **{f"backend_{mode}": entry for mode, entry in backends.items()},
    }
    identical = {name: entry["drops"] == reference for name, entry in tiers.items()}
    logits_identical = check_stack_logits(task, library, workers)

    best_name = min(tiers, key=lambda name: tiers[name]["s"])
    best_s = tiers[best_name]["s"]
    report = {
        "benchmark": "accuracy_parallel",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workers": workers,
        "library_build_s": round(library_s, 2),
        "library_size": len(library),
        "scalar_s": scalar["s"],
        "stack_serial_s": stack_serial["s"],
        "stack_parallel_s": stack_parallel["s"],
        "parallel": {
            "workers": workers,
            "speedup_vs_stack_serial": round(
                stack_serial["s"] / stack_parallel["s"], 2
            ),
        },
        # compiled tier vs the numpy tier on the SAME engine shape
        # (serial stack), so thread scaling cannot flatter it
        "kernel_tier": kernel_tier,
        "kernel_version": get_kernel(kernel_tier).version,
        "kernels": kernel_availability(),
        "stack_kernel_s": stack_kernel["s"],
        "kernel_speedup": round(stack_serial["s"] / stack_kernel["s"], 2),
        "backends": {
            mode: {
                "s": entry["s"],
                "speedup_vs_scalar": round(scalar["s"] / entry["s"], 2),
            }
            for mode, entry in backends.items()
        },
        "best_tier": best_name,
        # headline: end-to-end accuracy-stage gain over the seed scalar
        # loop; the gate bar in CI/nightly applies to this number
        "speedup": round(scalar["s"] / best_s, 2),
        "identical": identical,
        "logits_identical": logits_identical,
        "all_identical": all(identical.values()) and logits_identical,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(json.dumps(report, indent=2))
    if not report["all_identical"]:
        print("FAIL: a parallel tier diverged from the scalar reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
