"""Timed benchmark: cold-cache step-1 library build, batched vs reference.

After PR 4 the step-1 NSGA-II pruning search was the dominant cost of
every cold-cache run (``BENCH_accuracy.json`` recorded ~18 s of
``library_build_s``).  This benchmark times ``build_library`` end to
end — precision-scaled entries, the pruning search, the hybrid
truncated-then-pruned search, and the final Pareto assembly — through
the step-1 execution tiers:

* **reference** — engine mode ``serial``: the per-genome
  ``prune_wires`` + recompile + simulate path (the bit-exact
  reference);
* **batched** — the default engine (``auto`` -> ``batch``): the
  population-batched circuit engine — one compiled pass per NSGA-II
  generation plus the vectorized constant-propagation/liveness area
  sweep;
* **batched_thread** — the same engine with generation shards
  dispatched over the ``thread`` execution backend;
* **batched_kernel** — the batched engine on the best available
  compiled kernel tier (``auto``; see :mod:`repro.engine.kernels`).
  The numpy tiers above are pinned to ``kernel_tier="numpy"`` so the
  compiled tier always has a genuine baseline to beat.

Every tier must produce a bit-identical library (names, areas, both
error-metric blocks, and exhaustive truth tables) — the hard gate; the
report records per-tier best-of-N timings, the headline ``speedup`` of
the batched engine over the reference, and ``kernel_speedup`` — the
compiled tier's gain over the numpy batched tier — plus the active
kernel tier/version and the availability map (so the nightly gate can
tell "compiled tier regressed" apart from "no compiler on this
runner").

Usage::

    PYTHONPATH=src python benchmarks/bench_library_build.py \
        [--smoke] [--trials N] [-o PATH]

``--smoke`` shrinks the search (CI budget) while keeping both the
pruned and hybrid stages; the default is the paper-scale build.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

from repro.approx.library import build_library
from repro.engine.kernels import (
    get_kernel,
    kernel_availability,
    resolve_kernel_tier,
)
from repro.engine.population import EngineConfig


def library_fingerprint(library) -> List[tuple]:
    """Everything identity rests on: entry order, areas, metrics, LUTs."""
    return [
        (
            m.name,
            m.origin,
            m.area_ge,
            m.metrics,
            m.dnn_metrics,
            m.lut.table.tobytes(),
        )
        for m in library
    ]


def timed_build(settings: Dict, engine, trials: int):
    """Best-of-N cold-cache build; returns (seconds, fingerprint)."""
    times: List[float] = []
    fingerprint = None
    for _ in range(trials):
        start = time.perf_counter()
        library = build_library(
            engine=engine, use_cache=False, **settings
        )
        times.append(time.perf_counter() - start)
        fingerprint = library_fingerprint(library)
    return round(min(times), 3), fingerprint, len(library)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller search (CI budget); pruned + hybrid stages kept",
    )
    parser.add_argument(
        "--trials", type=int, default=3,
        help="best-of-N trials per tier (default: 3)",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_library.json", help="report path"
    )
    args = parser.parse_args()

    if args.smoke:
        settings = dict(
            width=8, seed=0, population=16, generations=10,
            hybrid=True, structural=False,
        )
    else:
        settings = dict(width=8, seed=0)

    # the numpy tiers are pinned so a machine where the compiled tier
    # resolves by default still benches a genuine numpy baseline
    reference_s, reference_fp, size = timed_build(
        settings, EngineConfig(mode="serial", kernel_tier="numpy"), args.trials
    )
    batched_s, batched_fp, _ = timed_build(
        settings, EngineConfig(mode="batch", kernel_tier="numpy"), args.trials
    )
    thread_s, thread_fp, _ = timed_build(
        settings,
        EngineConfig(mode="batch", workers=2, kernel_tier="numpy"),
        args.trials,
    )
    # None defers to REPRO_KERNEL_TIER (then auto), so a nightly run
    # can force e.g. the numba tier without editing the benchmark
    kernel_tier = resolve_kernel_tier(None)
    kernel_s, kernel_fp, _ = timed_build(
        settings,
        EngineConfig(mode="batch", kernel_tier=kernel_tier),
        args.trials,
    )

    identical = {
        "batched": batched_fp == reference_fp,
        "batched_thread": thread_fp == reference_fp,
        "batched_kernel": kernel_fp == reference_fp,
    }
    report = {
        "benchmark": "library_build",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "trials": args.trials,
        "settings": {
            key: value
            for key, value in settings.items()
        },
        "library_size": size,
        "reference_s": reference_s,
        "batched_s": batched_s,
        "batched_thread_s": thread_s,
        # headline: cold-cache build gain of the default batched
        # engine over the per-genome reference — deliberately NOT the
        # best tier, so a regression in the plain batched path cannot
        # hide behind the thread-sharded one; the CI/nightly gate bar
        # applies to this number
        "speedup": round(reference_s / batched_s, 2),
        "thread_speedup": round(reference_s / thread_s, 2),
        # the active compiled tier and what else this machine had; the
        # kernel gate compares compiled vs numpy on the SAME engine
        # shape (plain batched), so thread scaling cannot flatter it
        "kernel_tier": kernel_tier,
        "kernel_version": get_kernel(kernel_tier).version,
        "kernels": kernel_availability(),
        "batched_kernel_s": kernel_s,
        "kernel_speedup": round(batched_s / kernel_s, 2),
        "identical": identical,
        "all_identical": all(identical.values()),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(json.dumps(report, indent=2))
    if not report["all_identical"]:
        print("FAIL: a batched tier diverged from the reference library")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
