"""A5 — extension: monolithic vs chiplet embodied carbon.

The paper models monolithic dies; its cited ECO-CHIP work shows
chipletisation changes the embodied-carbon calculus for large designs.
This bench sweeps design sizes and reports the carbon-optimal chiplet
count, locating the monolithic->chiplet crossover.

Expected shape: small edge accelerators stay monolithic (packaging
overhead dominates); the crossover appears for dies large enough that
yield loss outweighs packaging (hundreds of mm^2 at 7 nm).
"""

from __future__ import annotations

from repro.carbon.chiplet import best_chiplet_count, chiplet_embodied_carbon
from repro.experiments.report import render_table

AREAS_MM2 = (5.0, 25.0, 100.0, 300.0, 600.0)


def bench_ablation_chiplet_crossover(benchmark):
    def sweep():
        rows = []
        for area in AREAS_MM2:
            mono = chiplet_embodied_carbon(area, 1, 7).total_g
            count, carbon = best_chiplet_count(area, 7)
            rows.append(
                [
                    area,
                    round(mono, 2),
                    count,
                    round(carbon, 2),
                    round(100.0 * (1.0 - carbon / mono), 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["die_mm2", "monolithic_g", "best_n_chiplets", "best_g", "saving_%"],
            rows,
            title="A5 — monolithic vs chiplet embodied carbon (7 nm)",
        )
    )

    by_area = {row[0]: row for row in rows}
    # edge-scale accelerators stay monolithic
    assert by_area[5.0][2] == 1
    assert by_area[25.0][2] == 1
    # reticle-scale dies prefer chiplets
    assert by_area[600.0][2] > 1
    assert by_area[600.0][3] < by_area[600.0][1]
