"""Cell functions for the remote-backend benchmarks.

A top-level module (not the benchmark script itself, whose functions
would pickle as ``__main__`` and fail to resolve in a worker) so
spawned worker daemons can import the cells by ``module.qualname``
reference — the benchmark passes this directory to
``spawn_local_worker(extra_path=...)``.
"""


def spin_probe(value, spins):
    """A compute-weighted pure cell: ``spins`` LCG rounds over ``value``.

    Mimics the shape of real search shards — milliseconds of CPU per
    cell, a single small integer result — so protocol and journal costs
    are priced against representative work, not against no-ops.
    """
    acc = value & 0xFFFFFFFF
    for _ in range(spins):
        acc = (acc * 1664525 + 1013904223) & 0xFFFFFFFF
    return acc
