"""A2 — ablation: GA vs random search at equal evaluation budget.

Justifies the genetic algorithm in step 2: a same-budget uniform random
search over the chromosome space should find clearly worse (or no)
feasible designs.

Expected shape: the GA's best CDP is at least as good as random
search's, usually by a visible margin, and the GA converges within the
first half of its generations.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import render_table
from repro.ga.chromosome import space_for_library
from repro.ga.engine import GeneticAlgorithm
from repro.ga.fitness import FitnessEvaluator


def bench_ablation_ga_vs_random(benchmark, settings, library, predictor):
    space = space_for_library(library)
    evaluator = FitnessEvaluator(
        network="vgg16",
        library=library,
        space=space,
        node_nm=7,
        min_fps=40.0,
        max_drop_percent=1.0,
        predictor=predictor,
    )

    def run_both():
        ga = GeneticAlgorithm(
            space, evaluator.evaluate, settings.ga_config(seed_offset=55)
        )
        outcome = ga.run()

        rng = np.random.default_rng(999)
        random_best = None
        for _ in range(outcome.evaluations):
            result = evaluator.evaluate(space.random_genome(rng))
            if result.feasible and (
                random_best is None or result.cdp < random_best.cdp
            ):
                random_best = result
        return outcome, random_best

    outcome, random_best = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        [
            "GA",
            outcome.evaluations,
            round(outcome.best.cdp, 5),
            round(outcome.best.carbon_g, 3),
            round(outcome.best.fps, 1),
        ],
        [
            "random",
            outcome.evaluations,
            round(random_best.cdp, 5) if random_best else "infeasible",
            round(random_best.carbon_g, 3) if random_best else "-",
            round(random_best.fps, 1) if random_best else "-",
        ],
    ]
    print()
    print(
        render_table(
            ["search", "evals", "best_cdp", "carbon_g", "fps"],
            rows,
            title="A2 — GA vs random search (vgg16 @ 7 nm, 40 FPS, 1% drop)",
        )
    )

    assert outcome.best.feasible
    if random_best is not None:
        assert outcome.best.cdp <= random_best.cdp * 1.001
    assert outcome.converged_generation <= settings.ga_generations
