"""Timed accuracy benchmark: scalar multiplier loop vs batched stack.

Runs the behavioural accuracy study (drop per multiplier over the whole
step-1 library) through

* the **seed scalar loop** — one full quantised-CNN inference per
  multiplier via ``BehavioralValidator.drop_percent``, the reference
  path the seed shipped;
* the **batched engine** — every multiplier scored in one
  ``QuantCNN.forward_stack`` pass via
  ``BehavioralValidator.drop_percents``;

verifies logits, accuracy drops, and ranking agreement are
bit-identical between the two, and writes ``BENCH_accuracy.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_accuracy_batch.py [--smoke] [-o PATH]

``--smoke`` shrinks the step-1 library so the run fits CI smoke
budgets; the behavioural task itself stays paper-scale.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict

import numpy as np

from repro.accuracy.analytical import AnalyticalAccuracyModel
from repro.accuracy.behavioral import BehavioralValidator
from repro.approx.library import build_library
from repro.nn.synthetic import make_task


def time_drops(library, task) -> Dict:
    """Scalar-loop vs batched library-wide drop evaluation."""
    multipliers = list(library)

    # warm both execution paths (prepared layers, allocator pools) so
    # the timings measure steady-state inference, not first-touch costs
    warm = [m.lut for m in multipliers[:2]]
    task.model.forward_stack(task.test_x, warm)
    task.model.forward(task.test_x, warm[0])

    # best-of-N with fresh validators per trial: the shared-CPU dev and
    # CI machines have multi-x timer noise, and min is the standard
    # noise-robust estimator for deterministic workloads
    trials = 3
    scalar_times, batched_times = [], []
    scalar_drops = batched_drops = None
    for _ in range(trials):
        scalar = BehavioralValidator(task=task)
        scalar.exact_accuracy()  # shared baseline outside both timings
        start = time.perf_counter()
        scalar_drops = [scalar.drop_percent(m) for m in multipliers]
        scalar_times.append(time.perf_counter() - start)

        batched = BehavioralValidator(task=task)
        batched.exact_accuracy()
        start = time.perf_counter()
        batched_drops = batched.drop_percents(multipliers)
        batched_times.append(time.perf_counter() - start)
    scalar_s = min(scalar_times)
    batched_s = min(batched_times)

    model = AnalyticalAccuracyModel()
    analytical = [model.drop_percent("vgg16", m) for m in multipliers]
    rho_scalar = scalar.ranking_agreement(multipliers, analytical)
    rho_batched = batched.ranking_agreement(multipliers, analytical)

    return {
        "multipliers": len(multipliers),
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(scalar_s / batched_s, 2),
        "drops_identical": scalar_drops == batched_drops,
        "ranking_agreement": round(rho_batched, 6),
        "ranking_identical": rho_scalar == rho_batched,
    }


def check_logits(library, task) -> bool:
    """Bit-identity of stacked logits against the scalar forward."""
    luts = [m.lut for m in library]
    stacked = task.model.forward_stack(task.test_x, luts)
    return all(
        np.array_equal(stacked[i], task.model.forward(task.test_x, lut))
        for i, lut in enumerate(luts)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small step-1 library (CI budget); the task stays paper-scale",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_accuracy.json", help="report path"
    )
    args = parser.parse_args()

    start = time.perf_counter()
    if args.smoke:
        library = build_library(
            width=8, seed=0, population=12, generations=5,
            hybrid=False, structural=False,
        )
    else:
        library = build_library()
    library_s = time.perf_counter() - start

    task = make_task()
    drops = time_drops(library, task)
    logits_identical = check_logits(library, task)

    report = {
        "benchmark": "accuracy_batch",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "library_build_s": round(library_s, 2),
        "library_size": len(library),
        "drops": drops,
        "logits_identical": logits_identical,
        "speedup": drops["speedup"],
        "all_identical": (
            drops["drops_identical"]
            and drops["ranking_identical"]
            and logits_identical
        ),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(json.dumps(report, indent=2))
    if not report["all_identical"]:
        print("FAIL: batched accuracy diverges from the scalar reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
