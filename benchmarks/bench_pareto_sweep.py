"""P1 — extension: the full constraint-space carbon surface.

Runs GA-CDP on every (FPS threshold x accuracy tier) combination for
VGG16 at 7 nm and prints the resulting embodied-carbon surface plus the
non-dominated (carbon, FPS, drop) frontier.

Expected shape: carbon rises with the FPS requirement and falls with
the allowed accuracy drop; every surface cell meets its constraints.
"""

from __future__ import annotations

from repro.experiments.pareto_sweep import pareto_sweep
from repro.experiments.report import render_table


def bench_pareto_sweep(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: pareto_sweep(settings=settings, network="vgg16", node_nm=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    frontier = result.frontier()
    rows = [
        [
            round(p.fps, 1),
            round(p.accuracy_drop_percent, 2),
            round(p.carbon_g, 3),
            p.config.describe()[:46],
        ]
        for p in sorted(frontier, key=lambda p: p.carbon_g)
    ]
    print()
    print(
        render_table(
            ["fps", "drop_%", "gCO2", "design"],
            rows,
            title="P1 — (carbon, FPS, drop) frontier",
        )
    )

    # constraints hold everywhere
    for (min_fps, max_drop), point in result.cells.items():
        assert point.fps >= min_fps
        assert point.accuracy_drop_percent <= max_drop

    # carbon grows with the FPS requirement at fixed drop
    drops = sorted({d for _, d in result.cells})
    fps_levels = sorted({f for f, _ in result.cells})
    for drop in drops:
        series = [result.cells[(fps, drop)].carbon_g for fps in fps_levels]
        assert series[0] <= series[-1] * 1.05  # monotone up to GA noise

    # looser accuracy budgets never cost more carbon (up to GA noise)
    for fps in fps_levels:
        tight = result.cells[(fps, drops[0])].carbon_g
        loose = result.cells[(fps, drops[-1])].carbon_g
        assert loose <= tight * 1.05
