"""A3 — ablation: pruning-only vs precision-only vs combined libraries.

The paper's step 1 combines gate-level pruning and precision scaling.
This ablation builds single-technique libraries and compares the
multiplier area each technique reaches at the three accuracy tiers.

Expected shape: the combined library dominates (smallest area at every
tier); pruning wins at tight error budgets, precision scaling wins at
loose ones — which is exactly why combining them pays.
"""

from __future__ import annotations

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.errors import AccuracyModelError
from repro.experiments.report import render_table


def _libraries(settings):
    common = dict(
        population=settings.library_population,
        generations=settings.library_generations,
        seed=settings.seed,
    )
    return {
        "pruning_only": build_library(truncations=(), hybrid=False, **common),
        "precision_only": build_library(
            population=12, generations=5, seed=settings.seed, hybrid=False,
            max_candidates=4,  # minimal pruning search; truncations dominate
        ),
        "combined": build_library(**common),
    }


def bench_ablation_multiplier_techniques(benchmark, settings, predictor):
    libraries = benchmark.pedantic(
        lambda: _libraries(settings), rounds=1, iterations=1
    )
    local_predictor = AccuracyPredictor()

    tiers = (0.5, 1.0, 2.0)
    rows = []
    areas = {}
    for name, lib in libraries.items():
        row = [name]
        for tier in tiers:
            try:
                chosen = local_predictor.smallest_feasible("vgg16", lib, tier)
                area = chosen.area_ge
            except AccuracyModelError:
                area = float("nan")
            areas[(name, tier)] = area
            row.append(round(area, 1))
        rows.append(row)
    print()
    print(
        render_table(
            ["library"] + [f"area@{t:g}%" for t in tiers],
            rows,
            title="A3 — smallest feasible multiplier area (GE) per technique",
        )
    )

    for tier in tiers:
        combined = areas[("combined", tier)]
        # the combined library is never worse than either technique alone
        assert combined <= areas[("pruning_only", tier)] + 1e-9
        assert combined <= areas[("precision_only", tier)] + 1e-9
