"""E1 — Fig. 2 scatter: embodied carbon vs performance (VGG16 @ 7 nm).

Regenerates all four series of the paper's Fig. 2 plot: the exact NVDLA
sweep, the approximate-only sweeps at the three accuracy tiers, and the
GA-CDP points at the 30/40/50 FPS thresholds, then prints the (FPS,
gCO2) pairs the figure plots.

Expected shape (paper): exact carbon rises steeply with performance;
Appx curves sit a few percent below exact at the same FPS; GA-CDP
points sit far below the exact curve at the threshold FPS values.
"""

from __future__ import annotations

from repro.experiments.fig2 import fig2_scatter


def bench_fig2_scatter(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: fig2_scatter(settings=settings, network="vgg16", node_nm=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    series = result.series()
    # exact carbon grows monotonically with FPS
    exact = series["exact"]
    assert [c for _, c in exact] == sorted(c for _, c in exact)
    # every approximate series sits at-or-below exact for the same arch
    for tier in settings.drop_tiers_percent:
        appx = series[f"appx_{tier:g}"]
        for (_, exact_c), (_, appx_c) in zip(exact, appx):
            assert appx_c <= exact_c
    # GA-CDP meets each threshold and beats the cheapest exact design
    # that does the same
    for (min_fps, point) in zip(
        settings.fps_thresholds, result.points["ga_cdp"]
    ):
        assert point.fps >= min_fps
        exact_meeting = [c for f, c in exact if f >= min_fps]
        assert exact_meeting, "exact family cannot meet threshold"
        assert point.carbon_g < min(exact_meeting)
