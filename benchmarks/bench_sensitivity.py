"""S1-S3 — extension: sensitivity of the headline result.

Sweeps the three largest exogenous unknowns — fab grid intensity,
defect density, and DRAM bandwidth — and checks that the paper's
conclusion (GA-CDP cuts embodied carbon substantially at the 30 FPS /
2% drop operating point) is robust to all of them.

Expected shape: absolute gCO2 scales with grid intensity and defect
density, but the *relative* GA-CDP saving stays within a broad band;
bandwidth moves the FPS frontier yet the saving persists.
"""

from __future__ import annotations

from repro.experiments.sensitivity import (
    bandwidth_sensitivity,
    grid_sensitivity,
    yield_sensitivity,
)


def bench_sensitivity_grid(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: grid_sensitivity(settings=settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    savings = result.savings()
    assert all(s > 20.0 for s in savings), savings
    # absolute exact carbon rises with grid intensity
    exacts = [row[1] for row in result.rows]
    assert exacts == sorted(exacts)


def bench_sensitivity_yield(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: yield_sensitivity(settings=settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(s > 20.0 for s in result.savings())
    # worse defectivity -> more carbon for the (large) exact baseline
    exacts = [row[1] for row in result.rows]
    assert exacts == sorted(exacts)


def bench_sensitivity_bandwidth(benchmark, settings, library):
    result = benchmark.pedantic(
        lambda: bandwidth_sensitivity(settings=settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(s > 15.0 for s in result.savings())
