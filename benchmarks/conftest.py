"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation (see DESIGN.md's per-experiment index).  Heavy shared state —
the step-1 multiplier library — is built once per session so individual
benchmarks measure their own experiment, not library construction.
"""

from __future__ import annotations

import pytest

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary
from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Paper-scale experiment settings."""
    return DEFAULT_SETTINGS


@pytest.fixture(scope="session")
def library(settings) -> ApproxLibrary:
    """The step-1 multiplier library (built once, then cached)."""
    return settings.library()


@pytest.fixture(scope="session")
def predictor() -> AccuracyPredictor:
    from repro.experiments.common import shared_predictor

    return shared_predictor()
