"""Microbenchmarks of the substrates the experiments lean on.

Not a paper artefact — these measure the building blocks so regressions
in the hot paths (exhaustive netlist simulation, mapping evaluation,
carbon pricing, LUT inference) are caught before they stretch the
experiment harnesses.  These use normal pytest-benchmark timing (many
rounds) since each operation is fast.
"""

from __future__ import annotations

import numpy as np

from repro.accel.nvdla import nvdla_config
from repro.approx.metrics import compute_error_metrics
from repro.carbon.act import embodied_carbon
from repro.circuits.synthesis import make_multiplier
from repro.dataflow.performance import evaluate_network
from repro.nn.zoo import workload


def bench_exhaustive_truth_table(benchmark):
    """65536-case packed simulation of an 8x8 multiplier."""
    circuit = make_multiplier(8, 8, kind="wallace")
    table = benchmark(circuit.truth_table)
    assert table.shape == (65536,)


def bench_error_metrics(benchmark, library):
    """Exhaustive error metrics over a fixed product table."""
    table = library.multipliers[-1].lut.table
    metrics = benchmark(lambda: compute_error_metrics(table, 8, 8))
    assert metrics.nmed > 0


def bench_network_performance_eval(benchmark, library):
    """Uncached VGG16 evaluation on one architecture."""
    config = nvdla_config(512, library.exact, 7)
    net = workload("vgg16")
    perf = benchmark(
        lambda: evaluate_network(net, config, use_cache=False)
    )
    assert perf.fps > 0


def bench_embodied_carbon_eval(benchmark):
    """One Eq. 1 evaluation (wafer geometry + yield + CFPA)."""
    result = benchmark(lambda: embodied_carbon(5.0, 7))
    assert result.total_g > 0


def bench_lut_inference_batch(benchmark, library):
    """Behavioural int8 matmul through an approximate LUT."""
    lut = library.multipliers[-1].lut
    rng = np.random.default_rng(0)
    a = rng.integers(-127, 128, size=(64, 256))
    b = rng.integers(-127, 128, size=(256, 32))

    def run():
        products = lut.signed_product(
            a[:, :, np.newaxis], b[np.newaxis, :, :]
        )
        return products.sum(axis=1)

    out = benchmark(run)
    assert out.shape == (64, 32)
