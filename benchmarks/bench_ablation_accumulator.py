"""A6 — extension: multiplier vs accumulator approximation.

The paper approximates multipliers and leaves the accumulation exact.
This ablation quantifies that design choice: for each LOA accumulator
depth, compare its accuracy cost against the multiplier-library entry
with the closest area saving, and report the total area headroom of
each lever.

Expected shape: at matched (small) area savings the accumulator costs
several times more accuracy than the multiplier; and the multiplier
lever's total headroom is an order of magnitude larger — together,
approximating the multiplier first is simply the better trade.
"""

from __future__ import annotations

from repro.accuracy.accumulator import iso_area_comparison
from repro.experiments.report import render_table


def bench_ablation_accumulator_vs_multiplier(benchmark, library, predictor):
    def sweep():
        return [
            iso_area_comparison("vgg16", bits, library, predictor)
            for bits in (2, 4, 6)
        ]

    comparisons = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            c["approx_bits"],
            round(c["area_saving_ge"], 1),
            round(c["accumulator_drop_percent"], 3),
            c["multiplier_name"][:20],
            round(c["multiplier_area_saving_ge"], 1),
            round(c["multiplier_drop_percent"], 3),
        ]
        for c in comparisons
    ]
    print()
    print(
        render_table(
            ["acc_bits", "acc_save_GE", "acc_drop_%",
             "mult_entry", "mult_save_GE", "mult_drop_%"],
            rows,
            title="A6 — accumulator vs multiplier approximation (vgg16)",
        )
    )

    for c in comparisons:
        assert (
            c["multiplier_drop_percent"] <= c["accumulator_drop_percent"]
        ), c
    # total headroom: the multiplier library spans far more area
    max_mult_saving = library.exact.area_ge - min(m.area_ge for m in library)
    assert max_mult_saving > 5 * max(c["area_saving_ge"] for c in comparisons)
