"""A1 — ablation: deadline-CDP vs pure-CDP fitness.

DESIGN.md calls out the fitness interpretation as a key design choice:
the paper's GA-CDP points sit *at* the FPS thresholds, which implies
performance beyond the application deadline earns nothing (deadline-
CDP).  This ablation runs both fitness modes on the same problem and
prints the resulting designs.

Expected shape: pure CDP chases FPS far past the threshold at higher
embodied carbon; deadline CDP stops at the threshold with lower carbon.
"""

from __future__ import annotations

from repro.core.designer import CarbonAwareDesigner
from repro.experiments.report import render_table


def _run(mode: str, settings, library, predictor):
    designer = CarbonAwareDesigner(
        network="resnet50",
        node_nm=7,
        min_fps=30.0,
        max_drop_percent=2.0,
        library=library,
        predictor=predictor,
        ga_config=settings.ga_config(seed_offset=77),
        fitness_mode=mode,
    )
    return designer.run().best


def bench_ablation_fitness_mode(benchmark, settings, library, predictor):
    results = benchmark.pedantic(
        lambda: {
            mode: _run(mode, settings, library, predictor)
            for mode in ("deadline_cdp", "pure_cdp")
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            mode,
            point.config.n_pes,
            round(point.fps, 1),
            round(point.carbon_g, 3),
            round(point.cdp, 5),
        ]
        for mode, point in results.items()
    ]
    print()
    print(
        render_table(
            ["fitness", "PEs", "FPS", "carbon_g", "cdp_gs"],
            rows,
            title="A1 — fitness-mode ablation (resnet50 @ 7 nm, 30 FPS)",
        )
    )

    deadline = results["deadline_cdp"]
    pure = results["pure_cdp"]
    assert deadline.fps >= 30.0 and pure.fps >= 30.0
    # deadline mode finds the cleaner design; pure mode the faster one
    assert deadline.carbon_g <= pure.carbon_g
    assert pure.fps >= deadline.fps
