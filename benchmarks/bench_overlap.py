"""Timed overlap benchmark: barriered waves vs task-graph pipelining.

Models the engine's two-stage shape — a "grid" stage producing values
and an "accuracy" stage consuming them per item — with one straggler
cell per stage *on different items*, which is exactly the case where
the legacy barriered dispatch (finish every stage-A shard, then submit
stage B) idles workers:

* **barriered** — submit all stage-A shards, gather, then submit all
  stage-B shards: wall-clock is the sum of the two stage makespans,
  and the straggler in each stage holds the whole pool hostage;
* **overlapped** — a :class:`repro.engine.taskgraph.TaskGraph` submits
  each item's stage-B shard the moment *its own* stage-A future
  resolves, so the fast items' accuracy work fills the workers while
  the stragglers run.

Both paths run over one 2-worker thread session and must return
bit-identical per-item results (stage B genuinely consumes stage A's
values).  With the default delays the overlapped schedule packs the
pool perfectly, an expected ~1.5x; CI gates ``overlap_speedup`` at
1.2x via ``check_bench.py --min-overlap-speedup``.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap.py [--smoke] [-o PATH]

``--smoke`` halves the sleep scale so the run fits CI smoke budgets;
the schedule shape (and therefore the expected ratio) is unchanged.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List

from repro.engine.backends import ThreadBackend
from repro.engine.taskgraph import EngineSession, TaskGraph

WORKERS = 2

#: Per-item (stage_a_delay, stage_b_delay) in scale units: one straggler
#: per stage, on *different* items — the overlap-friendly shape.
SCHEDULE = [
    (0.6, 0.05),
    (0.05, 0.6),
    (0.05, 0.05),
    (0.05, 0.05),
]


def stage_a_cell(value: int, delay: float) -> int:
    time.sleep(delay)
    return value * value


def stage_b_cell(upstream: int, delay: float) -> int:
    time.sleep(delay)
    return 2 * upstream + 1


def expected_results(values: List[int]) -> List[int]:
    return [2 * value * value + 1 for value in values]


def run_barriered(values: List[int], scale: float) -> List[int]:
    """Stage A fully gathered before any stage-B shard is submitted."""
    with EngineSession(ThreadBackend(WORKERS)) as session:
        futures_a = [
            session.submit(stage_a_cell, [(value, delay_a * scale)])
            for value, (delay_a, _) in zip(values, SCHEDULE)
        ]
        stage_a = session.gather(futures_a)  # the barrier
        futures_b = [
            session.submit(stage_b_cell, [(shard[0], delay_b * scale)])
            for shard, (_, delay_b) in zip(stage_a, SCHEDULE)
        ]
        return [shard[0] for shard in session.gather(futures_b)]


def run_overlapped(values: List[int], scale: float) -> List[int]:
    """Each item's stage B submitted as its own stage A resolves."""
    with EngineSession(ThreadBackend(WORKERS)) as session:
        with TaskGraph(session) as graph:
            tails = []
            for value, (delay_a, delay_b) in zip(values, SCHEDULE):
                head = graph.add(
                    stage_a_cell, cells=[(value, delay_a * scale)]
                )
                tails.append(
                    graph.add(
                        stage_b_cell,
                        after=[head],
                        cells_from=lambda results, d=delay_b * scale: [
                            (results[0][0], d)
                        ],
                    )
                )
            return [tail.result()[0] for tail in tails]


def time_overlap(scale: float, rounds: int) -> Dict:
    values = list(range(len(SCHEDULE)))
    expected = expected_results(values)

    barriered_s = []
    overlapped_s = []
    identical = True
    for _ in range(rounds):
        start = time.perf_counter()
        barriered = run_barriered(values, scale)
        barriered_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        overlapped = run_overlapped(values, scale)
        overlapped_s.append(time.perf_counter() - start)

        identical = identical and barriered == overlapped == expected

    # best-of-rounds on both sides: scheduler noise only ever slows a
    # round down, so the minima are the cleanest schedule comparison
    best_barriered = min(barriered_s)
    best_overlapped = min(overlapped_s)
    return {
        "workers": WORKERS,
        "tasks": 2 * len(SCHEDULE),
        "rounds": rounds,
        "barriered_s": round(best_barriered, 4),
        "overlapped_s": round(best_overlapped, 4),
        "overlap_speedup": round(best_barriered / best_overlapped, 2),
        "identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="halved sleep scale (CI budget); same schedule shape",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_engine.json", help="report path"
    )
    args = parser.parse_args()

    scale = 0.5 if args.smoke else 1.0
    timing = time_overlap(scale=scale, rounds=3)

    report = {
        "benchmark": "engine_overlap",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": scale,
        **timing,
        # the generic check_bench speedup gate reads this field; the
        # dedicated --min-overlap-speedup gate reads overlap_speedup
        "speedup": timing["overlap_speedup"],
        "all_identical": timing["identical"],
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(json.dumps(report, indent=2))
    if not report["all_identical"]:
        print("FAIL: overlapped results diverge from the barriered reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
