"""Timed search benchmark: serial reference vs population engine.

Runs paper-scale GA-CDP searches (default :class:`GaConfig`) through

* the **seed serial path** — ``GeneticAlgorithm`` scoring one genome at
  a time via ``FitnessEvaluator.evaluate``, exactly as the seed did;
* the **engine path** — the same search with generations scored through
  :meth:`FitnessEvaluator.evaluate_population` (vectorized batch
  dataflow evaluation, dedup, memoisation);
* the **checkpointed engine path** — the engine run again with a
  :class:`~repro.engine.checkpoint.CheckpointStore` snapshotting every
  generation, to price the crash-safety tax
  (``checkpoint_overhead``, target <5%% at paper scale);

verifies all three return bit-identical outcomes, and writes the
``BENCH_search.json`` perf trajectory consumed by CI and PERF.md.

Usage::

    PYTHONPATH=src python benchmarks/bench_search_engine.py [--smoke] [-o PATH]

``--smoke`` shrinks the step-1 library so the whole run fits in CI
smoke budgets; the GA problems themselves stay paper-scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List

import numpy as np

from repro.approx.library import build_library
from repro.approx.nsga2 import fast_non_dominated_sort, pareto_front
from repro.dataflow.performance import clear_performance_cache
from repro.engine.backends import (
    CoordinatorConfig,
    RemoteCoordinator,
    spawn_local_worker,
)
from repro.engine.checkpoint import CheckpointStore, checkpoint_fingerprint
from repro.engine.population import EngineConfig, PopulationEvaluator
from repro.engine.vectorized import fast_non_dominated_sort_np, pareto_front_np
from repro.ga.chromosome import space_for_library
from repro.ga.engine import GaConfig, GeneticAlgorithm
from repro.ga.fitness import FitnessEvaluator

#: This directory — workers need it on PYTHONPATH to resolve
#: ``bench_cells`` cell functions pickled by reference.
_HERE = os.path.dirname(os.path.abspath(__file__))

#: (network, min FPS, max drop %, seed) — one GA-CDP problem each.
PROBLEMS = [
    ("vgg16", 40.0, 1.0, 1),
    ("resnet50", 30.0, 2.0, 2),
    ("vgg19", 50.0, 1.0, 3),
]


def _evaluator(library, space, network, min_fps, max_drop):
    return FitnessEvaluator(
        network=network,
        library=library,
        space=space,
        node_nm=7,
        min_fps=min_fps,
        max_drop_percent=max_drop,
    )


def _outcome_key(outcome):
    return (
        outcome.best.genome,
        outcome.best.cdp,
        outcome.best.carbon_g,
        outcome.best.fps,
        outcome.evaluations,
        tuple(record.cdp for record in outcome.history),
    )


def time_search(library, smoke: bool) -> List[Dict]:
    space = space_for_library(library)
    config = GaConfig()  # paper-scale: population 24, 30 generations
    rows = []
    for network, min_fps, max_drop, seed in PROBLEMS[: 1 if smoke else None]:
        ga_config = GaConfig(
            population_size=config.population_size,
            generations=config.generations,
            seed=seed,
        )

        clear_performance_cache()
        serial_eval = _evaluator(library, space, network, min_fps, max_drop)
        start = time.perf_counter()
        serial = GeneticAlgorithm(space, serial_eval.evaluate, ga_config).run()
        serial_s = time.perf_counter() - start

        clear_performance_cache()
        engine_eval = _evaluator(library, space, network, min_fps, max_drop)
        population_evaluate = PopulationEvaluator(
            engine_eval.evaluate,
            batch_evaluate=engine_eval.evaluate_population,
            config=EngineConfig(mode="batch"),
        )
        start = time.perf_counter()
        engine = GeneticAlgorithm(
            space,
            engine_eval.evaluate,
            ga_config,
            population_evaluate=population_evaluate,
        ).run()
        engine_s = time.perf_counter() - start

        clear_performance_cache()
        ckpt_eval = _evaluator(library, space, network, min_fps, max_drop)
        ckpt_evaluate = PopulationEvaluator(
            ckpt_eval.evaluate,
            batch_evaluate=ckpt_eval.evaluate_population,
            config=EngineConfig(mode="batch"),
        )
        with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt_dir:
            store = CheckpointStore(
                ckpt_dir,
                name=f"bench-{network}-s{seed}",
                fingerprint=checkpoint_fingerprint(
                    "bench-search", network, min_fps, max_drop, seed
                ),
            )
            start = time.perf_counter()
            checkpointed = GeneticAlgorithm(
                space,
                ckpt_eval.evaluate,
                ga_config,
                population_evaluate=ckpt_evaluate,
                checkpoint=store,
            ).run()
            checkpoint_s = time.perf_counter() - start

        rows.append(
            {
                "network": network,
                "min_fps": min_fps,
                "max_drop_percent": max_drop,
                "seed": seed,
                "serial_s": round(serial_s, 4),
                "engine_s": round(engine_s, 4),
                "checkpoint_s": round(checkpoint_s, 4),
                "speedup": round(serial_s / engine_s, 2),
                "checkpoint_overhead": round(checkpoint_s / engine_s - 1, 4),
                "identical": (
                    _outcome_key(serial)
                    == _outcome_key(engine)
                    == _outcome_key(checkpointed)
                ),
                "evaluations": serial.evaluations,
                "best_cdp": serial.best.cdp,
            }
        )
    return rows


def time_recovery_overhead(smoke: bool) -> Dict:
    """Price the self-healing tax on the remote coordinator path.

    Runs the same compute-weighted map workload (``bench_cells.
    spin_probe``: milliseconds of CPU per cell, one small int back)
    through a *plain* coordinator and through a *hardened* one
    (per-task deadlines armed, every shard result journalled via
    fsync) on the same two-worker local fleet.
    ``recovery_overhead = hardened_s / plain_s - 1`` is the fraction of
    remote wall-clock a run pays for crash recovery it hopefully never
    needs.  Shards are sized like real search shards — tens of
    milliseconds of compute, small results — so the per-shard costs
    the hardening adds (deadline bookkeeping, journal fsync ~1 ms)
    are priced against representative work; the gate catches a
    regression that puts journal writes or deadline sweeps on a
    per-cell hot path.
    """
    # deferred: bench_cells lives next to this script, off the normal
    # import path (a separate module so its cells don't pickle as
    # unresolvable ``__main__`` references in the workers)
    if _HERE not in sys.path:
        sys.path.insert(0, _HERE)
    from bench_cells import spin_probe

    cells_per_shard = 25
    spins = 8_000 if smoke else 40_000
    n_shards = 8
    repeats = 2 if smoke else 5

    def shard_batch(tag: int) -> List[List[tuple]]:
        # every map gets *distinct* cells: identical cells would let the
        # journalled coordinator replay instead of execute, and the
        # "overhead" would come out negative
        base = tag * n_shards * cells_per_shard
        return [
            [
                (base + index * cells_per_shard + value, spins)
                for value in range(cells_per_shard)
            ]
            for index in range(n_shards)
        ]

    def timed(config: CoordinatorConfig, tag_base: int) -> float:
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            workers = [
                spawn_local_worker(coordinator.address, extra_path=[_HERE])
                for _ in range(2)
            ]
            # warm the fleet (imports, first-connection costs)
            coordinator.map_shards(spin_probe, shard_batch(tag_base))
            start = time.perf_counter()
            for repeat in range(repeats):
                coordinator.map_shards(
                    spin_probe, shard_batch(tag_base + 1 + repeat)
                )
            elapsed = time.perf_counter() - start
        for worker in workers:
            worker.wait(timeout=15)
        return elapsed

    plain_s = timed(CoordinatorConfig(poll_interval=0.05), tag_base=0)
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as journal_dir:
        hardened_s = timed(
            CoordinatorConfig(
                poll_interval=0.05,
                task_deadline_s=30.0,
                journal_path=os.path.join(journal_dir, "coordinator.journal"),
            ),
            tag_base=repeats + 1,
        )
    return {
        "shards": n_shards,
        "cells_per_shard": cells_per_shard,
        "spins": spins,
        "repeats": repeats,
        "plain_s": round(plain_s, 4),
        "hardened_s": round(hardened_s, 4),
        "recovery_overhead": round(hardened_s / plain_s - 1, 4),
    }


def time_nsga2_ops(n_points: int = 256, trials: int = 20) -> Dict:
    """Microbenchmark of the vectorized NSGA-II internals."""
    rng = np.random.default_rng(0)
    objectives = [
        tuple(float(x) for x in rng.random(2)) for _ in range(n_points)
    ]
    points = [(i, obj) for i, obj in enumerate(objectives)]

    start = time.perf_counter()
    for _ in range(trials):
        reference_fronts = fast_non_dominated_sort(objectives)
        reference_front0 = pareto_front(points)
    reference_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(trials):
        vector_fronts = fast_non_dominated_sort_np(objectives)
        vector_front0 = pareto_front_np(points)
    vector_s = time.perf_counter() - start

    return {
        "n_points": n_points,
        "trials": trials,
        "reference_s": round(reference_s, 4),
        "vectorized_s": round(vector_s, 4),
        "speedup": round(reference_s / vector_s, 2),
        "identical": (
            reference_fronts == vector_fronts
            and reference_front0 == vector_front0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small step-1 library and a single GA problem (CI budget)",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_search.json", help="report path"
    )
    args = parser.parse_args()

    start = time.perf_counter()
    if args.smoke:
        library = build_library(
            width=8, seed=0, population=12, generations=5,
            hybrid=False, structural=False,
        )
    else:
        library = build_library()
    library_s = time.perf_counter() - start

    searches = time_search(library, smoke=args.smoke)
    ops = time_nsga2_ops()
    recovery = time_recovery_overhead(smoke=args.smoke)

    speedups = [row["speedup"] for row in searches]
    overheads = [row["checkpoint_overhead"] for row in searches]
    report = {
        "benchmark": "search_engine",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "library_build_s": round(library_s, 2),
        "library_size": len(library),
        "ga_searches": searches,
        "nsga2_ops": ops,
        "remote_recovery": recovery,
        "min_speedup": min(speedups),
        "max_checkpoint_overhead": max(overheads),
        "recovery_overhead": recovery["recovery_overhead"],
        "all_identical": all(row["identical"] for row in searches)
        and ops["identical"],
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(json.dumps(report, indent=2))
    if not report["all_identical"]:
        print("FAIL: engine results diverge from the serial reference")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
