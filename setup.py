"""Legacy shim so ``pip install -e . --no-use-pep517`` works offline.

The environment ships setuptools without the ``wheel`` package, which
modern PEP 517 editable installs require.  All real metadata lives in
pyproject.toml; this file only enables the legacy develop-mode path.
"""
from setuptools import setup

setup()
