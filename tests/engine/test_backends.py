"""Tests for the pluggable execution-backend layer.

Covers the backend protocol (every strategy returns
``[[fn(*cell) for cell in shard] for shard in shards]``), the remote
coordinator/worker wire protocol (handshake, version rejection), and
the remote backend's fault tolerance: a worker killed mid-grid has its
shard reassigned and the run still returns the serial reference
results; a worker joining mid-run picks up remaining shards.
"""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import remote_cells
from repro.engine.backends import (
    MAX_REQUEUES,
    ProcessBackend,
    RemoteCoordinator,
    SerialBackend,
    ThreadBackend,
    backend_names,
    create_backend,
    parse_address,
    recv_msg,
    register_backend,
    send_msg,
    spawn_local_worker,
)
from repro.engine.grid import ExecutionPlan, GridConfig, GridRunner
from repro.errors import ExperimentError

HERE = os.path.dirname(os.path.abspath(__file__))

CELLS = [(value, 100) for value in range(9)]
SHARDS = [CELLS[:3], CELLS[3:4], CELLS[4:]]
EXPECTED = [[value * value + 100 for value, _ in shard] for shard in SHARDS]


@pytest.fixture(autouse=True)
def worker_pythonpath(monkeypatch):
    """Let spawned workers import ``remote_cells`` by reference."""
    existing = os.environ.get("PYTHONPATH")
    merged = HERE if not existing else HERE + os.pathsep + existing
    monkeypatch.setenv("PYTHONPATH", merged)


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "task", "task_id": 3, "cells": [(1, 2)] * 100}
            send_msg(left, message)
            assert recv_msg(right) == message
        finally:
            left.close()
            right.close()

    def test_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_msg(right) is None
        finally:
            right.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        for bad in ("localhost", ":80", "host:", "host:abc"):
            with pytest.raises(ExperimentError, match="HOST:PORT"):
                parse_address(bad)


class TestLocalBackends:
    def test_registry_names(self):
        assert set(backend_names()) >= {"serial", "thread", "process", "remote"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="unknown execution backend"):
            create_backend("banana")

    def test_late_registered_backend_is_a_valid_grid_mode(self):
        """Plugins registered after import work end to end."""
        from repro.engine import backends as backends_module

        register_backend(
            "echo", lambda workers, coordinator, spawn: SerialBackend()
        )
        try:
            runner = GridRunner(GridConfig(mode="echo", workers=2))
            plan = ExecutionPlan.for_cells(remote_cells.square_offset, CELLS)
            assert runner.run(plan) == [
                value * value + 100 for value, _ in CELLS
            ]
        finally:
            backends_module._BACKEND_FACTORIES.pop("echo", None)
        with pytest.raises(ExperimentError, match="unknown grid mode"):
            GridConfig(mode="echo")

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(4), ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_shards_identity(self, backend):
        result = backend.map_shards(remote_cells.square_offset, SHARDS)
        assert result == EXPECTED

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(4), ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_empty_shards(self, backend):
        assert backend.map_shards(remote_cells.square_offset, []) == []


class TestGridConfigRemote:
    def test_remote_allows_zero_workers(self):
        config = GridConfig(mode="remote", workers=0)
        assert config.resolved_workers() == 0

    def test_local_modes_still_require_workers(self):
        with pytest.raises(ExperimentError, match="workers"):
            GridConfig(mode="process", workers=0)

    def test_coordinator_requires_remote_mode(self):
        with pytest.raises(ExperimentError, match="coordinator"):
            GridConfig(mode="process", coordinator="127.0.0.1:0")
        GridConfig(mode="remote", coordinator="127.0.0.1:0")  # accepted


class TestRemoteBackend:
    def test_batch_plan_remote_identical_to_serial(self):
        """Batched dispatch over the remote fleet == the serial call."""
        from repro.engine.backends import shutdown_remote_backends

        items = [value for value, _ in CELLS]
        expected = remote_cells.square_batch(items, 100)
        runner = GridRunner(GridConfig(mode="remote", workers=2))
        try:
            got = runner.run(
                ExecutionPlan.for_batches(
                    remote_cells.square_batch, items, extra=(100,)
                )
            )
            assert got == expected
        finally:
            shutdown_remote_backends()

    def test_grid_runner_remote_identical_to_serial(self):
        serial = GridRunner(GridConfig(mode="serial"))
        remote = GridRunner(
            GridConfig(mode="remote", workers=2, coordinator="127.0.0.1:0")
        )
        plan = ExecutionPlan.for_cells(remote_cells.square_offset, CELLS)
        expected = serial.run(plan)
        assert remote.run(plan) == expected

    def test_worker_death_reassigns_shard(self, tmp_path):
        """Kill a worker mid-grid; the run completes, results serial-equal."""
        sentinel = str(tmp_path / "die-once")
        cells = [(value, 3, sentinel) for value in range(6)]
        serial_results = [value * value for value in range(6)]
        remote = GridRunner(
            GridConfig(mode="remote", workers=2, coordinator="127.0.0.1:0")
        )
        assert (
            remote.run(ExecutionPlan.for_cells(remote_cells.die_once_at, cells))
            == serial_results
        )
        # the fault actually fired: one worker died holding a cell
        assert os.path.exists(sentinel)

    def test_worker_joining_midrun_picks_up_cells(self):
        """Start the run with no workers; attach one while in flight."""
        worker = None
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            time.sleep(0.3)  # the run is live, nobody is serving it
            assert "result" not in outcome
            worker = spawn_local_worker(coordinator.address)
            thread.join(timeout=60)
            assert outcome["result"] == EXPECTED
        # workers idle between runs; closing the coordinator (the
        # context exit above) is what shuts them down
        worker.wait(timeout=10)

    def test_persistent_fleet_reused_across_runs(self):
        """Consecutive maps share one coordinator and worker fleet."""
        backend = create_backend(
            "remote", coordinator="127.0.0.1:0", spawn=1
        )
        first = backend.map_shards(remote_cells.tag_worker_pid, [[(1,)], [(2,)]])
        second = backend.map_shards(remote_cells.tag_worker_pid, [[(3,)]])
        # same daemon process served both runs (no cold respawn)
        assert first[0][0][1] == second[0][0][1]
        # and the registry hands back the same backend instance
        assert (
            create_backend("remote", coordinator="127.0.0.1:0", spawn=1)
            is backend
        )

    def test_cell_exception_fails_run(self):
        remote = GridRunner(
            GridConfig(mode="remote", workers=1, coordinator="127.0.0.1:0")
        )
        with pytest.raises(ExperimentError, match="deterministic cell failure"):
            remote.run(
                ExecutionPlan.for_cells(
                    remote_cells.raise_value_error, [(1,), (2,)]
                )
            )

    def test_poison_shard_gives_up_after_requeue_cap(self):
        """A cell that always kills its worker must not loop forever."""
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            procs = [
                spawn_local_worker(coordinator.address)
                for _ in range(MAX_REQUEUES + 2)
            ]
            try:
                with pytest.raises(ExperimentError, match="killed"):
                    coordinator.map_shards(
                        remote_cells.die_always, [[(1,)]]
                    )
            finally:
                coordinator.close()
                for proc in procs:
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()


class TestProtocolHandshake:
    def test_version_mismatch_rejected_raw_socket(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5
            ) as sock:
                send_msg(sock, {"type": "hello", "protocol": 999})
                reply = recv_msg(sock)
        assert reply["type"] == "reject"
        assert "999" in reply["reason"]

    def test_bad_handshake_rejected(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5
            ) as sock:
                send_msg(sock, {"type": "ready"})
                reply = recv_msg(sock)
        assert reply["type"] == "reject"
        assert "handshake" in reply["reason"]

    def test_worker_daemon_exits_2_on_version_mismatch(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            process = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.engine.worker",
                    "--connect",
                    coordinator.address,
                    "--protocol",
                    "999",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
        assert process.returncode == 2
        assert "rejected" in process.stderr

    def test_worker_daemon_exits_1_when_unreachable(self):
        process = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.engine.worker",
                "--connect",
                "127.0.0.1:1",
                "--retry",
                "1",
                "--retry-interval",
                "0",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 1
        assert "could not reach coordinator" in process.stderr


class TestConnectBackoff:
    """Workers started before the coordinator binds retry with backoff."""

    def test_backoff_schedule(self):
        from repro.engine.worker import backoff_intervals

        assert backoff_intervals(7, 0.25, 2.0, 5.0) == [
            0.25, 0.5, 1.0, 2.0, 4.0, 5.0,
        ]
        assert backoff_intervals(1, 0.25) == []
        assert backoff_intervals(0, 0.25) == []
        # factor 1.0 recovers the old fixed-interval behaviour
        assert backoff_intervals(4, 0.5, 1.0, 5.0) == [0.5, 0.5, 0.5]

    def test_connect_exhausts_attempts_with_distinct_error(self):
        from repro.engine.worker import connect

        start = time.monotonic()
        with pytest.raises(OSError, match="after 3 attempts"):
            connect("127.0.0.1:1", attempts=3, retry_interval=0.01)
        assert time.monotonic() - start < 5.0  # bounded, no hang

    def test_worker_started_before_coordinator_binds(self):
        """The daemon must survive the pre-bind window and then serve."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # free the port for the late-binding coordinator

        worker = spawn_local_worker(f"127.0.0.1:{port}")
        try:
            time.sleep(1.0)  # the worker is now retrying against nothing
            assert worker.poll() is None, "worker died before the bind"
            with RemoteCoordinator(f"127.0.0.1:{port}") as coordinator:
                assert (
                    coordinator.map_shards(remote_cells.square_offset, SHARDS)
                    == EXPECTED
                )
            worker.wait(timeout=10)
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()


class TestCoordinatorLifecycle:
    def test_closed_coordinator_rejects_runs(self):
        coordinator = RemoteCoordinator("127.0.0.1:0")
        coordinator.close()
        with pytest.raises(ExperimentError, match="closed"):
            coordinator.map_shards(remote_cells.square_offset, SHARDS)

    def test_empty_shards_short_circuit(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            assert coordinator.map_shards(remote_cells.square_offset, []) == []

    def test_stalled_run_aborts_when_fleet_dead(self):
        """liveness probe: all spawned workers gone -> abort, not hang."""
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with pytest.raises(ExperimentError, match="stalled"):
                coordinator.map_shards(
                    remote_cells.square_offset, SHARDS, liveness=lambda: False
                )
            # the abort must not wedge the coordinator: a later run on
            # the same (persistent) instance completes once workers exist
            worker = spawn_local_worker(coordinator.address)
            assert (
                coordinator.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )
        worker.wait(timeout=10)
