"""Tests for the pluggable execution-backend layer.

Covers the backend protocol (every strategy returns
``[[fn(*cell) for cell in shard] for shard in shards]``), the remote
coordinator/worker wire protocol (handshake, version rejection), and
the remote backend's fault tolerance: a worker killed mid-grid has its
shard reassigned and the run still returns the serial reference
results; a worker joining mid-run picks up remaining shards.
"""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import remote_cells
from repro.engine.backends import (
    MAX_REQUEUES,
    PROTOCOL_VERSION,
    CoordinatorConfig,
    FallbackBackend,
    ProcessBackend,
    RemoteBackend,
    RemoteCoordinator,
    RemoteRunError,
    SerialBackend,
    ThreadBackend,
    backend_names,
    canary_probe,
    create_backend,
    parse_address,
    recv_msg,
    register_backend,
    send_msg,
    spawn_local_worker,
)
from repro.engine.grid import ExecutionPlan, GridConfig, GridRunner
from repro.errors import ExperimentError

HERE = os.path.dirname(os.path.abspath(__file__))

CELLS = [(value, 100) for value in range(9)]
SHARDS = [CELLS[:3], CELLS[3:4], CELLS[4:]]
EXPECTED = [[value * value + 100 for value, _ in shard] for shard in SHARDS]


@pytest.fixture(autouse=True)
def worker_pythonpath(monkeypatch):
    """Let spawned workers import ``remote_cells`` by reference."""
    existing = os.environ.get("PYTHONPATH")
    merged = HERE if not existing else HERE + os.pathsep + existing
    monkeypatch.setenv("PYTHONPATH", merged)


class TestFraming:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            message = {"type": "task", "task_id": 3, "cells": [(1, 2)] * 100}
            send_msg(left, message)
            assert recv_msg(right) == message
        finally:
            left.close()
            right.close()

    def test_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_msg(right) is None
        finally:
            right.close()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        for bad in ("localhost", ":80", "host:", "host:abc"):
            with pytest.raises(ExperimentError, match="HOST:PORT"):
                parse_address(bad)


class TestLocalBackends:
    def test_registry_names(self):
        assert set(backend_names()) >= {"serial", "thread", "process", "remote"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="unknown execution backend"):
            create_backend("banana")

    def test_late_registered_backend_is_a_valid_grid_mode(self):
        """Plugins registered after import work end to end."""
        from repro.engine import backends as backends_module

        register_backend(
            "echo", lambda workers, coordinator, spawn: SerialBackend()
        )
        try:
            runner = GridRunner(GridConfig(mode="echo", workers=2))
            plan = ExecutionPlan.for_cells(remote_cells.square_offset, CELLS)
            assert runner.run(plan) == [
                value * value + 100 for value, _ in CELLS
            ]
        finally:
            backends_module._BACKEND_FACTORIES.pop("echo", None)
        with pytest.raises(ExperimentError, match="unknown grid mode"):
            GridConfig(mode="echo")

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(4), ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_map_shards_identity(self, backend):
        result = backend.map_shards(remote_cells.square_offset, SHARDS)
        assert result == EXPECTED

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ThreadBackend(4), ProcessBackend(2)],
        ids=["serial", "thread", "process"],
    )
    def test_empty_shards(self, backend):
        assert backend.map_shards(remote_cells.square_offset, []) == []


class TestGridConfigRemote:
    def test_remote_allows_zero_workers(self):
        config = GridConfig(mode="remote", workers=0)
        assert config.resolved_workers() == 0

    def test_local_modes_still_require_workers(self):
        with pytest.raises(ExperimentError, match="workers"):
            GridConfig(mode="process", workers=0)

    def test_coordinator_requires_remote_mode(self):
        with pytest.raises(ExperimentError, match="coordinator"):
            GridConfig(mode="process", coordinator="127.0.0.1:0")
        GridConfig(mode="remote", coordinator="127.0.0.1:0")  # accepted


class TestRemoteBackend:
    def test_batch_plan_remote_identical_to_serial(self):
        """Batched dispatch over the remote fleet == the serial call."""
        from repro.engine.backends import shutdown_remote_backends

        items = [value for value, _ in CELLS]
        expected = remote_cells.square_batch(items, 100)
        runner = GridRunner(GridConfig(mode="remote", workers=2))
        try:
            got = runner.run(
                ExecutionPlan.for_batches(
                    remote_cells.square_batch, items, extra=(100,)
                )
            )
            assert got == expected
        finally:
            shutdown_remote_backends()

    def test_grid_runner_remote_identical_to_serial(self):
        serial = GridRunner(GridConfig(mode="serial"))
        remote = GridRunner(
            GridConfig(mode="remote", workers=2, coordinator="127.0.0.1:0")
        )
        plan = ExecutionPlan.for_cells(remote_cells.square_offset, CELLS)
        expected = serial.run(plan)
        assert remote.run(plan) == expected

    def test_worker_death_reassigns_shard(self, tmp_path):
        """Kill a worker mid-grid; the run completes, results serial-equal."""
        sentinel = str(tmp_path / "die-once")
        cells = [(value, 3, sentinel) for value in range(6)]
        serial_results = [value * value for value in range(6)]
        remote = GridRunner(
            GridConfig(mode="remote", workers=2, coordinator="127.0.0.1:0")
        )
        assert (
            remote.run(ExecutionPlan.for_cells(remote_cells.die_once_at, cells))
            == serial_results
        )
        # the fault actually fired: one worker died holding a cell
        assert os.path.exists(sentinel)

    def test_worker_joining_midrun_picks_up_cells(self):
        """Start the run with no workers; attach one while in flight."""
        worker = None
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            time.sleep(0.3)  # the run is live, nobody is serving it
            assert "result" not in outcome
            worker = spawn_local_worker(coordinator.address)
            thread.join(timeout=60)
            assert outcome["result"] == EXPECTED
        # workers idle between runs; closing the coordinator (the
        # context exit above) is what shuts them down
        worker.wait(timeout=10)

    def test_persistent_fleet_reused_across_runs(self):
        """Consecutive maps share one coordinator and worker fleet."""
        backend = create_backend(
            "remote", coordinator="127.0.0.1:0", spawn=1
        )
        first = backend.map_shards(remote_cells.tag_worker_pid, [[(1,)], [(2,)]])
        second = backend.map_shards(remote_cells.tag_worker_pid, [[(3,)]])
        # same daemon process served both runs (no cold respawn)
        assert first[0][0][1] == second[0][0][1]
        # and the registry hands back the same backend instance
        assert (
            create_backend("remote", coordinator="127.0.0.1:0", spawn=1)
            is backend
        )

    def test_cell_exception_fails_run(self):
        remote = GridRunner(
            GridConfig(mode="remote", workers=1, coordinator="127.0.0.1:0")
        )
        with pytest.raises(ExperimentError, match="deterministic cell failure"):
            remote.run(
                ExecutionPlan.for_cells(
                    remote_cells.raise_value_error, [(1,), (2,)]
                )
            )

    def test_poison_shard_gives_up_after_requeue_cap(self):
        """A cell that always kills its worker must not loop forever."""
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            procs = [
                spawn_local_worker(coordinator.address)
                for _ in range(MAX_REQUEUES + 2)
            ]
            try:
                with pytest.raises(ExperimentError, match="killed"):
                    coordinator.map_shards(
                        remote_cells.die_always, [[(1,)]]
                    )
            finally:
                coordinator.close()
                for proc in procs:
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()


class TestProtocolHandshake:
    def test_version_mismatch_rejected_raw_socket(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5
            ) as sock:
                send_msg(sock, {"type": "hello", "protocol": 999})
                reply = recv_msg(sock)
        assert reply["type"] == "reject"
        assert "999" in reply["reason"]

    def test_bad_handshake_rejected(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5
            ) as sock:
                send_msg(sock, {"type": "ready"})
                reply = recv_msg(sock)
        assert reply["type"] == "reject"
        assert "handshake" in reply["reason"]

    def test_worker_daemon_exits_2_on_version_mismatch(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            process = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.engine.worker",
                    "--connect",
                    coordinator.address,
                    "--protocol",
                    "999",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
        assert process.returncode == 2
        assert "rejected" in process.stderr

    def test_worker_daemon_exits_1_when_unreachable(self):
        process = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.engine.worker",
                "--connect",
                "127.0.0.1:1",
                "--retry",
                "1",
                "--retry-interval",
                "0",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 1
        assert "could not reach coordinator" in process.stderr


class TestConnectBackoff:
    """Workers started before the coordinator binds retry with backoff."""

    def test_backoff_schedule(self):
        from repro.engine.worker import backoff_intervals

        assert backoff_intervals(7, 0.25, 2.0, 5.0) == [
            0.25, 0.5, 1.0, 2.0, 4.0, 5.0,
        ]
        assert backoff_intervals(1, 0.25) == []
        assert backoff_intervals(0, 0.25) == []
        # factor 1.0 recovers the old fixed-interval behaviour
        assert backoff_intervals(4, 0.5, 1.0, 5.0) == [0.5, 0.5, 0.5]

    def test_connect_exhausts_attempts_with_distinct_error(self):
        from repro.engine.worker import connect

        start = time.monotonic()
        with pytest.raises(OSError, match="after 3 attempts"):
            connect("127.0.0.1:1", attempts=3, retry_interval=0.01)
        assert time.monotonic() - start < 5.0  # bounded, no hang

    def test_worker_started_before_coordinator_binds(self):
        """The daemon must survive the pre-bind window and then serve."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # free the port for the late-binding coordinator

        worker = spawn_local_worker(f"127.0.0.1:{port}")
        try:
            time.sleep(1.0)  # the worker is now retrying against nothing
            assert worker.poll() is None, "worker died before the bind"
            with RemoteCoordinator(f"127.0.0.1:{port}") as coordinator:
                assert (
                    coordinator.map_shards(remote_cells.square_offset, SHARDS)
                    == EXPECTED
                )
            worker.wait(timeout=10)
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait()


class TestCoordinatorLifecycle:
    def test_closed_coordinator_rejects_runs(self):
        coordinator = RemoteCoordinator("127.0.0.1:0")
        coordinator.close()
        with pytest.raises(ExperimentError, match="closed"):
            coordinator.map_shards(remote_cells.square_offset, SHARDS)

    def test_empty_shards_short_circuit(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            assert coordinator.map_shards(remote_cells.square_offset, []) == []

    def test_stalled_run_aborts_when_fleet_dead(self):
        """liveness probe: all spawned workers gone -> abort, not hang."""
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            with pytest.raises(ExperimentError, match="stalled"):
                coordinator.map_shards(
                    remote_cells.square_offset, SHARDS, liveness=lambda: False
                )
            # the abort must not wedge the coordinator: a later run on
            # the same (persistent) instance completes once workers exist
            worker = spawn_local_worker(coordinator.address)
            assert (
                coordinator.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )
        worker.wait(timeout=10)


# -- self-healing fleet: deadlines, quarantine, crash recovery ----------


def _map_in_thread(coordinator, fn, shards):
    """Run a blocking map in a daemon thread; returns (thread, box)."""
    box = {}

    def run():
        try:
            box["result"] = coordinator.map_shards(fn, shards)
        except Exception as exc:  # captured for the test thread
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def _dial_scripted_worker(address, pid):
    """Open a raw protocol-v2 connection posing as worker ``pid``."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=10)
    sock.settimeout(10)
    send_msg(sock, {"type": "hello", "protocol": PROTOCOL_VERSION, "pid": pid})
    welcome = recv_msg(sock)
    assert welcome is not None and welcome["type"] == "welcome"
    return sock, welcome


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestCoordinatorConfig:
    def test_from_env_reads_deadline_and_requeue_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_DEADLINE_S", "2.5")
        monkeypatch.setenv("REPRO_MAX_REQUEUES", "7")
        config = CoordinatorConfig.from_env()
        assert config.task_deadline_s == 2.5
        assert config.max_requeues == 7

    def test_from_env_defaults(self, monkeypatch):
        for name in ("REPRO_TASK_DEADLINE_S", "REPRO_MAX_REQUEUES"):
            monkeypatch.delenv(name, raising=False)
        config = CoordinatorConfig.from_env()
        assert config.task_deadline_s is None
        assert config.max_requeues == MAX_REQUEUES

    def test_junk_or_nonpositive_deadline_disables_deadlines(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TASK_DEADLINE_S", "banana")
        with pytest.warns(RuntimeWarning, match="non-numeric"):
            assert CoordinatorConfig.from_env().task_deadline_s is None
        for junk in ("0", "-3"):
            monkeypatch.setenv("REPRO_TASK_DEADLINE_S", junk)
            assert CoordinatorConfig.from_env().task_deadline_s is None

    def test_validation(self):
        with pytest.raises(ExperimentError, match="task_deadline_s"):
            CoordinatorConfig(task_deadline_s=0)
        with pytest.raises(ExperimentError, match="max_requeues"):
            CoordinatorConfig(max_requeues=-1)
        with pytest.raises(ExperimentError, match="quarantine_threshold"):
            CoordinatorConfig(quarantine_threshold=-1)
        with pytest.raises(ExperimentError, match="quarantine_cooldown_s"):
            CoordinatorConfig(quarantine_cooldown_s=0)


class TestTaskDeadlines:
    def test_hung_worker_revoked_late_result_discarded(self):
        """A deadline revocation requeues the shard; the late (and here
        deliberately *poisoned*) result from the hung worker is acked
        but discarded, so the run's output still matches serial."""
        config = CoordinatorConfig(
            poll_interval=0.05,
            task_deadline_s=0.4,
            quarantine_threshold=0,  # isolate the deadline machinery
        )
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            thread, box = _map_in_thread(
                coordinator, remote_cells.square_offset, SHARDS
            )
            hung, _ = _dial_scripted_worker(coordinator.address, pid=111)
            try:
                send_msg(hung, {"type": "ready"})
                task = recv_msg(hung)
                assert task["type"] == "task"
                # hold the task well past the deadline, then claim a
                # wrong answer for it: if the coordinator recorded it,
                # the map result below could not equal EXPECTED
                assert _wait_until(
                    lambda: coordinator.fleet_health()
                    .get("pid:111", {})
                    .get("timeouts", 0)
                    >= 1
                ), "deadline sweep never revoked the hung assignment"
                send_msg(
                    hung,
                    {
                        "type": "result",
                        "task_id": task["task_id"],
                        "result": [-999] * len(task["cells"]),
                    },
                )
                ack = recv_msg(hung)
                assert ack is not None and ack["type"] == "ack"
            finally:
                hung.close()
            worker = spawn_local_worker(coordinator.address)
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert box.get("result") == EXPECTED
        worker.wait(timeout=10)

    def test_hung_worker_consumes_only_its_own_jobs_budget(self):
        """Deadline strikes charge the timed-out task's job, never a
        co-tenant job sharing the coordinator session."""
        config = CoordinatorConfig(
            poll_interval=0.05,
            task_deadline_s=0.35,
            max_requeues=0,  # a single timeout exhausts the budget
            quarantine_threshold=0,
        )
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            doomed_thread, doomed_box = _map_in_thread(
                coordinator, remote_cells.square_offset, [[(7, 100)]]
            )
            hung, _ = _dial_scripted_worker(coordinator.address, pid=111)
            try:
                send_msg(hung, {"type": "ready"})
                task = recv_msg(hung)
                assert task["type"] == "task"
                assert task["cells"] == [(7, 100)]  # holding job A's shard
                # job B joins the shared queue while job A's worker hangs
                healthy_thread, healthy_box = _map_in_thread(
                    coordinator, remote_cells.square_offset, SHARDS
                )
                worker = spawn_local_worker(coordinator.address)
                healthy_thread.join(timeout=30)
                doomed_thread.join(timeout=30)
            finally:
                hung.close()
            assert healthy_box.get("result") == EXPECTED
            error = doomed_box.get("error")
            assert isinstance(error, RemoteRunError)
            assert error.recoverable
            assert "timed out on 1 workers" in str(error)
        worker.wait(timeout=10)

    def test_hang_once_cell_end_to_end(self, tmp_path):
        """Real daemons: the hung worker is revoked *and* quarantined,
        the shard completes on the surviving worker, and the output is
        bit-identical to serial (the late poisoned result never
        lands)."""
        sentinel = str(tmp_path / "hang.sentinel")
        config = CoordinatorConfig(
            poll_interval=0.05,
            task_deadline_s=0.6,
            quarantine_threshold=1,
            quarantine_cooldown_s=60.0,  # stays quarantined for the test
        )
        shards = [[(value, 3, sentinel, 2.5)] for value in range(4)]
        expected = [[value * value] for value in range(4)]
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            workers = [
                spawn_local_worker(coordinator.address) for _ in range(2)
            ]
            assert (
                coordinator.map_shards(remote_cells.hang_once_at, shards)
                == expected
            )
            health = coordinator.fleet_health()
            hung = [
                snap for snap in health.values() if snap["timeouts"] >= 1
            ]
            assert hung, f"no worker scored a timeout: {health}"
            assert hung[0]["state"] == "quarantined"
        for worker in workers:
            worker.wait(timeout=15)


class TestWorkerQuarantine:
    CONFIG = dict(
        poll_interval=0.05,
        quarantine_threshold=1,
        quarantine_cooldown_s=0.3,
    )

    def test_rejoining_worker_must_pass_canary_before_real_shards(self):
        config = CoordinatorConfig(**self.CONFIG)
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            thread, box = _map_in_thread(
                coordinator, remote_cells.square_offset, SHARDS
            )
            # strike one: die holding a real task -> quarantined
            doomed, _ = _dial_scripted_worker(coordinator.address, pid=222)
            send_msg(doomed, {"type": "ready"})
            assert recv_msg(doomed)["type"] == "task"
            doomed.close()
            assert _wait_until(
                lambda: coordinator.fleet_health().get("pid:222", {}).get(
                    "state"
                )
                == "quarantined"
            )
            # the same pid redials: after the cooldown it must receive
            # exactly one canary before any real shard
            sock, _ = _dial_scripted_worker(coordinator.address, pid=222)
            try:
                send_msg(sock, {"type": "ready"})
                task = recv_msg(sock)
                assert task["type"] == "task"
                assert task["fn"] is canary_probe
                answer = [canary_probe(*cell) for cell in task["cells"]]
                send_msg(
                    sock,
                    {
                        "type": "result",
                        "task_id": task["task_id"],
                        "result": answer,
                    },
                )
                assert recv_msg(sock)["type"] == "ack"
                # re-admitted: now it drains the real queue
                served = 0
                while True:
                    send_msg(sock, {"type": "ready"})
                    task = recv_msg(sock)
                    if task is None or task["type"] != "task":
                        break
                    assert task["fn"] is remote_cells.square_offset
                    send_msg(
                        sock,
                        {
                            "type": "result",
                            "task_id": task["task_id"],
                            "result": [
                                remote_cells.square_offset(*cell)
                                for cell in task["cells"]
                            ],
                        },
                    )
                    assert recv_msg(sock)["type"] == "ack"
                    served += 1
                    if served == len(SHARDS):
                        break
            finally:
                sock.close()
            thread.join(timeout=30)
            assert box.get("result") == EXPECTED
            snap = coordinator.fleet_health()["pid:222"]
            assert snap["state"] == "active"
            assert snap["canaries_passed"] == 1
            assert snap["quarantines"] == 1
            assert snap["completed"] == len(SHARDS) + 1  # canary included

    def test_wrong_canary_answer_requarantines(self):
        config = CoordinatorConfig(**self.CONFIG)
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            thread, box = _map_in_thread(
                coordinator, remote_cells.square_offset, SHARDS
            )
            doomed, _ = _dial_scripted_worker(coordinator.address, pid=333)
            send_msg(doomed, {"type": "ready"})
            assert recv_msg(doomed)["type"] == "task"
            doomed.close()
            assert _wait_until(
                lambda: coordinator.fleet_health().get("pid:333", {}).get(
                    "state"
                )
                == "quarantined"
            )
            sock, _ = _dial_scripted_worker(coordinator.address, pid=333)
            try:
                send_msg(sock, {"type": "ready"})
                task = recv_msg(sock)
                assert task["fn"] is canary_probe
                send_msg(
                    sock,
                    {
                        "type": "result",
                        "task_id": task["task_id"],
                        "result": [0xBAD],  # flunk the probe
                    },
                )
                assert recv_msg(sock)["type"] == "ack"
                snap = coordinator.fleet_health()["pid:333"]
                assert snap["state"] == "quarantined"
                assert snap["quarantines"] == 2
                assert snap["canaries_passed"] == 0
            finally:
                sock.close()
            # a healthy worker still finishes the job
            worker = spawn_local_worker(coordinator.address)
            thread.join(timeout=30)
            assert box.get("result") == EXPECTED
        worker.wait(timeout=10)


class TestCoordinatorCrashRecovery:
    def test_welcome_carries_epoch(self):
        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            sock, welcome = _dial_scripted_worker(
                coordinator.address, pid=444
            )
            sock.close()
        assert welcome["protocol"] == PROTOCOL_VERSION
        assert welcome["epoch"] == coordinator.epoch == 0

    def test_kill_fails_inflight_jobs_recoverably(self):
        coordinator = RemoteCoordinator("127.0.0.1:0")
        thread, box = _map_in_thread(
            coordinator, remote_cells.square_offset, SHARDS
        )
        time.sleep(0.2)
        coordinator.kill()
        assert not coordinator.alive()
        thread.join(timeout=10)
        error = box.get("error")
        assert isinstance(error, RemoteRunError)
        assert error.recoverable
        assert "killed" in str(error)

    def test_journal_replays_results_across_incarnations(self, tmp_path):
        journal = str(tmp_path / "coordinator.journal")
        config = CoordinatorConfig(poll_interval=0.05, journal_path=journal)
        first = RemoteCoordinator("127.0.0.1:0", config=config)
        try:
            assert first.epoch == 0
            worker = spawn_local_worker(first.address)
            assert (
                first.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )
        finally:
            first.close()
        worker.wait(timeout=10)
        assert os.path.exists(journal)
        # the restarted incarnation replays the journal: same map, zero
        # workers, instant results, bumped epoch
        with RemoteCoordinator("127.0.0.1:0", config=config) as second:
            assert second.epoch == 1
            assert (
                second.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )

    def test_remote_backend_resurrects_killed_coordinator(self, tmp_path):
        journal = str(tmp_path / "coordinator.journal")
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # a stable port, so the fleet redials into it
        config = CoordinatorConfig(poll_interval=0.05, journal_path=journal)
        backend = RemoteBackend(
            coordinator=f"127.0.0.1:{port}", spawn=2, config=config
        )
        try:
            assert backend.fleet_health() == {}  # nothing bound yet
            assert (
                backend.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )
            backend._coordinator.kill()
            assert not backend._coordinator.alive()
            # the next call heals the session: fresh incarnation on the
            # same bind, journal replayed, epoch bumped
            assert (
                backend.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )
            assert backend._coordinator.alive()
            assert backend._coordinator.epoch == 1
        finally:
            backend.close()


class TestFallbackConnect:
    class _UnreachablePrimary(SerialBackend):
        name = "unreachable"

        def map_shards(self, fn, shards):
            raise OSError("connection refused")

    def test_connect_failure_drains_all_shards_locally(self):
        backend = FallbackBackend(self._UnreachablePrimary())
        with pytest.warns(RuntimeWarning, match="unreachable at connect"):
            assert (
                backend.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )

    def test_remote_bind_failure_drains_locally(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            backend = FallbackBackend(
                RemoteBackend(coordinator=f"127.0.0.1:{port}", spawn=0)
            )
            with pytest.warns(RuntimeWarning, match="unreachable at connect"):
                assert (
                    backend.map_shards(remote_cells.square_offset, SHARDS)
                    == EXPECTED
                )
        finally:
            blocker.close()
