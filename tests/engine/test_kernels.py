"""Property tests: every compiled kernel tier == the numpy reference.

The kernel registry (:mod:`repro.engine.kernels`) promises that tier
selection changes throughput, never results.  These tests pin that
promise three ways:

* registry behaviour — ``auto`` resolution order, unknown names
  rejected eagerly, known-but-unavailable tiers degrading to numpy
  with a once-per-pair :class:`RuntimeWarning` (including a
  forced-unavailable scenario where every compiled tier is broken);
* bit-identity — for every tier that loads in this environment, the
  batched circuit evaluator (exhaustive truth tables + the
  constant-prop/liveness area sweep) and the stacked LUT matmul must
  equal the pinned-numpy path exactly, over random genomes/netlists
  and random multiplier stacks, including empty populations, single
  members, all-ties genomes, and non-contiguous inputs;
* integration — the per-thread scratch-slab pool, the remote-worker
  handshake availability map, and ``EngineConfig`` validation.

Compiled-tier cases self-skip when no compiled tier loads here (no C
compiler, no numba); the registry/degradation tests run everywhere.
"""

import socket
import warnings

import numpy as np
import pytest

from repro.approx.lut import LutMultiplier
from repro.approx.pruning import PruningSpace
from repro.circuits.batched import BatchedCircuitEvaluator
from repro.circuits.synthesis import make_multiplier
from repro.engine import kernels
from repro.engine.kernels import (
    AUTO_TIER,
    NUMPY_TIER,
    KernelError,
    KernelImpl,
    get_kernel,
    kernel_availability,
    kernel_available,
    kernel_load_error,
    kernel_tier_names,
    register_kernel_tier,
    resolve_kernel_tier,
    self_test_kernel,
    validate_kernel_tier,
)
from repro.engine.population import EngineConfig
from repro.errors import ExperimentError
from repro.nn.inference import (
    _SLAB_POOL,
    _LutStack,
    _lut_matmul_stack,
    clear_slab_pool,
)

AVAILABLE = [name for name in kernel_tier_names() if kernel_available(name)]
COMPILED = [name for name in AVAILABLE if name != NUMPY_TIER]

#: Parametrization over the compiled tiers that load here; a single
#: skipped placeholder keeps the suite green on numpy-only machines.
COMPILED_PARAMS = COMPILED or [
    pytest.param(
        NUMPY_TIER,
        marks=pytest.mark.skip(
            reason="no compiled kernel tier loads in this environment"
        ),
    )
]


@pytest.fixture
def registry_guard():
    """Snapshot and restore the global tier registry around a test."""
    with kernels._LOCK:
        factories = dict(kernels._TIER_FACTORIES)
    try:
        yield
    finally:
        with kernels._LOCK:
            kernels._TIER_FACTORIES.clear()
            kernels._TIER_FACTORIES.update(factories)
        kernels._reset_kernel_registry_for_tests()


def _broken_loader():
    raise KernelError("deliberately broken for tests")


class TestRegistry:
    def test_numpy_always_available(self):
        assert kernel_available(NUMPY_TIER)
        impl = get_kernel(NUMPY_TIER)
        assert impl.name == NUMPY_TIER
        # the numpy tier carries no callables: callers keep their
        # in-tree vectorized path, which stays the reference
        assert impl.simulate_tables is None
        assert impl.sweep_ge is None
        assert impl.lut_tile is None

    def test_names_in_descending_priority(self):
        names = kernel_tier_names()
        assert set(names) >= {NUMPY_TIER, "c", "numba"}
        assert names[-1] == NUMPY_TIER  # priority 0 sorts last

    def test_auto_resolves_highest_priority_available(self):
        resolved = resolve_kernel_tier(AUTO_TIER)
        assert resolved == next(
            name for name in kernel_tier_names() if kernel_available(name)
        )

    def test_availability_map_covers_registry(self):
        availability = kernel_availability()
        assert set(availability) == set(kernel_tier_names())
        assert availability[NUMPY_TIER] is True

    def test_unknown_tier_rejected_everywhere(self):
        with pytest.raises(ExperimentError):
            validate_kernel_tier("bogus")
        with pytest.raises(ExperimentError):
            resolve_kernel_tier("bogus")
        with pytest.raises(ExperimentError):
            EngineConfig(kernel_tier="bogus")
        with pytest.raises(ExperimentError):
            BatchedCircuitEvaluator(
                make_multiplier(2, 2), [], kernel_tier="bogus"
            )

    def test_none_and_auto_always_valid(self):
        validate_kernel_tier(None)
        validate_kernel_tier(AUTO_TIER)
        EngineConfig(kernel_tier=None)
        EngineConfig(kernel_tier=AUTO_TIER)

    def test_unavailable_tier_degrades_with_single_warning(
        self, registry_guard
    ):
        register_kernel_tier("broken", _broken_loader, priority=-10)
        kernels._reset_kernel_registry_for_tests()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel_tier("broken") == NUMPY_TIER
            assert resolve_kernel_tier("broken") == NUMPY_TIER
        relevant = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(relevant) == 1  # warn once per (requested, resolved)
        assert "degrading to 'numpy'" in str(relevant[0].message)
        assert "broken" in (kernel_load_error("broken") or "")

    def test_auto_degrades_to_numpy_when_compiled_forced_unavailable(
        self, registry_guard
    ):
        # force every compiled tier to fail loading: auto must land on
        # numpy and say so, instead of erroring or staying silent
        for name in kernel_tier_names():
            if name != NUMPY_TIER:
                priority = kernels._TIER_FACTORIES[name][0]
                register_kernel_tier(name, _broken_loader, priority=priority)
        kernels._reset_kernel_registry_for_tests()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel_tier(AUTO_TIER) == NUMPY_TIER
            impl = get_kernel(AUTO_TIER)
        assert impl.name == NUMPY_TIER
        relevant = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(relevant) == 1
        assert "no compiled tier" in str(relevant[0].message)

    def test_self_test_rejects_diverging_impl(self):
        reference = get_kernel(NUMPY_TIER)

        def bad_lut_tile(table, w_index, activations, out):
            out.fill(0)  # wrong on the self-test fixture

        with pytest.raises(KernelError):
            # deliberately partial impl: the subject under test is the
            # self-test rejecting it, so the parity rule is suppressed
            self_test_kernel(
                KernelImpl(  # repro: noqa[KRN001]
                    name="bad", version="bad", lut_tile=bad_lut_tile
                )
            )
        # the numpy impl (no callables) passes vacuously
        self_test_kernel(reference)


def make_pair(circuit, tier, max_candidates=48):
    """(space, numpy evaluator, tier evaluator) for one base circuit."""
    space = PruningSpace(circuit, max_candidates=max_candidates)
    candidates = space.tie_candidates()
    return (
        space,
        BatchedCircuitEvaluator(circuit, candidates, kernel_tier=NUMPY_TIER),
        BatchedCircuitEvaluator(circuit, candidates, kernel_tier=tier),
    )


def random_genomes(space, count, seed):
    rng = np.random.default_rng(seed)
    genomes = [space.random_genome(rng) for _ in range(count)]
    genomes.append(tuple([0] * space.genome_length))  # empty genome
    genomes.append(tuple([1] * space.genome_length))  # all-ties genome
    return genomes


class TestCircuitKernelIdentity:
    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    @pytest.mark.parametrize("kind", ["wallace", "dadda", "array"])
    def test_random_population_identity(self, tier, kind):
        space, ref, ker = make_pair(make_multiplier(4, 4, kind=kind), tier)
        genomes = random_genomes(space, 24, seed=hash(kind) % 1000)
        assert np.array_equal(
            ref.truth_tables(genomes), ker.truth_tables(genomes)
        )
        assert np.array_equal(ref.area_ge(genomes), ker.area_ge(genomes))
        ref_tables, ref_areas = ref.evaluate(genomes)
        ker_tables, ker_areas = ker.evaluate(genomes)
        assert ref_tables.dtype == ker_tables.dtype
        assert np.array_equal(ref_tables, ker_tables)
        assert np.array_equal(ref_areas, ker_areas)

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_wide_multiplier_identity(self, tier):
        space, ref, ker = make_pair(
            make_multiplier(6, 6), tier, max_candidates=64
        )
        genomes = random_genomes(space, 12, seed=7)
        assert np.array_equal(
            ref.truth_tables(genomes), ker.truth_tables(genomes)
        )
        assert np.array_equal(ref.area_ge(genomes), ker.area_ge(genomes))

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_matches_prune_then_simulate_reference(self, tier):
        from repro.circuits.area import netlist_ge

        space, _ref, ker = make_pair(make_multiplier(4, 4), tier)
        genomes = random_genomes(space, 6, seed=3)
        tables = ker.truth_tables(genomes)
        areas = ker.area_ge(genomes)
        for i, genome in enumerate(genomes):
            circuit = space.apply(genome)
            assert np.array_equal(
                tables[i], circuit.truth_table().astype(np.uint64)
            )
            assert areas[i] == netlist_ge(circuit.netlist)

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_empty_and_single_member_populations(self, tier):
        space, ref, ker = make_pair(make_multiplier(4, 4), tier)
        empty = ker.truth_tables([])
        assert empty.shape == (0, ref.n_cases)
        assert ker.area_ge([]).shape == (0,)
        single = [space.random_genome(np.random.default_rng(11))]
        assert np.array_equal(
            ref.truth_tables(single), ker.truth_tables(single)
        )
        assert np.array_equal(ref.area_ge(single), ker.area_ge(single))

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_population_rows_independent_of_batch(self, tier):
        space, _ref, ker = make_pair(make_multiplier(4, 4), tier)
        genomes = random_genomes(space, 8, seed=5)
        whole = ker.truth_tables(genomes)
        for i, genome in enumerate(genomes):
            assert np.array_equal(whole[i], ker.truth_tables([genome])[0])


def _random_stack(rng, count, huge=False):
    """Random 8x8 LUT multipliers (optionally int64-table range)."""
    high = (1 << 40) if huge else (1 << 14)
    luts = [
        LutMultiplier(
            rng.integers(0, high, size=1 << 16).astype(np.int64),
            8,
            8,
            name=f"rand{i}",
        )
        for i in range(count)
    ]
    return _LutStack(luts)


class TestLutKernelIdentity:
    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    @pytest.mark.parametrize("huge", [False, True])
    def test_matmul_stack_identity(self, tier, huge):
        rng = np.random.default_rng(42)
        stack = _random_stack(rng, 3, huge=huge)
        expected_dtype = np.int64 if huge else np.int32
        assert stack.tables.dtype == expected_dtype
        for ma in (1, 3):  # shared vs diverged activations
            acts = rng.integers(
                -128, 128, size=(ma, 37, 5), dtype=np.int16
            )
            w_index = (
                (rng.integers(-128, 128, size=(5, 4)) & 0xFF) << 8
            ).astype(np.int64)
            reference = _lut_matmul_stack(
                acts, w_index, stack, workers=1, kernel_tier=NUMPY_TIER
            )
            for workers in (1, 3):
                got = _lut_matmul_stack(
                    acts, w_index, stack, workers=workers, kernel_tier=tier
                )
                assert got.dtype == np.int64
                assert np.array_equal(reference, got)

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_non_contiguous_activations(self, tier):
        rng = np.random.default_rng(9)
        stack = _random_stack(rng, 2)
        base = rng.integers(-128, 128, size=(2, 64, 6), dtype=np.int16)
        acts = base[:, ::2, :]  # non-contiguous view
        assert not acts.flags["C_CONTIGUOUS"]
        w_index = (
            (rng.integers(-128, 128, size=(6, 3)) & 0xFF) << 8
        ).astype(np.int64)
        reference = _lut_matmul_stack(
            acts, w_index, stack, workers=1, kernel_tier=NUMPY_TIER
        )
        got = _lut_matmul_stack(
            acts, w_index, stack, workers=1, kernel_tier=tier
        )
        assert np.array_equal(reference, got)

    @pytest.mark.parametrize("tier", COMPILED_PARAMS)
    def test_cnn_stack_end_to_end(self, tier, synthetic_task):
        task = synthetic_task
        rng = np.random.default_rng(0)
        exact = LutMultiplier.exact(8, 8)
        noisy = LutMultiplier(
            np.maximum(
                exact.table - rng.integers(0, 9, size=exact.table.shape), 0
            ),
            8,
            8,
            name="noisy",
        )
        luts = [exact, noisy]
        x = task.test_x[:40]
        reference = task.model.forward_stack(
            x, luts, stack_workers=1, kernel_tier=NUMPY_TIER
        )
        for workers in (1, 2):
            got = task.model.forward_stack(
                x, luts, stack_workers=workers, kernel_tier=tier
            )
            assert np.array_equal(reference, got)
        ref_acc = task.accuracy_batch(luts, kernel_tier=NUMPY_TIER)
        got_acc = task.accuracy_batch(luts, kernel_tier=tier)
        assert np.array_equal(ref_acc, got_acc)


@pytest.fixture(scope="module")
def synthetic_task():
    from repro.nn.synthetic import make_task

    return make_task(n_train_per_class=6, n_test_per_class=4)


class TestSlabPool:
    def test_reuses_by_key_and_isolates_keys(self):
        clear_slab_pool()
        first = _SLAB_POOL.get("t", (4, 4), np.int32)
        again = _SLAB_POOL.get("t", (4, 4), np.int32)
        assert again is first
        assert _SLAB_POOL.get("t", (4, 4), np.int64) is not first
        assert _SLAB_POOL.get("t", (4, 5), np.int32) is not first
        assert _SLAB_POOL.get("u", (4, 4), np.int32) is not first
        clear_slab_pool()

    def test_bounded_by_clear_on_overflow(self):
        clear_slab_pool()
        for i in range(_SLAB_POOL.MAX_SLABS + 3):
            _SLAB_POOL.get("t", (1, i + 1), np.int8)
        assert len(_SLAB_POOL.slabs) <= _SLAB_POOL.MAX_SLABS
        clear_slab_pool()

    def test_warm_pool_does_not_change_results(self):
        rng = np.random.default_rng(4)
        stack = _random_stack(rng, 2)
        acts = rng.integers(-128, 128, size=(1, 23, 4), dtype=np.int16)
        w_index = (
            (rng.integers(-128, 128, size=(4, 3)) & 0xFF) << 8
        ).astype(np.int64)
        clear_slab_pool()
        cold = _lut_matmul_stack(
            acts, w_index, stack, workers=1, kernel_tier=NUMPY_TIER
        )
        warm = _lut_matmul_stack(
            acts, w_index, stack, workers=1, kernel_tier=NUMPY_TIER
        )
        assert cold is not warm  # out slabs are never pooled
        assert np.array_equal(cold, warm)
        clear_slab_pool()


class TestHandshakeAvailability:
    def _hello(self, coordinator, payload):
        from repro.engine.backends import recv_msg, send_msg

        conn = socket.create_connection(
            (coordinator.host, coordinator.port), timeout=5
        )
        try:
            send_msg(conn, payload)
            reply = recv_msg(conn)
        finally:
            conn.close()
        return reply

    def test_mixed_fleet_warns_once_and_still_welcomes(self):
        from repro.engine.backends import PROTOCOL_VERSION, RemoteCoordinator

        if not COMPILED:
            pytest.skip("coordinator has no compiled tier to miss")
        numpy_only = {name: name == NUMPY_TIER for name in kernel_tier_names()}
        with RemoteCoordinator() as coordinator:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                for pid in (101, 102):  # identical map warns only once
                    reply = self._hello(
                        coordinator,
                        {
                            "type": "hello",
                            "protocol": PROTOCOL_VERSION,
                            "pid": pid,
                            "kernels": numpy_only,
                        },
                    )
                    assert reply["type"] == "welcome"
                # a pre-kernel worker (no kernels field) stays silent
                reply = self._hello(
                    coordinator,
                    {
                        "type": "hello",
                        "protocol": PROTOCOL_VERSION,
                        "pid": 103,
                    },
                )
                assert reply["type"] == "welcome"
        relevant = [
            w
            for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "kernel tier" in str(w.message)
        ]
        assert len(relevant) == 1

    def test_worker_hello_advertises_availability(self):
        # the daemon sends kernel_availability() verbatim; pin the
        # contract on the map itself so the handshake payload and the
        # benchmark stamps stay in sync
        availability = kernel_availability()
        assert availability[NUMPY_TIER] is True
        assert set(availability) == set(kernel_tier_names())

    def test_pool_context_provider_registered(self):
        from repro.engine.backends import _POOL_CONTEXT_PROVIDERS

        assert "kernel_tier" in _POOL_CONTEXT_PROVIDERS
        assert (
            _POOL_CONTEXT_PROVIDERS["kernel_tier"]()
            == kernels.default_kernel_tier()
        )
