"""Property tests for the sharded experiment-grid runner.

The contract under test: ``GridRunner.run`` returns the same values in
the same order for every mode (serial/thread/process) and every shard
count — sharding changes scheduling only, never results.
"""

import os

import pytest

from repro.engine.grid import (
    ExecutionPlan,
    GridConfig,
    GridRunner,
    shared_process_pool,
    shutdown_shared_pools,
)
from repro.errors import ExperimentError


def square_offset(value, offset):
    """Top-level picklable cell function."""
    return value * value + offset


def tag_pid(value):
    """Returns (value, executing pid) — for placement checks."""
    return value, os.getpid()


def square_batch(values, offset):
    """Batch-decomposable callable for the for_batches plan tests."""
    return [value * value + offset for value in values]


CELLS = [(value, 100) for value in range(11)]
EXPECTED = [value * value + 100 for value in range(11)]
ITEMS = list(range(11))


class TestGridConfig:
    def test_defaults(self):
        config = GridConfig()
        assert config.mode == "auto"
        assert config.resolved_workers() >= 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ExperimentError, match="unknown grid mode"):
            GridConfig(mode="banana")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ExperimentError, match="workers"):
            GridConfig(workers=0)

    def test_invalid_shards_rejected(self):
        with pytest.raises(ExperimentError, match="shards"):
            GridConfig(shards=0)


class TestSharding:
    def test_shards_concatenate_to_input(self):
        for count in (1, 2, 3, 5, 11, 40):
            runner = GridRunner(GridConfig(shards=count))
            shards = runner.shard_cells(CELLS)
            assert [c for shard in shards for c in shard] == CELLS
            assert len(shards) == min(count, len(CELLS))

    def test_shard_sizes_balanced(self):
        runner = GridRunner(GridConfig(shards=3))
        sizes = [len(s) for s in runner.shard_cells(CELLS)]
        assert max(sizes) - min(sizes) <= 1


class TestDeterministicResults:
    def test_serial_reference(self):
        runner = GridRunner(GridConfig(mode="serial"))
        assert runner.run(ExecutionPlan.for_cells(square_offset, CELLS)) == EXPECTED

    @pytest.mark.parametrize("shards", [1, 2, 3, 11])
    def test_thread_mode_identical_any_shards(self, shards):
        runner = GridRunner(GridConfig(mode="thread", workers=4, shards=shards))
        assert runner.run(ExecutionPlan.for_cells(square_offset, CELLS)) == EXPECTED

    @pytest.mark.parametrize("shards", [1, 2, 11])
    def test_process_mode_identical_any_shards(self, shards):
        runner = GridRunner(
            GridConfig(mode="process", workers=2, shards=shards)
        )
        assert runner.run(ExecutionPlan.for_cells(square_offset, CELLS)) == EXPECTED

    def test_empty_cells(self):
        runner = GridRunner(GridConfig(mode="process", workers=2))
        assert runner.run(ExecutionPlan.for_cells(square_offset, [])) == []

    def test_auto_resolution(self):
        runner = GridRunner(GridConfig(mode="auto", workers=1))
        assert runner.resolved_mode(8) == "serial"
        multi = GridRunner(GridConfig(mode="auto", workers=4))
        assert multi.resolved_mode(8) == "process"
        assert multi.resolved_mode(1) == "serial"


class TestWarmPoolReuse:
    def test_pool_persists_across_runs(self):
        pool_a = shared_process_pool(2)
        pool_b = shared_process_pool(2)
        assert pool_a is pool_b

    def test_workers_reused_across_maps(self):
        # single-cell grids run in-process by design, so use two cells
        runner = GridRunner(GridConfig(mode="process", workers=1, shards=1))
        first = runner.run(ExecutionPlan.for_cells(tag_pid, [(1,), (2,)]))
        second = runner.run(ExecutionPlan.for_cells(tag_pid, [(3,), (4,)]))
        assert first[0][1] == second[0][1]  # same worker process
        assert first[0][1] != os.getpid()

    def test_shutdown_then_fresh_pool(self):
        before = shared_process_pool(2)
        shutdown_shared_pools()
        after = shared_process_pool(2)
        assert after is not before
        shutdown_shared_pools()


class TestPoolContextRefork:
    """A library-settings change must refork stale warm-pool workers."""

    def _provider_token(self):
        return self._token

    def test_context_change_reforks_pool(self):
        from repro.engine.backends import (
            _POOL_CONTEXT_PROVIDERS,
            current_pool_context,
            register_pool_context_provider,
        )

        self._token = "harness-A"
        register_pool_context_provider("test-context", self._provider_token)
        try:
            pool_a = shared_process_pool(2)
            assert shared_process_pool(2) is pool_a  # same context: reuse
            self._token = "harness-B"
            assert ("test-context", "harness-B") in current_pool_context()
            pool_b = shared_process_pool(2)
            assert pool_b is not pool_a  # context change: refork
            assert shared_process_pool(2) is pool_b  # stable again
        finally:
            _POOL_CONTEXT_PROVIDERS.pop("test-context", None)
            shutdown_shared_pools()

    def test_back_to_back_library_settings_refork(self):
        """Two harness-style runs with different libraries refork once."""
        from repro.approx.library import build_library

        fast = dict(generations=2, hybrid=False, structural=False)
        shutdown_shared_pools()
        try:
            build_library(width=8, seed=123, population=8, **fast)
            pool_a = shared_process_pool(2)
            assert shared_process_pool(2) is pool_a
            # second "harness" builds a different step-1 library: the
            # next checkout must hand back freshly forked workers that
            # inherit it, instead of the stale pre-library fleet
            build_library(width=8, seed=124, population=8, **fast)
            pool_b = shared_process_pool(2)
            assert pool_b is not pool_a
            # results through the reforked pool stay the reference's
            runner = GridRunner(GridConfig(mode="process", workers=2))
            assert runner.run(ExecutionPlan.for_cells(square_offset, CELLS)) == EXPECTED
        finally:
            shutdown_shared_pools()


class TestBatchPlans:
    """for_batches plans == fn(items) for every mode and batch count."""

    def test_serial_reference(self):
        runner = GridRunner(GridConfig(mode="serial"))
        assert runner.run(
            ExecutionPlan.for_batches(square_batch, ITEMS, extra=(100,))
        ) == EXPECTED

    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("shards", [1, 2, 5, 11])
    def test_parallel_modes_identical(self, mode, shards):
        runner = GridRunner(GridConfig(mode=mode, workers=2, shards=shards))
        assert runner.run(
            ExecutionPlan.for_batches(square_batch, ITEMS, extra=(100,))
        ) == EXPECTED
        shutdown_shared_pools()

    def test_empty_items(self):
        runner = GridRunner(GridConfig(mode="thread", workers=2))
        assert runner.run(
            ExecutionPlan.for_batches(square_batch, [], extra=(100,))
        ) == []

    def test_single_item(self):
        runner = GridRunner(GridConfig(mode="thread", workers=4))
        assert runner.run(
            ExecutionPlan.for_batches(square_batch, [3], extra=(7,))
        ) == [16]
