"""Exactness tests for the batched dataflow evaluation.

:class:`BatchNetworkEvaluator` re-derives the mapping + latency
formulas in numpy; these tests hold it to *bit-identical* agreement
with :func:`repro.dataflow.performance.evaluate_network` over random
geometries and every paper workload, including unmappable corner cases.
"""

import numpy as np
import pytest

from repro.approx.library import build_library
from repro.dataflow.performance import evaluate_network
from repro.engine.batch import BatchNetworkEvaluator
from repro.errors import MappingError
from repro.ga.chromosome import space_for_library
from repro.nn.zoo import workload


@pytest.fixture(scope="module")
def library():
    return build_library(
        width=8, seed=0, population=10, generations=3,
        hybrid=False, structural=False,
    )


@pytest.fixture(scope="module")
def space(library):
    return space_for_library(library)


def random_configs(space, library, node_nm, count, seed):
    rng = np.random.default_rng(seed)
    return [
        space.decode(space.random_genome(rng), library, node_nm)
        for _ in range(count)
    ]


@pytest.mark.parametrize("network_name", ["vgg16", "vgg19", "resnet50", "resnet152"])
def test_bit_identical_to_scalar_path(network_name, library, space):
    network = workload(network_name)
    configs = random_configs(space, library, 7, 40, seed=7)
    batch = BatchNetworkEvaluator(network)
    records = batch.total_cycles([c.geometry_key() for c in configs])
    for config, (cycles, mappable) in zip(configs, records):
        try:
            reference = evaluate_network(network, config, use_cache=False)
        except MappingError:
            assert not mappable
            continue
        assert mappable
        assert cycles == reference.total_cycles  # exact, not approx


def test_latency_matches_network_performance(library, space):
    network = workload("vgg16")
    configs = random_configs(space, library, 14, 10, seed=3)
    batch = BatchNetworkEvaluator(network)
    for config, (latency, mappable) in zip(
        configs, batch.latency_s([c.geometry_key() for c in configs])
    ):
        if not mappable:
            continue
        reference = evaluate_network(network, config, use_cache=False)
        assert latency == reference.latency_s


def test_unmappable_geometry_flagged(library):
    """Scalar raise and batch mask agree on an unmappable geometry.

    Every geometry the chromosome menus can produce is mappable (the
    4 KiB global-buffer floor guarantees a reduction slice fits), so
    the unmappable branch is exercised with a duck-typed config below
    that floor: a 64-wide array whose 128 B global buffer cannot hold
    one pass's weight slice.
    """
    from types import SimpleNamespace

    network = workload("vgg16")
    geometry = (64, 64, 0, 128, 7, 1.0e9)
    config = SimpleNamespace(
        pe_rows=64,
        pe_cols=64,
        local_buffer_bytes=0,
        global_buffer_bytes=128,
        node_nm=7,
        clock_hz=1.0e9,
        n_pes=64 * 64,
        geometry_key=lambda: geometry,
    )
    with pytest.raises(MappingError):
        evaluate_network(network, config, use_cache=False)
    batch = BatchNetworkEvaluator(network)
    ((_, mappable),) = batch.total_cycles([geometry])
    assert not mappable


def test_menu_geometries_always_mappable(library, space):
    """The chromosome menus cannot produce an unmappable design."""
    network = workload("resnet152")
    configs = random_configs(space, library, 7, 30, seed=23)
    batch = BatchNetworkEvaluator(network)
    records = batch.total_cycles([c.geometry_key() for c in configs])
    assert all(mappable for _, mappable in records)


def test_memoised_across_calls(library, space):
    network = workload("vgg16")
    config = random_configs(space, library, 7, 1, seed=11)[0]
    batch = BatchNetworkEvaluator(network)
    first = batch.total_cycles([config.geometry_key()])
    assert len(batch._cache) == 1
    second = batch.total_cycles([config.geometry_key()] * 3)
    assert len(batch._cache) == 1
    assert second == [first[0]] * 3
