"""Subprocess target for the SIGKILL-and-resume chaos tests.

Top-level module (not a ``test_*`` file) so the chaos suite can run it
as ``python chaos_runner.py CHECKPOINT_DIR [--resume]`` in a separate
process whose environment carries a ``REPRO_FAULTS`` spec — the kill
injector then SIGKILLs *this* process mid-search, exactly like a
crashed job, while the pytest process stays alive to assert on the
wreckage.

Prints ``library <fingerprint>`` on success; the fingerprint digests
every entry's name, origin, area, and full truth table, so two
libraries share a fingerprint only if they are bit-identical.
"""

import hashlib
import sys


def library_fingerprint(library) -> str:
    digest = hashlib.sha256()
    for entry in library:
        digest.update(
            f"{entry.name}|{entry.origin}|{entry.area_ge!r}|".encode()
        )
        digest.update(entry.lut.table.tobytes())
    return digest.hexdigest()


def build(checkpoint_dir, resume):
    from repro.approx.library import build_library

    return build_library(
        width=4,
        population=8,
        generations=4,
        max_candidates=24,
        truncations=((1, 0), (0, 1), (1, 1)),
        hybrid=False,
        structural=False,
        use_cache=False,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )


def main(argv):
    checkpoint_dir = argv[1] if len(argv) > 1 else None
    resume = "--resume" in argv
    library = build(checkpoint_dir, resume)
    print(f"library {library_fingerprint(library)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
