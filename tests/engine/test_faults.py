"""Tests for the deterministic fault-injection harness.

No process is killed here — the SIGKILL path is exercised for real by
``test_chaos.py`` against subprocesses.  These tests pin the spec
grammar, the seeded-ordinal resolution (same seed, same strike point),
and the injector's counter/hook semantics that the chaos suite and CI
job build on.
"""

import random
import time

import pytest

from repro.engine.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultSpec,
    InjectedDrop,
    active_injector,
    parse_faults,
    reset_active_injector,
)
from repro.errors import ExperimentError


class TestSpecGrammar:
    def test_parse_single(self):
        (fault,) = parse_faults("kill@shard:3")
        assert fault == FaultSpec(kind="kill", point="shard", at=3)

    def test_parse_many_with_whitespace(self):
        faults = parse_faults(" drop@recv:1 , slow@task:0.5 ,")
        assert faults == (
            FaultSpec("drop", "recv", 1),
            FaultSpec("slow", "task", 0.5),
        )

    def test_seeded_ordinal_is_reproducible(self):
        first = parse_faults("kill@gen:rand:42:10")
        second = parse_faults("kill@gen:rand:42:10")
        assert first == second
        assert 0 <= first[0].at < 10
        assert first[0].at == random.Random(42).randrange(10)

    @pytest.mark.parametrize(
        "bad",
        [
            "kill@shard",          # no ordinal
            "explode@shard:1",     # unknown kind
            "kill@nowhere:1",      # unknown point
            "kill@shard:abc",      # non-numeric ordinal
            "kill@shard:1.5",      # non-integer event ordinal
            "slow@shard:1",        # slow only supports task
            "rand:1:2",            # no kind/point at all
            "kill@gen:rand:42",    # seeded ordinal missing HI
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ExperimentError):
            parse_faults(bad)

    def test_empty_spec_is_inert(self):
        assert parse_faults("") == ()
        assert not FaultInjector(())


class TestInjectorHooks:
    def test_drop_at_recv_ordinal(self):
        injector = FaultInjector(parse_faults("drop@recv:2"))
        injector.on_recv()  # 0
        injector.on_recv()  # 1
        with pytest.raises(InjectedDrop):
            injector.on_recv()  # 2 — strike

    def test_drop_at_shard_id(self):
        injector = FaultInjector(parse_faults("drop@shard:5"))
        injector.on_shard(4)
        with pytest.raises(InjectedDrop):
            injector.on_shard(5)

    def test_slow_task_sleeps(self):
        injector = FaultInjector(parse_faults("slow@task:0.05"))
        start = time.monotonic()
        injector.on_task_execute()
        assert time.monotonic() - start >= 0.05

    def test_inert_injector_is_free(self):
        injector = FaultInjector(())
        injector.on_recv()
        injector.on_shard(0)
        injector.on_task_execute()
        injector.on_checkpoint_saved(0)  # no strikes, no errors

    def test_gen_hook_matches_generation_not_counter(self):
        injector = FaultInjector(parse_faults("drop@gen:3"))
        injector.on_checkpoint_saved(1)
        injector.on_checkpoint_saved(2)
        with pytest.raises(InjectedDrop):
            injector.on_checkpoint_saved(3)


class TestEnvPlumbing:
    def test_from_env_reads_spec(self):
        injector = FaultInjector.from_env({FAULTS_ENV: "drop@recv:0"})
        with pytest.raises(InjectedDrop):
            injector.on_recv()

    def test_from_env_without_spec_is_inert(self):
        assert not FaultInjector.from_env({})

    def test_active_injector_cached_and_resettable(self, monkeypatch):
        reset_active_injector()
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        try:
            assert not active_injector()
            monkeypatch.setenv(FAULTS_ENV, "drop@recv:0")
            assert not active_injector()  # cached: env read once
            reset_active_injector()
            assert active_injector()  # re-read after reset
        finally:
            reset_active_injector()
