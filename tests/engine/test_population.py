"""Determinism and caching tests for the population engine.

The core guarantee: serial, batch, thread, and process execution of the
same seeded search return *identical* outcomes — parallelism changes
when a genome is scored, never what is returned.
"""

import numpy as np
import pytest

from repro.approx.library import build_library
from repro.approx.nsga2 import Nsga2, Nsga2Config
from repro.engine.diskcache import FitnessDiskCache, context_fingerprint
from repro.engine.population import EngineConfig, PopulationEvaluator
from repro.errors import OptimizationError
from repro.ga.chromosome import space_for_library
from repro.ga.engine import GaConfig, GeneticAlgorithm
from repro.ga.fitness import FitnessEvaluator


@pytest.fixture(scope="module")
def library():
    return build_library(
        width=8, seed=0, population=10, generations=3,
        hybrid=False, structural=False,
    )


@pytest.fixture(scope="module")
def space(library):
    return space_for_library(library)


def make_evaluator(library, space, cache_dir=None):
    return FitnessEvaluator(
        network="vgg16",
        library=library,
        space=space,
        node_nm=7,
        min_fps=40.0,
        max_drop_percent=1.0,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )


class TestEngineConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(OptimizationError, match="mode"):
            EngineConfig(mode="gpu")

    def test_bad_workers_rejected(self):
        with pytest.raises(OptimizationError, match="workers"):
            EngineConfig(workers=0)

    def test_auto_prefers_batch(self):
        evaluator = PopulationEvaluator(
            lambda g: g, batch_evaluate=lambda gs: list(gs)
        )
        assert evaluator.resolved_mode() == "batch"

    def test_auto_without_batch_is_cpu_dependent(self):
        evaluator = PopulationEvaluator(
            lambda g: g, config=EngineConfig(workers=1)
        )
        assert evaluator.resolved_mode() == "serial"


class TestMemoisation:
    def test_dedup_within_generation(self):
        calls = []

        def evaluate(genome):
            calls.append(genome)
            return sum(genome)

        evaluator = PopulationEvaluator(
            evaluate, config=EngineConfig(mode="serial")
        )
        results = evaluator([(1, 2), (3, 4), (1, 2), (1, 2)])
        assert results == [3, 7, 3, 3]
        assert calls == [(1, 2), (3, 4)]
        assert evaluator.evaluations == 2

    def test_memo_across_generations(self):
        calls = []

        def evaluate(genome):
            calls.append(genome)
            return sum(genome)

        evaluator = PopulationEvaluator(
            evaluate, config=EngineConfig(mode="serial")
        )
        evaluator([(1, 1)])
        evaluator([(1, 1), (2, 2)])
        assert calls == [(1, 1), (2, 2)]


def _gene_sum(genome):
    """Module-level so ``process`` mode can pickle it."""
    return sum(genome)


class TestProcessMode:
    def test_process_pool_matches_serial(self):
        genomes = [(i, i + 1) for i in range(12)] * 2
        serial = PopulationEvaluator(
            _gene_sum, config=EngineConfig(mode="serial")
        )
        process = PopulationEvaluator(
            _gene_sum, config=EngineConfig(mode="process", workers=2)
        )
        assert process(genomes) == serial(genomes)
        assert process.evaluations == serial.evaluations == 12

    def test_store_backfills_parent_caches(self):
        """Worker-computed results reach the parent via the store hook."""
        backfilled = {}
        process = PopulationEvaluator(
            _gene_sum,
            config=EngineConfig(mode="process", workers=2),
            store=backfilled.__setitem__,
        )
        process([(1, 2), (3, 4), (1, 2)])
        assert backfilled == {(1, 2): 3, (3, 4): 7}

    def test_batch_mode_without_callable_rejected(self):
        with pytest.raises(OptimizationError, match="batch_evaluate"):
            PopulationEvaluator(_gene_sum, config=EngineConfig(mode="batch"))


class TestBatchMode:
    def test_batch_receives_only_misses(self):
        calls = []

        def batch(genomes):
            calls.append(list(genomes))
            return [sum(g) for g in genomes]

        evaluator = PopulationEvaluator(
            _gene_sum, batch_evaluate=batch,
            config=EngineConfig(mode="batch"),
        )
        assert evaluator([(1, 2), (1, 2), (3, 4)]) == [3, 3, 7]
        assert evaluator([(1, 2), (5, 6)]) == [3, 11]
        # dedup within a generation, memo across generations
        assert calls == [[(1, 2), (3, 4)], [(5, 6)]]
        assert evaluator.evaluations == 3

    def test_batch_backfills_store(self):
        backfilled = {}
        evaluator = PopulationEvaluator(
            _gene_sum,
            batch_evaluate=lambda gs: [sum(g) for g in gs],
            config=EngineConfig(mode="batch"),
            store=backfilled.__setitem__,
        )
        evaluator([(1, 2), (3, 4), (1, 2)])
        assert backfilled == {(1, 2): 3, (3, 4): 7}

    def test_self_storing_batch_skips_backfill(self):
        """A callable that persists its own misses is not double-stored."""
        stored = []

        def batch(genomes):
            return [sum(g) for g in genomes]

        batch.self_storing = True
        evaluator = PopulationEvaluator(
            _gene_sum, batch_evaluate=batch,
            config=EngineConfig(mode="batch"),
            store=lambda g, r: stored.append((g, r)),
        )
        assert evaluator([(1, 2), (3, 4)]) == [3, 7]
        assert stored == []

    def test_batch_length_mismatch_rejected(self):
        evaluator = PopulationEvaluator(
            _gene_sum,
            batch_evaluate=lambda gs: [0],
            config=EngineConfig(mode="batch"),
        )
        with pytest.raises(OptimizationError, match="batch_evaluate"):
            evaluator([(1, 2), (3, 4)])


class TestGaDeterminism:
    """Same seed, every execution mode => identical GaOutcome."""

    def run_mode(self, library, space, mode, workers=None):
        evaluator = make_evaluator(library, space)
        config = GaConfig(population_size=10, generations=6, seed=5)
        if mode == "reference":
            population_evaluate = None
        else:
            population_evaluate = PopulationEvaluator(
                evaluator.evaluate,
                batch_evaluate=(
                    evaluator.evaluate_population if mode == "batch" else None
                ),
                config=EngineConfig(mode=mode, workers=workers),
            )
        return GeneticAlgorithm(
            space,
            evaluator.evaluate,
            config,
            population_evaluate=population_evaluate,
        ).run()

    def test_batch_identical_to_reference(self, library, space):
        assert self.run_mode(library, space, "reference") == self.run_mode(
            library, space, "batch"
        )

    def test_serial_engine_identical_to_reference(self, library, space):
        assert self.run_mode(library, space, "reference") == self.run_mode(
            library, space, "serial"
        )

    def test_thread_identical_to_reference(self, library, space):
        assert self.run_mode(library, space, "reference") == self.run_mode(
            library, space, "thread", workers=4
        )


class TestFitnessBatchPath:
    def test_population_identical_to_scalar(self, library, space):
        rng = np.random.default_rng(17)
        genomes = [space.random_genome(rng) for _ in range(60)]
        scalar = make_evaluator(library, space)
        batch = make_evaluator(library, space)
        assert batch.evaluate_population(genomes) == [
            scalar.evaluate(g) for g in genomes
        ]

    def test_unmappable_genomes_agree(self, library, space):
        # tiny global buffers on resnet152 produce unmappable designs
        evaluator_a = FitnessEvaluator(
            network="resnet152", library=library, space=space,
            node_nm=7, min_fps=30.0, max_drop_percent=2.0,
        )
        evaluator_b = FitnessEvaluator(
            network="resnet152", library=library, space=space,
            node_nm=7, min_fps=30.0, max_drop_percent=2.0,
        )
        genomes = [
            (13, 13, 0, 0, 0),  # 64x64 PEs, 16 KiB global buffer
            (0, 0, 0, 0, 0),
            (13, 13, 0, 11, 0),
        ]
        assert evaluator_b.evaluate_population(genomes) == [
            evaluator_a.evaluate(g) for g in genomes
        ]


class TestNsga2Engine:
    def knapsack(self):
        rng = np.random.default_rng(42)
        values = rng.integers(1, 20, size=12)
        weights = rng.integers(1, 20, size=12)

        def evaluate(genome):
            mask = np.array(genome, dtype=bool)
            return (-float(values[mask].sum()), float(weights[mask].sum()))

        def random_genome(rng_):
            return tuple(int(b) for b in rng_.integers(0, 2, size=12))

        return evaluate, random_genome

    def test_thread_engine_identical_front(self):
        evaluate, random_genome = self.knapsack()
        config = Nsga2Config(population_size=16, generations=8, seed=3)
        serial = Nsga2(evaluate, random_genome, config).run()
        threaded = Nsga2(
            evaluate,
            random_genome,
            config,
            engine=EngineConfig(mode="thread", workers=4),
        ).run()
        assert serial == threaded

    def test_evaluation_counter_unchanged(self):
        evaluate, random_genome = self.knapsack()
        config = Nsga2Config(population_size=8, generations=6, seed=0)
        search = Nsga2(evaluate, random_genome, config)
        search.run()
        assert 0 < search.evaluations <= 8 * 7


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = FitnessDiskCache(str(tmp_path), context_fingerprint("ctx"))
        cache.put((1, 2, 3), {"cdp": 1.5})
        cache.flush()
        reloaded = FitnessDiskCache(str(tmp_path), context_fingerprint("ctx"))
        assert reloaded.get((1, 2, 3)) == {"cdp": 1.5}
        assert len(reloaded) == 1

    def test_contexts_isolated(self, tmp_path):
        a = FitnessDiskCache(str(tmp_path), context_fingerprint("a"))
        a.put((1,), "a-result")
        a.flush()
        b = FitnessDiskCache(str(tmp_path), context_fingerprint("b"))
        assert b.get((1,)) is None

    def test_corrupt_file_ignored(self, tmp_path):
        cache = FitnessDiskCache(str(tmp_path), "deadbeef")
        tmp_path.mkdir(exist_ok=True)
        with open(cache.path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get((1,)) is None

    def test_warm_start_skips_evaluation(self, library, space, tmp_path):
        rng = np.random.default_rng(2)
        genomes = [space.random_genome(rng) for _ in range(20)]
        cold = make_evaluator(library, space, cache_dir=tmp_path)
        cold_results = cold.evaluate_population(genomes)
        cold.flush_cache()

        warm = make_evaluator(library, space, cache_dir=tmp_path)
        warm_results = warm.evaluate_population(genomes)
        assert warm_results == cold_results
        # warm run answered from disk: its batch evaluator never built
        assert warm._batch is None

    def test_fingerprint_sensitive_to_constraints(self, library, space):
        a = make_evaluator(library, space)
        b = FitnessEvaluator(
            network="vgg16", library=library, space=space,
            node_nm=7, min_fps=30.0, max_drop_percent=1.0,
        )
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_sensitive_to_accuracy_model(self, library, space):
        """Different accuracy-model parameters must not share a cache."""
        from repro.accuracy.analytical import AnalyticalAccuracyModel
        from repro.accuracy.predictor import AccuracyPredictor

        a = make_evaluator(library, space)
        b = FitnessEvaluator(
            network="vgg16", library=library, space=space,
            node_nm=7, min_fps=40.0, max_drop_percent=1.0,
            predictor=AccuracyPredictor(
                model=AnalyticalAccuracyModel(noise_gain=0.9)
            ),
        )
        assert a.fingerprint() != b.fingerprint()
