"""Subprocess target for the coordinator-SIGKILL chaos tests.

Runs the same small ``build_library`` as ``chaos_runner``, but scores
the search-free variants on a :class:`CoordinatorSession` over a
*fixed* port with a crash journal — so this process hosts a live
in-process coordinator, and a ``coordkill@gen:N`` fault SIGKILLs
exactly this process mid-build (spawned workers inherit the same
``REPRO_FAULTS`` value but never host a coordinator, so the strike is
scoped to the coordinator host).

A restart with ``--resume`` and the *same* checkpoint dir, port and
journal must converge bit-identically to a cold run: the search
checkpoints resume the NSGA-II generations, the journal replays
already-recorded variant results and bumps the coordinator epoch, and
orphaned workers from the killed incarnation redial into the new one.

Prints ``epoch <n>`` and ``library <fingerprint>`` on success.
"""

import argparse
import os
import sys

from chaos_runner import library_fingerprint


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("checkpoint_dir")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--journal", required=True)
    parser.add_argument("--spawn", type=int, default=2)
    args = parser.parse_args(argv[1:])

    # the shared backend builds its CoordinatorConfig from the
    # environment; route the journal through it so the coordinator
    # this session stands up is crash-recoverable
    os.environ["REPRO_COORDINATOR_JOURNAL"] = args.journal

    from repro.approx.library import build_library
    from repro.engine.taskgraph import CoordinatorSession

    session = CoordinatorSession(
        coordinator=f"127.0.0.1:{args.port}", spawn=args.spawn
    )
    try:
        library = build_library(
            width=4,
            population=8,
            generations=4,
            max_candidates=24,
            truncations=((1, 0), (0, 1), (1, 1)),
            hybrid=False,
            structural=False,
            use_cache=False,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            overlap_session=session,
        )
    finally:
        session.close()
    coordinator = session.backend._coordinator
    print(f"epoch {coordinator.epoch if coordinator is not None else 0}")
    print(f"library {library_fingerprint(library)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
