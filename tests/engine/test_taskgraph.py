"""Tests for the async task-graph engine (futures, sessions, graphs).

Pins the submit/future API's determinism contract —
``session.map_shards(fn, shards)`` equals the serial reference for
every backend — plus the properties that make the layer worth having:
bounded backpressure, out-of-order streaming via ``as_completed``,
persistent coordinator sessions serving *concurrent* jobs off one
work-stealing queue (bit-identical to two serial runs), workers
joining and leaving while futures are live, ack-then-close draining an
in-flight result, and dependency-ordered :class:`TaskGraph` dispatch.

The consolidated :class:`GridRunner` surface rides along:
``run(ExecutionPlan...)`` identity against the legacy shims, and the
shims' :class:`DeprecationWarning`.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import remote_cells
from repro.engine.backends import (
    ProcessBackend,
    RemoteCoordinator,
    SerialBackend,
    ThreadBackend,
    shutdown_remote_backends,
    spawn_local_worker,
)
from repro.engine.faults import FAULTS_ENV
from repro.engine.grid import ExecutionPlan, GridConfig, GridRunner
from repro.engine.taskgraph import (
    CoordinatorSession,
    EngineSession,
    TaskFuture,
    TaskGraph,
)
from repro.errors import ExperimentError

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(os.path.dirname(HERE)), "src")

CELLS = [(value, 100) for value in range(9)]
SHARDS = [CELLS[:3], CELLS[3:4], CELLS[4:]]
EXPECTED = [[value * value + 100 for value, _ in shard] for shard in SHARDS]

#: Wall-clock circuit breaker; a wedged future must fail, not hang CI.
TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def hard_timeout():
    def on_alarm(signum, frame):  # pragma: no cover - only on a hang
        raise TimeoutError(f"taskgraph test exceeded {TEST_TIMEOUT_S}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_TIMEOUT_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def worker_pythonpath(monkeypatch):
    """Let spawned workers import ``remote_cells`` by reference."""
    existing = os.environ.get("PYTHONPATH")
    merged = HERE if not existing else HERE + os.pathsep + existing
    monkeypatch.setenv("PYTHONPATH", merged)


class TestTaskFuture:
    def test_result_blocks_then_returns(self):
        future = TaskFuture()
        threading.Timer(0.05, future._resolve, args=([42], None)).start()
        assert not future.done()
        assert future.result(timeout=5) == [42]
        assert future.done()
        assert future.exception() is None

    def test_result_timeout(self):
        future = TaskFuture(label="probe")
        with pytest.raises(TimeoutError, match="probe"):
            future.result(timeout=0.05)

    def test_exception_reraised(self):
        future = TaskFuture()
        future._resolve(None, ValueError("boom"))
        assert isinstance(future.exception(), ValueError)
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_resolved_exactly_once(self):
        future = TaskFuture()
        future._resolve([1], None)
        future._resolve([2], None)  # ignored
        assert future.result() == [1]

    def test_callback_after_resolution_fires_immediately(self):
        future = TaskFuture()
        future._resolve([7], None)
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [[7]]


class TestEngineSession:
    @pytest.mark.parametrize(
        "backend_factory",
        [
            lambda: SerialBackend(),
            lambda: ThreadBackend(2),
            lambda: ProcessBackend(2),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_map_shards_matches_reference(self, backend_factory):
        """The determinism contract, through submit-then-gather."""
        with EngineSession(backend_factory(), close_backend=True) as session:
            assert (
                session.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )

    def test_serial_resolves_inline_at_submit(self):
        with EngineSession(SerialBackend()) as session:
            future = session.submit(remote_cells.square_offset, SHARDS[0])
            assert future.done()  # no thread hop: the reference path
            assert future.result() == EXPECTED[0]

    def test_cell_exception_stored_not_raised_at_submit(self):
        with EngineSession(ThreadBackend(1)) as session:
            future = session.submit(remote_cells.raise_value_error, [(3,)])
            assert isinstance(future.exception(), ValueError)
            with pytest.raises(ValueError, match="deterministic"):
                future.result()

    def test_submit_after_close_raises(self):
        session = EngineSession(ThreadBackend(1))
        session.close()
        with pytest.raises(ExperimentError, match="closed"):
            session.submit(remote_cells.square_offset, SHARDS[0])

    def test_backpressure_blocks_submit(self):
        """The max_inflight'th+1 submit waits for a slot, then proceeds."""
        gate = threading.Event()
        submitted = threading.Event()

        def blocked_cell(value):
            gate.wait(timeout=30)
            return value

        session = EngineSession(ThreadBackend(1), max_inflight=1)
        try:
            # thread-backend-only session: the Event capture is the
            # point of the test, it never crosses a pickle boundary
            first = session.submit(blocked_cell, [(1,)])  # repro: noqa[PKL001]

            second_future = []

            def producer():
                second_future.append(
                    session.submit(blocked_cell, [(2,)])  # repro: noqa[PKL001]
                )
                submitted.set()

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            # the slot is held by the gated first shard: submit must block
            assert not submitted.wait(timeout=0.3)
            gate.set()
            assert submitted.wait(timeout=30)
            assert first.result(timeout=30) == [1]
            assert second_future[0].result(timeout=30) == [2]
        finally:
            gate.set()
            session.close()

    def test_as_completed_streams_out_of_order(self):
        with EngineSession(ThreadBackend(2)) as session:
            slow = session.submit(
                remote_cells.slow_square, [(2, 0.5)], label="slow"
            )
            fast = session.submit(
                remote_cells.slow_square, [(3, 0.0)], label="fast"
            )
            order = [f.label for f in EngineSession.as_completed([slow, fast])]
        assert order == ["fast", "slow"]
        assert slow.result() == [4] and fast.result() == [9]

    def test_gather_preserves_submission_order(self):
        """Unequal per-shard delays cannot reorder gathered results."""
        delays = [0.2, 0.0, 0.1]
        cells = [[(value, delay)] for value, delay in enumerate(delays)]
        with EngineSession(ThreadBackend(3)) as session:
            futures = [
                session.submit(remote_cells.slow_square, shard)
                for shard in cells
            ]
            assert session.gather(futures) == [[0], [1], [4]]


class TestCoordinatorSession:
    def test_concurrent_jobs_share_one_fleet_bit_identically(self):
        """Two jobs on one session == two serial runs; workers shared.

        Cells from both jobs interleave on the coordinator's shared
        queue, so the 2-worker fleet work-steals across jobs — at
        least one worker pid must show up in *both* jobs' results —
        while each job's gathered values stay bit-identical to its
        serial reference.
        """
        job_a = [(value, 0.01) for value in range(6)]
        job_b = [(value, 0.05) for value in range(10, 16)]
        try:
            session = CoordinatorSession(spawn=2)
            futures_a, futures_b = [], []
            # interleaved submission: the shared queue alternates jobs
            for cell_a, cell_b in zip(job_a, job_b):
                futures_a.append(
                    session.submit(remote_cells.tag_worker_pid_slow, [cell_a])
                )
                futures_b.append(
                    session.submit(remote_cells.tag_worker_pid_slow, [cell_b])
                )
            results_a = session.gather(futures_a)
            results_b = session.gather(futures_b)
            session.close()

            assert [[pair[0] for pair in shard] for shard in results_a] == [
                [value] for value, _ in job_a
            ]
            assert [[pair[0] for pair in shard] for shard in results_b] == [
                [value] for value, _ in job_b
            ]
            pids_a = {shard[0][1] for shard in results_a}
            pids_b = {shard[0][1] for shard in results_b}
            assert len(pids_a | pids_b) <= 2  # one 2-daemon fleet, shared
            assert pids_a & pids_b  # work stealing across jobs happened
        finally:
            shutdown_remote_backends()

    def test_session_close_leaves_coordinator_up(self):
        """A session is a client of the fleet, not its owner."""
        try:
            first = CoordinatorSession(spawn=1)
            pid_first = first.submit(
                remote_cells.tag_worker_pid, [(1,)]
            ).result(timeout=60)[0][1]
            first.close()
            second = CoordinatorSession(spawn=1)
            pid_second = second.submit(
                remote_cells.tag_worker_pid, [(2,)]
            ).result(timeout=60)[0][1]
            second.close()
            assert pid_first == pid_second  # same warm daemon survived
        finally:
            shutdown_remote_backends()

    def test_worker_joins_while_futures_live(self):
        """Submit with an empty fleet; attach a worker mid-flight."""
        worker = None
        try:
            session = CoordinatorSession(spawn=0)
            futures = [
                session.submit(remote_cells.square_offset, shard)
                for shard in SHARDS
            ]
            time.sleep(0.3)  # live futures, nobody serving them
            assert not any(future.done() for future in futures)
            coordinator, _ = session.backend._ensure_up()
            worker = spawn_local_worker(coordinator.address)
            assert session.gather(futures) == EXPECTED
            session.close()
        finally:
            shutdown_remote_backends()
        if worker is not None:
            worker.wait(timeout=10)

    def test_worker_dies_while_futures_live(self, tmp_path):
        """A mid-shard worker death requeues; futures still resolve."""
        sentinel = str(tmp_path / "die-once")
        cells = [(value, 2, sentinel) for value in range(4)]
        try:
            session = CoordinatorSession(spawn=2)
            futures = [
                session.submit(remote_cells.die_once_at, [cell])
                for cell in cells
            ]
            assert session.gather(futures) == [
                [value * value] for value in range(4)
            ]
            session.close()
            assert os.path.exists(sentinel)  # a worker really died
        finally:
            shutdown_remote_backends()


class TestAckThenClose:
    def test_close_drains_in_flight_result(self):
        """Shutdown during a slow shard keeps, not drops, its result.

        Regression for the ack-then-close protocol: the worker holds
        its next ``ready`` until the coordinator acks the previous
        result, so a drain-close observes the recorded result instead
        of racing the socket teardown.
        """
        outcome = {}
        done = threading.Event()

        def on_done(result, failure):
            outcome["result"] = result
            outcome["failure"] = failure
            done.set()

        worker = None
        coordinator = RemoteCoordinator("127.0.0.1:0")
        try:
            worker = spawn_local_worker(coordinator.address)
            coordinator.submit_single(
                remote_cells.slow_square, [(6, 0.8)], on_done
            )
            time.sleep(0.3)  # the shard is in flight on the worker
            coordinator.close(drain=True)
            assert done.wait(timeout=10)
            assert outcome == {"result": [36], "failure": None}
        finally:
            coordinator.close()
            if worker is not None:
                try:
                    worker.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    worker.kill()

    def test_submit_after_close_raises(self):
        coordinator = RemoteCoordinator("127.0.0.1:0")
        coordinator.close()
        with pytest.raises(ExperimentError, match="closed"):
            coordinator.submit_single(
                remote_cells.square_offset, [(1, 2)], lambda *a: None
            )


class TestTaskGraph:
    def test_dependency_chain_with_cells_from(self):
        """A dependent node's cells are built from its deps' results."""
        with EngineSession(ThreadBackend(2)) as session:
            with TaskGraph(session) as graph:
                first = graph.add(
                    remote_cells.square_offset, cells=[(2, 0), (3, 0)]
                )
                second = graph.add(
                    remote_cells.square_offset,
                    after=[first],
                    cells_from=lambda results: [
                        (value, 1000) for value in results[0]
                    ],
                )
            assert first.result(timeout=30) == [4, 9]
            assert second.result(timeout=30) == [1016, 1081]

    def test_failed_dependency_fails_dependents_without_running(self):
        ran = []

        def should_not_run(value):  # pragma: no cover - the regression
            ran.append(value)
            return value

        with EngineSession(ThreadBackend(2)) as session:
            with TaskGraph(session) as graph:
                doomed = graph.add(remote_cells.raise_value_error, cells=[(1,)])
                dependent = graph.add(
                    should_not_run,
                    after=[doomed],
                    cells_from=lambda results: [(results[0][0],)],
                )
                independent = graph.add(
                    remote_cells.square_offset, cells=[(5, 0)]
                )
            with pytest.raises(ValueError, match="deterministic"):
                dependent.result(timeout=30)
            assert independent.result(timeout=30) == [25]
            assert ran == []

    def test_overlap_independent_branches(self):
        """Two chains over 2 workers overlap instead of barriering."""
        start = time.monotonic()
        with EngineSession(ThreadBackend(2)) as session:
            with TaskGraph(session) as graph:
                heads = [
                    graph.add(remote_cells.slow_square, cells=[(value, 0.2)])
                    for value in (2, 3)
                ]
                tails = [
                    graph.add(
                        remote_cells.slow_square,
                        after=[head],
                        cells_from=lambda results: [(results[0][0], 0.2)],
                    )
                    for head in heads
                ]
            assert [tail.result(timeout=30) for tail in tails] == [[16], [81]]
        # serial would be 4 * 0.2s; two overlapped chains ~ 2 * 0.2s
        assert time.monotonic() - start < 0.75

    def test_add_validates_cells_arguments(self):
        with EngineSession(SerialBackend()) as session:
            with TaskGraph(session) as graph:
                with pytest.raises(ExperimentError, match="exactly one"):
                    graph.add(remote_cells.square_offset)
                with pytest.raises(ExperimentError, match="requires"):
                    graph.add(
                        remote_cells.square_offset,
                        cells_from=lambda results: [],
                    )


class TestExecutionPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="cells.*batches"):
            ExecutionPlan(kind="nope", fn=remote_cells.square_offset, items=())

    def test_extra_rejected_on_cell_plans(self):
        with pytest.raises(ExperimentError, match="batch plans"):
            ExecutionPlan(
                kind="cells",
                fn=remote_cells.square_offset,
                items=((1, 2),),
                extra=(3,),
            )

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_run_cells_matches_reference(self, mode):
        runner = GridRunner(GridConfig(mode=mode, workers=2))
        plan = ExecutionPlan.for_cells(remote_cells.square_offset, CELLS)
        assert runner.run(plan) == [v * v + 100 for v, _ in CELLS]

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_run_batches_matches_reference(self, mode):
        runner = GridRunner(GridConfig(mode=mode, workers=2, shards=3))
        items = [value for value, _ in CELLS]
        plan = ExecutionPlan.for_batches(
            remote_cells.square_batch, items, extra=(100,)
        )
        assert runner.run(plan) == remote_cells.square_batch(items, 100)

    def test_map_shim_warns_and_delegates(self):
        # the one pinned caller of the deprecated shim (hence the
        # suppression): it exists to prove the shim still warns
        runner = GridRunner(GridConfig(mode="serial"))
        with pytest.warns(DeprecationWarning, match="for_cells"):
            got = runner.map(remote_cells.square_offset, CELLS)  # repro: noqa[DEP001]
        assert got == [v * v + 100 for v, _ in CELLS]

    def test_map_batches_shim_warns_and_delegates(self):
        runner = GridRunner(GridConfig(mode="serial"))
        items = [value for value, _ in CELLS]
        with pytest.warns(DeprecationWarning, match="for_batches"):
            got = runner.map_batches(  # repro: noqa[DEP001]
                remote_cells.square_batch, items, extra=(100,)
            )
        assert got == remote_cells.square_batch(items, 100)

    def test_runner_session_over_resolved_backend(self):
        runner = GridRunner(GridConfig(mode="thread", workers=2))
        with runner.session(n_tasks=len(SHARDS)) as session:
            assert (
                session.map_shards(remote_cells.square_offset, SHARDS)
                == EXPECTED
            )


def _run_overlap_runner(checkpoint_dir, resume=False, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if faults is not None:
        env[FAULTS_ENV] = faults
    else:
        env.pop(FAULTS_ENV, None)
    command = [sys.executable, os.path.join(HERE, "overlap_runner.py"),
               str(checkpoint_dir)]
    if resume:
        command.append("--resume")
    return subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=100
    )


def _fingerprint(completed: subprocess.CompletedProcess) -> str:
    for line in completed.stdout.splitlines():
        if line.startswith("library "):
            return line.split(" ", 1)[1]
    raise AssertionError(
        f"no library fingerprint in output:\n{completed.stdout}\n"
        f"{completed.stderr}"
    )


class TestOverlappedBuildLibrary:
    def test_overlapped_build_identical_to_serial(self):
        """Thread-session variant overlap cannot change the library."""
        import chaos_runner

        from repro.approx.library import build_library
        from repro.engine.population import EngineConfig

        kwargs = dict(
            width=4, population=8, generations=3, max_candidates=24,
            truncations=((1, 0), (0, 1)), hybrid=False, structural=True,
            structural_cuts=(2, 3), use_cache=False,
        )
        serial = build_library(
            engine=EngineConfig(mode="serial"), **kwargs
        )
        overlapped = build_library(
            engine=EngineConfig(mode="thread", workers=2), **kwargs
        )
        assert chaos_runner.library_fingerprint(
            overlapped
        ) == chaos_runner.library_fingerprint(serial)

    def test_sigkill_inside_overlap_window_resumes_bit_identically(
        self, tmp_path
    ):
        """A kill while variant futures are live resumes identically."""
        reference = _run_overlap_runner(tmp_path / "ref")
        assert reference.returncode == 0, reference.stderr

        chaos_dir = tmp_path / "chaos"
        killed = _run_overlap_runner(chaos_dir, faults="kill@gen:2")
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        resumed = _run_overlap_runner(chaos_dir, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert _fingerprint(resumed) == _fingerprint(reference)
