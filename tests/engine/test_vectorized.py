"""Property tests: vectorized NSGA-II ops == pure-Python reference.

The optimisers tie-break on front *order*, so these tests demand exact
equality — values, index order, tie handling — between
:mod:`repro.engine.vectorized` and the reference implementations in
:mod:`repro.approx.nsga2`, over randomized objective sets engineered to
hit ties, duplicates, and degenerate fronts.
"""

import numpy as np
import pytest

from repro.approx.nsga2 import (
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    pareto_front,
)
from repro.engine.vectorized import (
    crowding_distance_np,
    dominance_matrix,
    fast_non_dominated_sort_np,
    pareto_front_np,
    ranks_and_crowding,
)


def random_objective_sets():
    """Random sets biased toward ties (small integer grids)."""
    cases = []
    for trial in range(60):
        rng = np.random.default_rng(trial)
        n = int(rng.integers(1, 48))
        m = int(rng.integers(1, 4))
        # coarse grid => many duplicated coordinates and full vectors
        objs = [
            tuple(float(x) for x in rng.integers(0, 5, size=m))
            for _ in range(n)
        ]
        cases.append(objs)
    for trial in range(20):
        rng = np.random.default_rng(1000 + trial)
        n = int(rng.integers(2, 40))
        m = int(rng.integers(2, 4))
        objs = [
            tuple(float(x) for x in rng.random(m)) for _ in range(n)
        ]
        cases.append(objs)
    return cases


CASES = random_objective_sets()


class TestDominanceMatrix:
    def test_matches_reference_pairwise(self):
        for objs in CASES[:20]:
            matrix = dominance_matrix(np.asarray(objs, dtype=float))
            for i in range(len(objs)):
                for j in range(len(objs)):
                    assert matrix[i, j] == dominates(objs[i], objs[j])

    def test_no_self_dominance_diagonal(self):
        objs = np.asarray(CASES[0], dtype=float)
        assert not dominance_matrix(objs).diagonal().any()


class TestSortExactness:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_fronts_identical_including_order(self, case):
        objs = CASES[case]
        assert fast_non_dominated_sort_np(objs) == fast_non_dominated_sort(objs)

    def test_empty(self):
        assert fast_non_dominated_sort_np([]) == []

    def test_single_point(self):
        assert fast_non_dominated_sort_np([(0.0,)]) == [[0]]

    def test_chain(self):
        """A totally ordered set: one singleton front per point."""
        objs = [(float(i), float(i)) for i in range(6)]
        assert fast_non_dominated_sort_np(objs) == [[i] for i in range(6)]


class TestCrowdingExactness:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_values_identical(self, case):
        objs = CASES[case]
        for front in fast_non_dominated_sort(objs):
            assert crowding_distance_np(objs, front) == crowding_distance(
                objs, front
            )

    def test_small_front_all_infinite(self):
        crowd = crowding_distance_np([(1.0, 2.0), (2.0, 1.0)], [0, 1])
        assert crowd == {0: float("inf"), 1: float("inf")}

    def test_degenerate_objective_skipped(self):
        """A constant objective contributes no distance (hi == lo)."""
        objs = [(1.0, 0.0), (1.0, 1.0), (1.0, 2.0), (1.0, 3.0)]
        front = [0, 1, 2, 3]
        assert crowding_distance_np(objs, front) == crowding_distance(
            objs, front
        )


class TestParetoFrontExactness:
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_identical_filter(self, case):
        objs = CASES[case]
        points = [(f"item{i}", obj) for i, obj in enumerate(objs)]
        assert pareto_front_np(points) == pareto_front(points)

    def test_empty(self):
        assert pareto_front_np([]) == []

    def test_duplicate_keeps_first(self):
        points = [("a", (1.0, 1.0)), ("b", (1.0, 1.0))]
        assert pareto_front_np(points) == [("a", (1.0, 1.0))]


class TestRanksAndCrowding:
    def test_consistent_with_parts(self):
        objs = CASES[3]
        fronts, rank, crowd = ranks_and_crowding(objs)
        assert fronts == fast_non_dominated_sort(objs)
        for depth, front in enumerate(fronts):
            for i in front:
                assert rank[i] == depth
        reference = {}
        for front in fronts:
            reference.update(crowding_distance(objs, front))
        assert crowd == reference
