"""Subprocess target for the kill-inside-the-overlap-window tests.

Like ``chaos_runner.py`` but built to keep the async overlap window
open: ``structural=True`` gives ``build_library`` a batch of
search-free variant shards that it submits as
:class:`repro.engine.taskgraph.EngineSession` futures over a thread
backend *while* the NSGA-II pruning search runs.  A ``REPRO_FAULTS``
kill that fires mid-search therefore lands while futures are in
flight; the resumed run must still fingerprint identically to an
uninterrupted one.

Prints ``library <fingerprint>`` on success (same digest as
``chaos_runner.library_fingerprint``).
"""

import sys

from chaos_runner import library_fingerprint


def build(checkpoint_dir, resume):
    from repro.approx.library import build_library
    from repro.engine.population import EngineConfig

    return build_library(
        width=4,
        population=8,
        generations=4,
        max_candidates=24,
        truncations=((1, 0), (0, 1)),
        hybrid=False,
        structural=True,
        structural_cuts=(2, 3),
        use_cache=False,
        engine=EngineConfig(mode="thread", workers=2),
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )


def main(argv):
    checkpoint_dir = argv[1] if len(argv) > 1 else None
    resume = "--resume" in argv
    library = build(checkpoint_dir, resume)
    print(f"library {library_fingerprint(library)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
