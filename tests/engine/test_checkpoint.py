"""Tests for the generation-level checkpoint store and resume hooks.

The load-bearing property is *bit-identical resume*: a search killed
after any generation and resumed from its checkpoint must finish with
exactly the outcome of an uninterrupted run — same winners, same
histories, same evaluation counts — because the RNG state is captured
and restored exactly.  The second property is *refusal*: a checkpoint
written under different settings (fingerprint), a different schema
version, or a different algorithm must raise, never splice.
"""

import os
import pickle
import random

import numpy as np
import pytest

from repro.approx.nsga2 import Nsga2, Nsga2Config
from repro.engine.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    capture_rng_state,
    checkpoint_fingerprint,
    restore_rng_state,
)
from repro.engine.diskcache import (
    FitnessDiskCache,
    atomic_write_bytes,
    quarantine_corrupt_file,
)
from repro.errors import CheckpointError
from repro.ga.chromosome import ChromosomeSpace
from repro.ga.engine import GaConfig, GeneticAlgorithm
from repro.ga.fitness import FitnessResult


class TestRngSnapshots:
    def test_numpy_roundtrip_is_exact(self):
        rng = np.random.default_rng(7)
        rng.random(13)  # advance into the stream
        snapshot = capture_rng_state(rng)
        expected = rng.random(8).tolist()
        other = np.random.default_rng(999)
        restore_rng_state(other, snapshot)
        assert other.random(8).tolist() == expected

    def test_python_random_roundtrip_is_exact(self):
        rng = random.Random(7)
        rng.random()
        snapshot = capture_rng_state(rng)
        expected = [rng.random() for _ in range(8)]
        other = random.Random(0)
        restore_rng_state(other, snapshot)
        assert [other.random() for _ in range(8)] == expected

    def test_unknown_rng_rejected(self):
        with pytest.raises(CheckpointError, match="cannot capture"):
            capture_rng_state(object())

    def test_mismatched_snapshot_kind_rejected(self):
        snapshot = capture_rng_state(random.Random(1))
        with pytest.raises(CheckpointError, match="does not match"):
            restore_rng_state(np.random.default_rng(1), snapshot)


class TestCheckpointStore:
    def store(self, tmp_path, fingerprint="fp", name="slot"):
        return CheckpointStore(str(tmp_path), name, fingerprint)

    def test_missing_checkpoint_loads_none(self, tmp_path):
        store = self.store(tmp_path)
        assert not store.exists()
        assert store.load() is None

    def test_save_load_roundtrip(self, tmp_path):
        store = self.store(tmp_path)
        rng = np.random.default_rng(3)
        store.save("ga", 5, rng, {"population": [(1, 2)], "best": 9})
        assert store.exists()
        state = store.load(algorithm="ga")
        assert state.generation == 5
        assert state.payload == {"population": [(1, 2)], "best": 9}
        restored = np.random.default_rng(0)
        restore_rng_state(restored, state.rng_state)
        assert restored.random() == rng.random()

    def test_save_replaces_previous_generation(self, tmp_path):
        store = self.store(tmp_path)
        rng = np.random.default_rng(0)
        store.save("ga", 1, rng, {"gen": 1})
        store.save("ga", 2, rng, {"gen": 2})
        assert store.load().generation == 2
        assert len(os.listdir(tmp_path)) == 1  # one slot, atomic replace

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        self.store(tmp_path, fingerprint="old").save(
            "ga", 1, np.random.default_rng(0), {}
        )
        with pytest.raises(CheckpointError, match="different\\s+settings"):
            self.store(tmp_path, fingerprint="new").load()

    def test_algorithm_mismatch_refuses(self, tmp_path):
        store = self.store(tmp_path)
        store.save("nsga2", 1, np.random.default_rng(0), {})
        with pytest.raises(CheckpointError, match="belongs to algorithm"):
            store.load(algorithm="ga")

    def test_version_mismatch_refuses(self, tmp_path):
        store = self.store(tmp_path)
        store.save("ga", 1, np.random.default_rng(0), {})
        with open(store.path, "rb") as handle:
            record = pickle.load(handle)
        record["version"] = CHECKPOINT_VERSION + 1
        with open(store.path, "wb") as handle:
            pickle.dump(record, handle)
        with pytest.raises(CheckpointError, match="schema version"):
            store.load()

    def test_corrupt_checkpoint_quarantined_not_fatal(self, tmp_path):
        store = self.store(tmp_path)
        with open(store.path, "wb") as handle:
            handle.write(b"\x80\x05 definitely not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.load() is None
        assert not store.exists()  # moved aside, slot free for a fresh run
        assert any(".corrupt-" in name for name in os.listdir(tmp_path))

    def test_clear_is_idempotent(self, tmp_path):
        store = self.store(tmp_path)
        store.save("ga", 1, np.random.default_rng(0), {})
        store.clear()
        store.clear()
        assert store.load() is None

    def test_name_sanitised_for_filesystem(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "a/b:c d*e", "fp")
        store.save("ga", 0, np.random.default_rng(0), {})
        assert os.path.basename(store.path) == "a_b_c_d_e.ckpt"

    def test_fingerprint_is_stable_and_sensitive(self):
        assert checkpoint_fingerprint("a", 1) == checkpoint_fingerprint("a", 1)
        assert checkpoint_fingerprint("a", 1) != checkpoint_fingerprint("a", 2)


# -- search-level resume equivalence ---------------------------------------


def _space():
    return ChromosomeSpace(n_multipliers=4)


def _fitness(genome):
    cdp = sum((gene - 2) ** 2 for gene in genome) * 0.5 + 1.0
    return FitnessResult(
        genome=genome,
        cdp=cdp,
        carbon_g=cdp * 2.0,
        fps=30.0,
        accuracy_drop_percent=0.0,
        violation=0.0,
    )


class _CrashAfter:
    """Evaluator that raises once a call budget is spent (a 'crash')."""

    def __init__(self, evaluate, budget):
        self.evaluate = evaluate
        self.remaining = budget

    def __call__(self, genome):
        if self.remaining <= 0:
            raise RuntimeError("injected crash")
        self.remaining -= 1
        return self.evaluate(genome)


def _outcome_key(outcome):
    return (
        outcome.best.genome,
        outcome.best.cdp,
        [record.cdp for record in outcome.history],
        outcome.evaluations,
    )


class TestGaResume:
    CONFIG = GaConfig(population_size=8, generations=6, seed=11)

    def test_resume_after_crash_is_bit_identical(self, tmp_path):
        reference = GeneticAlgorithm(_space(), _fitness, self.CONFIG).run()
        store = CheckpointStore(str(tmp_path), "ga", "fp")
        # crash mid-way: enough budget for the initial population and a
        # couple of generations, then die inside generation 3
        with pytest.raises(RuntimeError, match="injected crash"):
            GeneticAlgorithm(
                _space(),
                _CrashAfter(_fitness, budget=3 * 8),
                self.CONFIG,
                checkpoint=store,
            ).run()
        crashed_at = store.load(algorithm="ga").generation
        assert 0 < crashed_at < self.CONFIG.generations
        resumed = GeneticAlgorithm(
            _space(), _fitness, self.CONFIG,
            checkpoint=store, resume_from=store,
        ).run()
        assert _outcome_key(resumed) == _outcome_key(reference)
        # the resumed run checkpointed through to the final generation
        assert store.load().generation == self.CONFIG.generations

    def test_resume_of_finished_run_runs_zero_generations(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "ga", "fp")
        first = GeneticAlgorithm(
            _space(), _fitness, self.CONFIG, checkpoint=store
        ).run()

        def must_not_evaluate(genome):
            raise AssertionError("resume of a finished run re-evaluated")

        resumed = GeneticAlgorithm(
            _space(), must_not_evaluate, self.CONFIG, resume_from=store
        ).run()
        assert _outcome_key(resumed) == _outcome_key(first)

    def test_resume_under_different_config_refuses(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "ga", "fp")
        GeneticAlgorithm(
            _space(), _fitness, self.CONFIG, checkpoint=store
        ).run()
        other = GaConfig(population_size=8, generations=6, seed=12)
        with pytest.raises(CheckpointError, match="cannot resume"):
            GeneticAlgorithm(
                _space(), _fitness, other, resume_from=store
            ).run()

    def test_no_checkpoint_store_means_no_files(self, tmp_path):
        GeneticAlgorithm(_space(), _fitness, self.CONFIG).run()
        assert os.listdir(tmp_path) == []


def _nsga_objectives(genome):
    total = sum(genome)
    return (float(total), float(len(genome) * 4 - total))


def _nsga_random(rng):
    return tuple(int(value) for value in rng.integers(0, 2, size=6))


class TestNsga2Resume:
    CONFIG = Nsga2Config(population_size=8, generations=6, seed=5)

    def test_resume_after_crash_is_bit_identical(self, tmp_path):
        reference = Nsga2(_nsga_objectives, _nsga_random, self.CONFIG)
        expected = reference.run()
        store = CheckpointStore(str(tmp_path), "nsga2", "fp")
        crashing = Nsga2(
            _CrashAfter(_nsga_objectives, budget=20),
            _nsga_random,
            self.CONFIG,
            checkpoint=store,
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            crashing.run()
        assert 0 < store.load(algorithm="nsga2").generation < self.CONFIG.generations
        resumed_search = Nsga2(
            _nsga_objectives, _nsga_random, self.CONFIG,
            checkpoint=store, resume_from=store,
        )
        assert resumed_search.run() == expected
        # the evaluation memo came back with the population, so the
        # distinct-evaluation count matches the uninterrupted run too
        assert resumed_search.evaluations == reference.evaluations

    def test_resume_under_different_config_refuses(self, tmp_path):
        store = CheckpointStore(str(tmp_path), "nsga2", "fp")
        Nsga2(
            _nsga_objectives, _nsga_random, self.CONFIG, checkpoint=store
        ).run()
        other = Nsga2Config(population_size=8, generations=9, seed=5)
        with pytest.raises(CheckpointError, match="cannot resume"):
            Nsga2(
                _nsga_objectives, _nsga_random, other, resume_from=store
            ).run()


# -- the hardened disk stores ----------------------------------------------


class TestAtomicWrites:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = str(tmp_path / "store.pkl")
        atomic_write_bytes(path, b"first")
        atomic_write_bytes(path, b"second")
        with open(path, "rb") as handle:
            assert handle.read() == b"second"
        assert os.listdir(tmp_path) == ["store.pkl"]

    def test_atomic_write_creates_parents(self, tmp_path):
        path = str(tmp_path / "deep" / "down" / "store.pkl")
        atomic_write_bytes(path, b"payload")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"

    def test_quarantine_moves_file_aside(self, tmp_path):
        path = str(tmp_path / "bad.pkl")
        with open(path, "wb") as handle:
            handle.write(b"junk")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            quarantine_corrupt_file(path, "test damage")
        assert not os.path.exists(path)
        assert os.path.exists(f"{path}.corrupt-{os.getpid()}")


class TestDiskCacheCorruption:
    def test_truncated_pickle_quarantined_and_run_continues(self, tmp_path):
        cache = FitnessDiskCache(str(tmp_path), "ctx")
        cache.put((1, 2), "value")
        cache.flush()
        with open(cache.path, "rb") as handle:
            healthy = handle.read()
        with open(cache.path, "wb") as handle:
            handle.write(healthy[: len(healthy) // 2])  # torn write
        fresh = FitnessDiskCache(str(tmp_path), "ctx")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert fresh.get((1, 2)) is None  # cold, not crashed
        fresh.put((3, 4), "other")
        fresh.flush()  # rewrites a healthy file
        assert FitnessDiskCache(str(tmp_path), "ctx").get((3, 4)) == "other"

    def test_wrong_payload_type_quarantined(self, tmp_path):
        cache = FitnessDiskCache(str(tmp_path), "ctx")
        with open(cache.path, "wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        with pytest.warns(RuntimeWarning, match="expected a dict"):
            assert len(cache) == 0

    def test_flush_write_is_atomic_no_temp_residue(self, tmp_path):
        cache = FitnessDiskCache(str(tmp_path), "ctx")
        cache.put((1,), "v")
        cache.flush()
        assert os.listdir(tmp_path) == [os.path.basename(cache.path)]
