"""Cell functions for the remote-backend tests.

Top-level module (not a ``test_*`` file) so that spawned worker daemons
can unpickle the functions by ``module.qualname`` reference — the
directory holding this file is prepended to the workers' ``PYTHONPATH``
by the tests.
"""

import os
import time


def square_offset(value, offset):
    return value * value + offset


def slow_square(value, delay):
    time.sleep(delay)
    return value * value


def tag_worker_pid(value):
    """Returns (value, executing pid) — for fleet-reuse checks."""
    return value, os.getpid()


def tag_worker_pid_slow(value, delay):
    """Like :func:`tag_worker_pid`, slowed so queued work interleaves."""
    time.sleep(delay)
    return value, os.getpid()


def raise_value_error(value):
    raise ValueError(f"deterministic cell failure for {value}")


def die_once_at(value, trigger, sentinel_path):
    """Kill the executing worker the first time the trigger cell runs.

    The sentinel file makes the fault injection deterministic: the
    worker that picks up the ``value == trigger`` cell creates the
    sentinel and dies with ``os._exit`` (no exception handling, no
    socket shutdown — a hard crash); the reassigned execution finds the
    sentinel and returns the normal pure-function result.  Non-trigger
    cells never die, so exactly one worker is lost per run.
    """
    if value == trigger and not os.path.exists(sentinel_path):
        with open(sentinel_path, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os._exit(17)
    return value * value


def die_always(value):
    """Hard-kill whichever worker executes this cell, every time."""
    os._exit(21)


def hang_once_at(value, trigger, sentinel_path, hang_s):
    """Hang (sleep well past the deadline) the first trigger execution.

    The first worker to pick up the ``value == trigger`` cell writes
    the sentinel and sleeps ``hang_s`` seconds — long enough for the
    coordinator's deadline sweep to revoke the task — then returns a
    *poisoned* result (``-1``); the reassigned execution finds the
    sentinel and returns the real square immediately.  If the late
    poisoned result were ever recorded, the job output would differ
    from serial, so the test catches double-recording for free.
    """
    if value == trigger and not os.path.exists(sentinel_path):
        with open(sentinel_path, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        time.sleep(hang_s)
        return -1
    return value * value


def square_batch(values, offset):
    """Batch-decomposable cell for ``GridRunner.map_batches`` tests."""
    return [value * value + offset for value in values]
