"""Chaos suite: real SIGKILLs against checkpointed searches and workers.

Three properties are pinned here, each against *genuine* process death
(``os.kill(pid, SIGKILL)`` — no atexit, no finally blocks, no flushing):

1. **Bit-identical resume** — a ``build_library`` subprocess SIGKILLed
   at a seeded-random generation, then resumed, produces a library
   fingerprint identical to an uninterrupted run's.
2. **Protocol-state coverage** — a remote worker killed at *every*
   protocol message ordinal (handshake greeting, each task, ...) never
   changes the run's results; the fleet's survivors finish the shards.
3. **Graceful degradation** — when the whole remote fleet dies,
   :class:`FallbackBackend` drains the unfinished shards locally with a
   warning instead of losing the run.

Every test carries a hard ``SIGALRM`` timeout so an injected fault that
wedges a loop fails loudly instead of hanging CI.
"""

import os
import signal
import socket
import subprocess
import sys
import time
import warnings

import pytest

import remote_cells
from repro.engine.backends import (
    CoordinatorConfig,
    FallbackBackend,
    RemoteBackend,
    RemoteCoordinator,
    RemoteRunError,
    SerialBackend,
    backend_names,
    spawn_local_worker,
)
from repro.engine.faults import (
    FAULTS_ENV,
    FaultInjector,
    parse_faults,
    reset_active_injector,
)
from repro.errors import ExperimentError

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(os.path.dirname(HERE)), "src")

CELLS = [(value, 100) for value in range(6)]
SHARDS = [CELLS[:2], CELLS[2:4], CELLS[4:]]
EXPECTED = [[value * value + 100 for value, _ in shard] for shard in SHARDS]

#: Per-test wall-clock budget; a wedged protocol loop must fail, not hang.
TEST_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def hard_timeout():
    """SIGALRM circuit breaker (no pytest-timeout dependency needed)."""

    def on_alarm(signum, frame):  # pragma: no cover - only on a hang
        raise TimeoutError(f"chaos test exceeded {TEST_TIMEOUT_S}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_TIMEOUT_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def isolated_faults(monkeypatch):
    """Keep fault specs out of (and reset the cache of) this process."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_active_injector()
    yield
    reset_active_injector()


@pytest.fixture(autouse=True)
def worker_pythonpath(monkeypatch):
    """Let spawned workers import ``remote_cells`` by reference."""
    existing = os.environ.get("PYTHONPATH")
    merged = HERE if not existing else HERE + os.pathsep + existing
    monkeypatch.setenv("PYTHONPATH", merged)


def _run_chaos_runner(checkpoint_dir, resume=False, faults=None, seed=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if faults is not None:
        env[FAULTS_ENV] = faults
    else:
        env.pop(FAULTS_ENV, None)
    command = [sys.executable, os.path.join(HERE, "chaos_runner.py"),
               str(checkpoint_dir)]
    if resume:
        command.append("--resume")
    return subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=100
    )


def _run_coordcrash_runner(
    checkpoint_dir, port, journal, resume=False, faults=None
):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if faults is not None:
        env[FAULTS_ENV] = faults
    else:
        env.pop(FAULTS_ENV, None)
    command = [
        sys.executable,
        os.path.join(HERE, "coordcrash_runner.py"),
        str(checkpoint_dir),
        "--port",
        str(port),
        "--journal",
        str(journal),
    ]
    if resume:
        command.append("--resume")
    # the runner's spawned worker daemons inherit its stdio; after a
    # SIGKILL the orphans keep a capture *pipe* open long past the
    # runner's death (wedging subprocess.run), so collect output
    # through files, which only need the runner itself to exit
    out_path = str(checkpoint_dir) + ".stdout"
    err_path = str(checkpoint_dir) + ".stderr"
    with open(out_path, "w") as out, open(err_path, "w") as err:
        completed = subprocess.run(
            command, env=env, stdout=out, stderr=err, timeout=100
        )
    with open(out_path) as out, open(err_path) as err:
        return subprocess.CompletedProcess(
            completed.args, completed.returncode,
            stdout=out.read(), stderr=err.read(),
        )


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _fingerprint(completed: subprocess.CompletedProcess) -> str:
    for line in completed.stdout.splitlines():
        if line.startswith("library "):
            return line.split(" ", 1)[1]
    raise AssertionError(
        f"no library fingerprint in output:\n{completed.stdout}\n"
        f"{completed.stderr}"
    )


class TestSigkillResume:
    def test_sigkill_at_seeded_generation_resumes_bit_identically(
        self, tmp_path
    ):
        """The tentpole property, end to end against a real SIGKILL."""
        reference = _run_chaos_runner(tmp_path / "ref")
        assert reference.returncode == 0, reference.stderr

        # the runner's search has 4 generations (checkpoints 0..4);
        # the seeded draw picks the kill generation reproducibly
        chaos_dir = tmp_path / "chaos"
        killed = _run_chaos_runner(
            chaos_dir, faults="kill@gen:rand:1337:4"
        )
        assert killed.returncode == -signal.SIGKILL
        assert "library" not in killed.stdout  # died mid-search
        snapshots = os.listdir(chaos_dir)
        assert snapshots, "SIGKILL before any checkpoint was written"
        assert all(name.endswith(".ckpt") for name in snapshots)

        resumed = _run_chaos_runner(chaos_dir, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert _fingerprint(resumed) == _fingerprint(reference)

    def test_double_kill_then_resume(self, tmp_path):
        """Crashing twice at different generations still converges."""
        reference = _run_chaos_runner(tmp_path / "ref")
        chaos_dir = tmp_path / "chaos"
        first = _run_chaos_runner(chaos_dir, faults="kill@gen:1")
        assert first.returncode == -signal.SIGKILL
        second = _run_chaos_runner(
            chaos_dir, resume=True, faults="kill@gen:3"
        )
        assert second.returncode == -signal.SIGKILL
        final = _run_chaos_runner(chaos_dir, resume=True)
        assert final.returncode == 0, final.stderr
        assert _fingerprint(final) == _fingerprint(reference)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        """--resume against an empty directory is a normal cold run."""
        run = _run_chaos_runner(tmp_path / "empty", resume=True)
        assert run.returncode == 0, run.stderr
        assert _fingerprint(run) == _fingerprint(
            _run_chaos_runner(tmp_path / "ref")
        )


class TestWorkerKillSweep:
    """SIGKILL a worker at every protocol message ordinal.

    Ordinal 0 is the handshake greeting (worker dies registered but
    idle); ordinal N >= 1 is the Nth post-handshake message — task
    assignments and, eventually, shutdown.  For every strike point the
    surviving worker must finish the shards with unchanged results.
    """

    @pytest.mark.parametrize("ordinal", [0, 1, 2, 3])
    def test_kill_at_protocol_ordinal(self, monkeypatch, ordinal):
        import threading

        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            # the faulty worker serves the run *alone*, so with three
            # shards it deterministically receives the greeting
            # (ordinal 0) and then one message per task — every swept
            # ordinal is reached, and the strike always lands
            monkeypatch.setenv(FAULTS_ENV, f"kill@recv:{ordinal}")
            faulty = spawn_local_worker(coordinator.address)
            monkeypatch.delenv(FAULTS_ENV)
            healthy = None
            try:
                assert faulty.wait(timeout=30) == -signal.SIGKILL
                healthy = spawn_local_worker(coordinator.address)
                thread.join(timeout=60)
                assert outcome.get("result") == EXPECTED
            finally:
                coordinator.close()
                for proc in (faulty, healthy):
                    if proc is None:
                        continue
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()

    def test_injected_drop_is_a_clean_worker_exit(self, monkeypatch):
        """drop faults close the connection; the worker exits 0."""
        import threading

        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            monkeypatch.setenv(FAULTS_ENV, "drop@recv:1")
            dropping = spawn_local_worker(coordinator.address)
            monkeypatch.delenv(FAULTS_ENV)
            healthy = None
            try:
                # solo worker: its first task is deterministically
                # recv ordinal 1, so the drop always fires — and unlike
                # a kill it exits cleanly
                assert dropping.wait(timeout=30) == 0
                healthy = spawn_local_worker(coordinator.address)
                thread.join(timeout=60)
                assert outcome.get("result") == EXPECTED
            finally:
                coordinator.close()
                for proc in (dropping, healthy):
                    if proc is None:
                        continue
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()


class _FailingPrimary:
    """Scripted stand-in for a remote backend that lost its fleet."""

    def __init__(self, error):
        self.error = error
        self.calls = 0

    def map_shards(self, fn, shards):
        self.calls += 1
        raise self.error


class TestFallbackBackend:
    def test_recoverable_failure_drains_missing_shards(self):
        completed = {1: EXPECTED[1]}  # shard 1 finished before the abort
        primary = _FailingPrimary(
            RemoteRunError("fleet died", completed=completed, recoverable=True)
        )
        backend = FallbackBackend(primary, SerialBackend())
        with pytest.warns(RuntimeWarning, match="draining 2 of 3"):
            result = backend.map_shards(remote_cells.square_offset, SHARDS)
        assert result == EXPECTED

    def test_unrecoverable_failure_reraises(self):
        primary = _FailingPrimary(
            RemoteRunError("cell raised ValueError", recoverable=False)
        )
        backend = FallbackBackend(primary, SerialBackend())
        with pytest.raises(RemoteRunError, match="cell raised"):
            backend.map_shards(remote_cells.square_offset, SHARDS)

    def test_healthy_primary_passes_through(self):
        backend = FallbackBackend(SerialBackend(), SerialBackend())
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no spurious degradation noise
            assert backend.map_shards(remote_cells.square_offset, SHARDS) == (
                EXPECTED
            )

    def test_registered_as_grid_mode(self):
        assert "remote-fallback" in backend_names()

    def test_end_to_end_fleet_death_drains_locally(self, monkeypatch):
        """A spawned fleet whose every worker dies still returns results."""
        monkeypatch.setenv(FAULTS_ENV, "kill@recv:1")  # die on first task
        primary = RemoteBackend(coordinator="127.0.0.1:0", spawn=1)
        backend = FallbackBackend(primary, SerialBackend())
        try:
            with pytest.warns(RuntimeWarning, match="draining"):
                assert (
                    backend.map_shards(remote_cells.square_offset, SHARDS)
                    == EXPECTED
                )
        finally:
            monkeypatch.delenv(FAULTS_ENV, raising=False)
            backend.close()


class TestCoordinatorSigkillRestart:
    """SIGKILL the coordinator *host* mid-build, restart, compare."""

    def test_coordkill_midbuild_restart_bit_identical(self, tmp_path):
        reference = _run_chaos_runner(tmp_path / "ref")
        assert reference.returncode == 0, reference.stderr

        port = _free_port()
        journal = tmp_path / "coordinator.journal"
        chaos_dir = tmp_path / "chaos"
        killed = _run_coordcrash_runner(
            chaos_dir, port, journal, faults="coordkill@gen:2"
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert "library" not in killed.stdout  # died mid-build
        assert os.path.exists(journal), "no journal survived the crash"

        # same checkpoint dir, same port, same journal: the restarted
        # incarnation resumes the search, replays journalled variant
        # scores under a bumped epoch, and adopts redialing workers
        resumed = _run_coordcrash_runner(
            chaos_dir, port, journal, resume=True
        )
        assert resumed.returncode == 0, resumed.stderr
        assert _fingerprint(resumed) == _fingerprint(reference)
        epochs = [
            line for line in resumed.stdout.splitlines()
            if line.startswith("epoch ")
        ]
        assert epochs and int(epochs[0].split()[1]) >= 1

    def test_cold_coordinator_run_matches_local_reference(self, tmp_path):
        """No faults: the remote-scored build equals the local build."""
        reference = _run_chaos_runner(tmp_path / "ref")
        assert reference.returncode == 0, reference.stderr
        remote = _run_coordcrash_runner(
            tmp_path / "cold", _free_port(), tmp_path / "cold.journal"
        )
        assert remote.returncode == 0, remote.stderr
        assert _fingerprint(remote) == _fingerprint(reference)


class TestHungWorker:
    def test_hang_fault_is_revoked_requeued_and_quarantined(
        self, monkeypatch
    ):
        """``hang@task`` end to end: the deadline sweep revokes the
        hung worker's shard, a healthy worker completes it with
        unchanged results, and the hung worker is quarantined."""
        import threading

        config = CoordinatorConfig(
            poll_interval=0.05,
            task_deadline_s=0.6,
            quarantine_threshold=1,
            quarantine_cooldown_s=60.0,
        )
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            # solo worker: its first task deterministically hangs
            monkeypatch.setenv(FAULTS_ENV, "hang@task:0")
            hung = spawn_local_worker(coordinator.address)
            monkeypatch.delenv(FAULTS_ENV)
            healthy = None
            try:
                assert _wait_until(
                    lambda: any(
                        snap["timeouts"] >= 1
                        for snap in coordinator.fleet_health().values()
                    )
                ), "deadline sweep never revoked the hung task"
                healthy = spawn_local_worker(coordinator.address)
                thread.join(timeout=60)
                assert outcome.get("result") == EXPECTED
                assert any(
                    snap["state"] == "quarantined" and snap["timeouts"] >= 1
                    for snap in coordinator.fleet_health().values()
                )
            finally:
                coordinator.close()
                if healthy is not None:
                    healthy.wait(timeout=10)
                hung.kill()  # hangs by design; reap it
                hung.wait()


class TestInjectedCorruption:
    def test_corrupt_frame_is_contained_by_the_coordinator(
        self, monkeypatch
    ):
        """``corrupt@recv``: the worker answers with a garbage frame
        and exits cleanly; the coordinator treats it as a dead worker
        and requeues the held shard."""
        import threading

        with RemoteCoordinator("127.0.0.1:0") as coordinator:
            outcome = {}

            def run():
                outcome["result"] = coordinator.map_shards(
                    remote_cells.square_offset, SHARDS
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            # solo worker: recv ordinal 1 is its first task message
            monkeypatch.setenv(FAULTS_ENV, "corrupt@recv:1")
            corrupting = spawn_local_worker(coordinator.address)
            monkeypatch.delenv(FAULTS_ENV)
            healthy = None
            try:
                assert corrupting.wait(timeout=30) == 0
                healthy = spawn_local_worker(coordinator.address)
                thread.join(timeout=60)
                assert outcome.get("result") == EXPECTED
            finally:
                coordinator.close()
                for proc in (corrupting, healthy):
                    if proc is None:
                        continue
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()


class TestFaultGrammar:
    def test_new_kinds_parse(self):
        specs = parse_faults("hang@task:2,corrupt@recv:1,coordkill@gen:3")
        assert [(f.kind, f.point, f.at) for f in specs] == [
            ("hang", "task", 2.0),
            ("corrupt", "recv", 1.0),
            ("coordkill", "gen", 3.0),
        ]

    def test_kind_point_constraints(self):
        for bad in ("hang@recv:0", "corrupt@task:0", "coordkill@recv:0"):
            with pytest.raises(ExperimentError, match="only support"):
                parse_faults(bad)

    def test_coordkill_is_inert_without_a_live_coordinator(self):
        # probed in a subprocess: other tests in the same pytest run
        # legitimately leave the persistent shared_remote_backend
        # coordinator warm, and a live coordinator is exactly what arms
        # coordkill — firing the injector in-process would SIGKILL the
        # whole test run if anything before us touched that singleton
        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.engine.faults import FaultInjector, "
                "parse_faults\n"
                "injector = FaultInjector(parse_faults('coordkill@gen:0'))\n"
                "injector.on_checkpoint_saved(0)\n"
                "print('inert')\n",
            ],
            env={**os.environ, "PYTHONPATH": SRC},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert probe.returncode == 0, probe.stderr
        assert "inert" in probe.stdout


class TestCoordinatorConfig:
    def test_defaults(self):
        config = CoordinatorConfig()
        assert config.poll_interval == 0.2
        assert config.shutdown_timeout == 5.0

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_COORDINATOR_POLL_S", "0.05")
        monkeypatch.setenv("REPRO_COORDINATOR_SHUTDOWN_S", "11")
        config = CoordinatorConfig.from_env()
        assert config.poll_interval == 0.05
        assert config.shutdown_timeout == 11.0

    def test_junk_env_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_COORDINATOR_POLL_S", "fast")
        with pytest.warns(RuntimeWarning, match="non-numeric"):
            assert CoordinatorConfig.from_env().poll_interval == 0.2

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError, match="poll_interval"):
            CoordinatorConfig(poll_interval=0.0)
        with pytest.raises(ExperimentError, match="shutdown_timeout"):
            CoordinatorConfig(shutdown_timeout=-1.0)

    def test_coordinator_honours_config(self):
        config = CoordinatorConfig(poll_interval=0.05)
        with RemoteCoordinator("127.0.0.1:0", config=config) as coordinator:
            assert coordinator.config.poll_interval == 0.05
            worker = spawn_local_worker(coordinator.address)
            try:
                assert (
                    coordinator.map_shards(remote_cells.square_offset, SHARDS)
                    == EXPECTED
                )
            finally:
                coordinator.close()
                worker.wait(timeout=10)
