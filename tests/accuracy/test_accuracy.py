"""Unit tests for analytical + behavioural accuracy models."""

import numpy as np
import pytest

from repro.accuracy.analytical import (
    AnalyticalAccuracyModel,
    multiplier_relative_rmse,
)
from repro.accuracy.behavioral import BehavioralValidator, _ranks, _spearman
from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.errors import AccuracyModelError
from repro.nn.synthetic import make_task

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


class TestRelativeRmse:
    def test_exact_is_zero(self, library):
        assert multiplier_relative_rmse(library.exact) == 0.0

    def test_positive_for_approximate(self, library):
        for entry in library:
            if not entry.is_exact:
                assert multiplier_relative_rmse(entry) > 0.0

    def test_grows_with_truncation(self, library):
        light = library.by_name("trunc_a1b1")
        heavy = library.by_name("trunc_a4b4")
        assert multiplier_relative_rmse(heavy) > multiplier_relative_rmse(light)


class TestAnalyticalModel:
    def test_exact_never_drops(self, library):
        model = AnalyticalAccuracyModel()
        for net in ("vgg16", "vgg19", "resnet50", "resnet152"):
            assert model.drop_percent(net, library.exact) == 0.0

    def test_monotone_in_multiplier_error(self, library):
        model = AnalyticalAccuracyModel()
        ordered = sorted(library, key=multiplier_relative_rmse)
        drops = [model.drop_percent("vgg16", m) for m in ordered]
        assert drops == sorted(drops)

    def test_deeper_network_larger_drop(self, library):
        model = AnalyticalAccuracyModel()
        mult = library.by_name("trunc_a2b2")
        assert model.drop_percent("resnet152", mult) > model.drop_percent(
            "resnet50", mult
        ) > 0

    def test_drop_bounded_by_saturation(self, library):
        model = AnalyticalAccuracyModel(max_drop_percent=50.0)
        worst = library.multipliers[-1]
        assert model.drop_percent("resnet152", worst) <= 50.0

    def test_realistic_range_for_vgg16(self, library):
        """Light approximations land in the sub-3%-drop regime."""
        model = AnalyticalAccuracyModel()
        light = library.by_name("trunc_a1b0")
        assert 0.05 < model.drop_percent("vgg16", light) < 3.0

    def test_invalid_configuration(self):
        with pytest.raises(AccuracyModelError):
            AnalyticalAccuracyModel(noise_gain=-1.0)
        with pytest.raises(AccuracyModelError):
            AnalyticalAccuracyModel(max_drop_percent=0.0)


class TestSpearmanHelpers:
    def test_perfect_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.array([1.0, 2.0, 3.0])
        assert _spearman(a, -a) == pytest.approx(-1.0)

    def test_ties_average(self):
        ranks = _ranks(np.array([5.0, 5.0, 1.0]))
        assert ranks.tolist() == [1.5, 1.5, 0.0]

    def test_constant_series(self):
        a = np.array([1.0, 1.0, 1.0])
        assert _spearman(a, np.array([1.0, 2.0, 3.0])) == 0.0


class TestBehavioralValidator:
    @pytest.fixture(scope="class")
    def validator(self):
        return BehavioralValidator(
            task=make_task(seed=0, n_train_per_class=15, n_test_per_class=10)
        )

    def test_exact_multiplier_no_drop(self, validator, library):
        assert validator.drop_percent(library.exact) == pytest.approx(0.0)

    def test_heavy_truncation_visible_drop(self, validator, library):
        assert validator.drop_percent(library.by_name("trunc_a4b4")) > 5.0

    def test_drop_cached(self, validator, library):
        first = validator.drop_percent(library.by_name("trunc_a2b2"))
        second = validator.drop_percent(library.by_name("trunc_a2b2"))
        assert first == second

    def test_ranking_agreement_strong(self, validator, library):
        """Analytical ranking must agree with LUT-simulated reality.

        Near-zero-error multipliers are excluded: their behavioural
        drops are within measurement noise on the small validation task,
        so only the regime with measurable drops is rank-checked.
        """
        model = AnalyticalAccuracyModel()
        multipliers = [
            m for m in library if model.drop_percent("vgg16", m) >= 1.0
        ]
        assert len(multipliers) >= 4
        analytical = [model.drop_percent("vgg16", m) for m in multipliers]
        rho = validator.ranking_agreement(multipliers, analytical)
        assert rho > 0.8

    def test_ranking_agreement_positive_overall(self, validator, library):
        model = AnalyticalAccuracyModel()
        multipliers = list(library)
        analytical = [model.drop_percent("vgg16", m) for m in multipliers]
        rho = validator.ranking_agreement(multipliers, analytical)
        assert rho > 0.4

    def test_agreement_input_validation(self, validator, library):
        with pytest.raises(AccuracyModelError):
            validator.ranking_agreement(list(library), [1.0])
        with pytest.raises(AccuracyModelError):
            validator.ranking_agreement(list(library)[:2], [1.0, 2.0])


class TestBatchedValidator:
    """Library-batched drops must be bit-identical to the scalar loop."""

    def _task(self):
        return make_task(seed=0, n_train_per_class=15, n_test_per_class=10)

    def test_drop_percents_match_scalar(self, library):
        scalar = BehavioralValidator(task=self._task())
        batched = BehavioralValidator(task=self._task())
        expected = [scalar.drop_percent(m) for m in library]
        got = batched.drop_percents(list(library))
        assert got == expected  # bit-identical, not approx

    def test_drop_percents_populates_cache(self, library):
        validator = BehavioralValidator(task=self._task())
        drops = validator.drop_percents(list(library))
        # subsequent scalar queries hit the cache with the same values
        assert [validator.drop_percent(m) for m in library] == drops

    def test_partial_cache_mixed_batch(self, library):
        validator = BehavioralValidator(task=self._task())
        warm = validator.drop_percent(library[0])
        drops = validator.drop_percents(list(library))
        assert drops[0] == warm

    def test_duplicates_handled(self, library):
        validator = BehavioralValidator(task=self._task())
        twice = validator.drop_percents([library[1], library[1]])
        assert twice[0] == twice[1]

    def test_ranking_agreement_unchanged_by_batching(self, library):
        model = AnalyticalAccuracyModel()
        multipliers = list(library)
        analytical = [model.drop_percent("vgg16", m) for m in multipliers]
        batched = BehavioralValidator(task=self._task())
        scalar = BehavioralValidator(task=self._task())
        for m in multipliers:
            scalar.drop_percent(m)  # pre-populate via the scalar path
        assert batched.ranking_agreement(
            multipliers, analytical
        ) == scalar.ranking_agreement(multipliers, analytical)


class TestPredictor:
    def test_memoisation(self, library):
        predictor = AccuracyPredictor()
        mult = library.by_name("trunc_a1b1")
        first = predictor.drop_percent("vgg16", mult)
        second = predictor.drop_percent("vgg16", mult)
        assert first == second

    def test_feasible_sets_shrink_with_threshold(self, library):
        predictor = AccuracyPredictor()
        loose = predictor.feasible_multipliers("vgg16", library, 2.0)
        tight = predictor.feasible_multipliers("vgg16", library, 0.5)
        assert set(m.name for m in tight) <= set(m.name for m in loose)
        assert library.exact.name in {m.name for m in tight}

    def test_smallest_feasible_is_feasible_and_minimal(self, library):
        predictor = AccuracyPredictor()
        chosen = predictor.smallest_feasible("vgg16", library, 2.0)
        assert predictor.drop_percent("vgg16", chosen) <= 2.0
        for other in predictor.feasible_multipliers("vgg16", library, 2.0):
            assert chosen.area_ge <= other.area_ge

    def test_negative_threshold_rejected(self, library):
        predictor = AccuracyPredictor()
        with pytest.raises(AccuracyModelError):
            predictor.feasible_multipliers("vgg16", library, -1.0)

    def test_impossible_budget(self, library):
        predictor = AccuracyPredictor()
        # the exact multiplier always meets any non-negative budget,
        # so only an impossible library-free scenario raises; check the
        # error path via an empty feasible set by filtering exact out
        feasible = predictor.feasible_multipliers("vgg16", library, 0.0)
        assert all(m.is_exact for m in feasible)
