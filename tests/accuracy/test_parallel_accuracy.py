"""The engine-backed accuracy stage: backend-sharded drops == scalar.

The behavioural accuracy study is the fourth engine client: a
:class:`BehavioralValidator` given a :class:`GridRunner` shards the
uncached multiplier stack into contiguous sub-stacks dispatched through
the :class:`ExecutorBackend` registry.  Accuracy per multiplier is
independent of which sub-stack carries it, so every backend, shard
count, and ``stack_workers`` value must return the scalar reference's
drops bit for bit — these tests pin that contract for serial, thread,
process, and remote dispatch.
"""

import pytest

from repro.accuracy.behavioral import BehavioralValidator, _accuracy_batch_cell
from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.engine.backends import (
    shutdown_remote_backends,
    shutdown_shared_pools,
)
from repro.engine.grid import GridConfig, GridRunner
from repro.nn.synthetic import make_task

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def reference_drops(library):
    """Scalar-loop drops — the bit-identity reference for every mode."""
    validator = BehavioralValidator(task=_task())
    return [validator.drop_percent(m) for m in library]


def _task():
    return make_task(seed=0, n_train_per_class=15, n_test_per_class=10)


def _runner(mode, workers=2, shards=None, coordinator=None):
    return GridRunner(
        GridConfig(
            mode=mode, workers=workers, shards=shards, coordinator=coordinator
        )
    )


class TestBackendShardedDrops:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_mode_matches_scalar_reference(
        self, mode, library, reference_drops
    ):
        validator = BehavioralValidator(task=_task(), runner=_runner(mode))
        assert validator.drop_percents(list(library)) == reference_drops

    def test_remote_matches_scalar_reference(self, library, reference_drops):
        validator = BehavioralValidator(
            task=_task(), runner=_runner("remote", workers=2)
        )
        try:
            assert validator.drop_percents(list(library)) == reference_drops
        finally:
            shutdown_remote_backends()

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_substack_count_never_changes_drops(
        self, shards, library, reference_drops
    ):
        validator = BehavioralValidator(
            task=_task(), runner=_runner("thread", shards=shards)
        )
        assert validator.drop_percents(list(library)) == reference_drops

    def test_stack_workers_with_sharding(self, library, reference_drops):
        validator = BehavioralValidator(
            task=_task(), stack_workers=3, runner=_runner("thread")
        )
        assert validator.drop_percents(list(library)) == reference_drops

    def test_sharded_populates_same_cache(self, library):
        validator = BehavioralValidator(task=_task(), runner=_runner("thread"))
        drops = validator.drop_percents(list(library))
        # scalar queries afterwards must hit the cache bit-for-bit
        assert [validator.drop_percent(m) for m in library] == drops

    def test_process_pool_cleanup(self):
        shutdown_shared_pools()  # leave no warm pool behind for other tests


class TestAccuracyBatchCell:
    def test_cell_is_batch_decomposable(self, library):
        """fn(a + b) == fn(a) + fn(b) — the map_batches requirement."""
        task = _task()
        luts = [m.lut for m in library]
        whole = _accuracy_batch_cell(luts, task, 1)
        split = _accuracy_batch_cell(luts[:3], task, 1) + _accuracy_batch_cell(
            luts[3:], task, 1
        )
        assert whole == split


class TestSettingsWiring:
    def test_settings_validator_matches_reference(
        self, library, reference_drops
    ):
        from dataclasses import replace

        from repro.experiments.common import fast_settings

        settings = replace(
            fast_settings(),
            accuracy_mode="thread",
            accuracy_workers=2,
            stack_workers=2,
        )
        validator = settings.validator(task=_task())
        assert validator.drop_percents(list(library)) == reference_drops

    def test_invalid_stack_workers_rejected_early(self):
        from dataclasses import replace

        from repro.errors import AccuracyModelError
        from repro.experiments.common import fast_settings

        with pytest.raises(AccuracyModelError, match="stack_workers"):
            replace(fast_settings(), stack_workers=0)

    def test_coordinator_without_remote_mode_rejected(self):
        """An explicit coordinator must never be silently ignored."""
        from dataclasses import replace

        from repro.errors import ExperimentError
        from repro.experiments.common import fast_settings

        settings = replace(
            fast_settings(), accuracy_coordinator="10.0.0.5:9000"
        )
        with pytest.raises(ExperimentError, match="accuracy_mode='remote'"):
            settings.accuracy_runner()
        # the grid coordinator doubling as the fallback bind address is
        # fine — the accuracy stage only reads it once remote is chosen
        settings = replace(
            fast_settings(), grid_mode="remote", grid_coordinator="127.0.0.1:0"
        )
        assert settings.accuracy_runner().config.coordinator is None

    def test_invalid_accuracy_mode_rejected(self):
        from dataclasses import replace

        from repro.errors import ExperimentError
        from repro.experiments.common import fast_settings

        settings = replace(fast_settings(), accuracy_mode="banana")
        with pytest.raises(ExperimentError, match="unknown grid mode"):
            settings.accuracy_runner()


class TestPredictorIntegration:
    def test_behavioral_agreement_identical_across_validators(self, library):
        plain = AccuracyPredictor(
            validator=BehavioralValidator(task=_task())
        ).behavioral_agreement(library)
        sharded = AccuracyPredictor().behavioral_agreement(
            library,
            validator=BehavioralValidator(
                task=_task(), stack_workers=2, runner=_runner("thread")
            ),
        )
        assert plain == sharded

    def test_ensure_validator_installs_and_memoises(self):
        predictor = AccuracyPredictor()
        first = predictor.ensure_validator()
        assert predictor.ensure_validator() is first
        custom = BehavioralValidator(task=_task())
        assert predictor.ensure_validator(custom) is custom
        assert predictor.validator is custom
