"""Unit tests for the workload zoo (shape and budget sanity)."""

import pytest

from repro.dataflow.layers import ConvLayer, FCLayer
from repro.errors import WorkloadError
from repro.nn.zoo import (
    WORKLOAD_NAMES,
    resnet50,
    resnet152,
    vgg16,
    vgg19,
    workload,
    workload_depths,
)

# Published single-inference MAC budgets (int8, 224x224), in GMACs.
EXPECTED_GMACS = {
    "vgg16": 15.47,
    "vgg19": 19.63,
    "resnet50": 4.09,
    "resnet152": 11.51,
}

# Published parameter counts, in MB of int8 weights.
EXPECTED_WEIGHT_MB = {
    "vgg16": 138.3,
    "vgg19": 143.7,
    "resnet50": 25.5,
    "resnet152": 60.0,
}


class TestBudgets:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_mac_budget_matches_published(self, name):
        net = workload(name)
        gmacs = net.total_macs / 1e9
        assert gmacs == pytest.approx(EXPECTED_GMACS[name], rel=0.02)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_weight_budget_matches_published(self, name):
        net = workload(name)
        mb = net.total_weight_bytes / 1e6
        assert mb == pytest.approx(EXPECTED_WEIGHT_MB[name], rel=0.03)


class TestVggStructure:
    def test_vgg16_layer_counts(self):
        net = vgg16()
        convs = [l for l in net.layers if isinstance(l, ConvLayer)]
        fcs = [l for l in net.layers if isinstance(l, FCLayer)]
        assert len(convs) == 13
        assert len(fcs) == 3

    def test_vgg19_has_three_more_convs(self):
        convs16 = len([l for l in vgg16().layers if isinstance(l, ConvLayer)])
        convs19 = len([l for l in vgg19().layers if isinstance(l, ConvLayer)])
        assert convs19 == convs16 + 3

    def test_vgg_fc6_shape(self):
        fc6 = next(l for l in vgg16().layers if l.name == "fc6")
        assert fc6.in_features == 512 * 7 * 7
        assert fc6.out_features == 4096

    def test_all_convs_3x3_same(self):
        for layer in vgg16().layers:
            if isinstance(layer, ConvLayer):
                assert layer.kernel == 3
                assert layer.out_height == layer.in_height


class TestResnetStructure:
    def test_resnet50_conv_count(self):
        # 1 stem + 3*(3+1) + 4*3+1 ... : 53 convs + 1 fc = 54 compute layers
        net = resnet50()
        convs = [l for l in net.layers if isinstance(l, ConvLayer)]
        assert len(convs) == 53

    def test_resnet152_conv_count(self):
        net = resnet152()
        convs = [l for l in net.layers if isinstance(l, ConvLayer)]
        # 1 stem + sum(blocks)*3 + 4 downsample = 1 + 150 + 4
        assert len(convs) == 155

    def test_stem_shape(self):
        stem = resnet50().layers[0]
        assert isinstance(stem, ConvLayer)
        assert stem.kernel == 7
        assert stem.stride == 2
        assert stem.out_height == 112

    def test_final_stage_size(self):
        fc = resnet152().layers[-1]
        assert isinstance(fc, FCLayer)
        assert fc.in_features == 2048
        assert fc.out_features == 1000

    def test_spatial_sizes_decrease_monotonically(self):
        sizes = [
            layer.in_height
            for layer in resnet50().layers
            if isinstance(layer, ConvLayer)
        ]
        assert sizes[0] == 224
        assert min(sizes) == 7
        assert all(a >= b for a, b in zip(sizes, sizes[1:] )) is False  # 1x1 convs repeat sizes
        assert sorted(set(sizes), reverse=True) == [224, 56, 28, 14, 7]


class TestLookup:
    def test_workload_names(self):
        assert set(WORKLOAD_NAMES) == {"vgg16", "vgg19", "resnet50", "resnet152"}

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            workload("alexnet")

    def test_workload_cached(self):
        assert workload("vgg16") is workload("vgg16")

    def test_depths(self):
        depths = workload_depths()
        assert depths["vgg16"] == 16
        assert depths["vgg19"] == 19
        assert depths["resnet50"] == 54
        assert depths["resnet152"] == 156
