"""Property tests: the M-multiplier batched forward == scalar forward.

The batched engine must be an *observation-free* optimisation: for every
multiplier in the stack, logits, predictions, and intermediate
quantisation must reproduce the scalar reference bit for bit.  These
tests pin that contract on the tiny models the behavioural study uses,
including awkward strides, paddings, biases, and degenerate LUTs.
"""

import numpy as np
import pytest

from repro.approx.lut import LutMultiplier
from repro.errors import AccuracyModelError
from repro.nn.inference import (
    ConvSpec,
    DenseSpec,
    PoolSpec,
    QuantCNN,
    _im2col,
    _LutStack,
    _stack_tiles,
    resolve_stack_workers,
)
from repro.nn.synthetic import make_task


def _lut_library(seed: int = 0, count: int = 5):
    """Exact + assorted approximate 8x8 LUTs (deterministic)."""
    exact = LutMultiplier.exact(8, 8)
    rng = np.random.default_rng(seed)
    luts = [exact]
    for index in range(count - 1):
        noise = rng.integers(-400, 400, size=exact.table.shape)
        table = np.maximum(exact.table + noise * (index + 1), 0)
        luts.append(
            LutMultiplier(table.astype(np.int64), 8, 8, name=f"noisy{index}")
        )
    return luts


def _model(seed: int = 0) -> QuantCNN:
    rng = np.random.default_rng(seed)
    return QuantCNN(
        layers=[
            ConvSpec(
                weights=rng.standard_normal((4, 1, 3, 3)) * 0.3,
                bias=rng.standard_normal(4) * 0.1,
            ),
            PoolSpec(2),
            ConvSpec(
                weights=rng.standard_normal((6, 4, 3, 3)) * 0.3,
                stride=2,
                padding=1,
            ),
            DenseSpec(
                weights=rng.standard_normal((3, 6 * 2 * 2)) * 0.3,
                bias=rng.standard_normal(3) * 0.1,
                relu=True,
            ),
        ]
    )


class TestForwardStackBitIdentity:
    @pytest.fixture(scope="class")
    def calibrated(self):
        model = _model()
        x = np.random.default_rng(1).standard_normal((7, 1, 8, 8))
        model.calibrate(x)
        return model, x

    def test_every_multiplier_matches_scalar(self, calibrated):
        model, x = calibrated
        luts = _lut_library()
        stacked = model.forward_stack(x, luts)
        assert stacked.shape == (len(luts), 7, 3)
        for index, lut in enumerate(luts):
            scalar = model.forward(x, lut)
            assert np.array_equal(stacked[index], scalar), lut.name

    def test_single_multiplier_stack(self, calibrated):
        model, x = calibrated
        lut = _lut_library()[2]
        stacked = model.forward_stack(x, [lut])
        assert np.array_equal(stacked[0], model.forward(x, lut))

    def test_duplicate_multipliers_agree(self, calibrated):
        model, x = calibrated
        lut = _lut_library()[1]
        stacked = model.forward_stack(x, [lut, lut, lut])
        assert np.array_equal(stacked[0], stacked[1])
        assert np.array_equal(stacked[1], stacked[2])

    def test_predict_stack_matches_predict(self, calibrated):
        model, x = calibrated
        luts = _lut_library()
        predictions = model.predict_stack(x, luts)
        for index, lut in enumerate(luts):
            assert np.array_equal(predictions[index], model.predict(x, lut))

    def test_degenerate_zero_lut(self, calibrated):
        """An all-zero LUT (accuracy-destroying) still matches scalar."""
        model, x = calibrated
        zero = LutMultiplier(np.zeros(65536, dtype=np.int64), 8, 8, name="zero")
        stacked = model.forward_stack(x, [zero])
        assert np.array_equal(stacked[0], model.forward(x, zero))

    def test_random_models_and_seeds(self):
        """Sweep model/data seeds — forward == forward_stack everywhere."""
        luts = _lut_library(seed=9, count=3)
        for seed in range(4):
            model = _model(seed=seed + 10)
            x = np.random.default_rng(seed).standard_normal((3, 1, 8, 8))
            model.calibrate(x)
            stacked = model.forward_stack(x, luts)
            for index, lut in enumerate(luts):
                assert np.array_equal(stacked[index], model.forward(x, lut))

    def test_synthetic_task_model(self):
        """The real behavioural-study model: batched == scalar."""
        task = make_task(seed=3, n_train_per_class=5, n_test_per_class=4)
        luts = _lut_library(seed=5, count=4)
        stacked = task.model.forward_stack(task.test_x, luts)
        for index, lut in enumerate(luts):
            assert np.array_equal(
                stacked[index], task.model.forward(task.test_x, lut)
            )

    def test_accuracy_batch_matches_accuracy(self):
        task = make_task(seed=4, n_train_per_class=5, n_test_per_class=4)
        luts = _lut_library(seed=6, count=4)
        batched = task.model.predict_stack(task.test_x, luts)
        accuracies = task.accuracy_batch(luts)
        for index, lut in enumerate(luts):
            assert accuracies[index] == task.accuracy(lut)
            assert np.array_equal(
                batched[index], task.model.predict(task.test_x, lut)
            )


class TestStackWorkers:
    """The thread-tiled stack must equal the serial reference bit for bit."""

    def test_parallel_matches_serial_on_random_cnns(self):
        """stack_workers=1 == stack_workers=N across model/data seeds."""
        luts = _lut_library(seed=11, count=4)
        for seed in range(3):
            model = _model(seed=seed + 20)
            x = np.random.default_rng(seed + 40).standard_normal((5, 1, 8, 8))
            model.calibrate(x)
            serial = model.forward_stack(x, luts, stack_workers=1)
            for workers in (2, 3, 8):
                parallel = model.forward_stack(x, luts, stack_workers=workers)
                assert np.array_equal(serial, parallel), (seed, workers)

    def test_single_multiplier_stack_parallel(self):
        """A one-entry stack with many workers still row-tiles correctly."""
        model = _model()
        x = np.random.default_rng(7).standard_normal((6, 1, 8, 8))
        model.calibrate(x)
        lut = _lut_library()[3]
        serial = model.forward_stack(x, [lut], stack_workers=1)
        parallel = model.forward_stack(x, [lut], stack_workers=4)
        assert np.array_equal(serial, parallel)
        assert np.array_equal(serial[0], model.forward(x, lut))

    def test_empty_stack_rejected_any_workers(self):
        model = _model()
        model.calibrate(np.zeros((1, 1, 8, 8)))
        for workers in (1, 4):
            with pytest.raises(AccuracyModelError, match="empty"):
                model.forward_stack(
                    np.zeros((1, 1, 8, 8)), [], stack_workers=workers
                )

    def test_non_contiguous_input(self):
        """Sliced/transposed (non-C-contiguous) inputs match contiguous."""
        model = _model()
        rng = np.random.default_rng(13)
        base = rng.standard_normal((8, 8, 1, 12))
        views = {
            "transposed": base.transpose(0, 2, 1, 3)[..., ::2],
            "strided": rng.standard_normal((12, 1, 8, 16))[::2, :, :, ::2],
            "reversed": rng.standard_normal((6, 1, 8, 8))[::-1],
        }
        luts = _lut_library(seed=3, count=3)
        for label, x in views.items():
            assert not x.flags["C_CONTIGUOUS"], label
            contiguous = np.ascontiguousarray(x)
            model.calibrate(contiguous)
            want = model.forward_stack(contiguous, luts, stack_workers=1)
            for workers in (1, 4):
                got = model.forward_stack(x, luts, stack_workers=workers)
                assert np.array_equal(got, want), (label, workers)

    def test_predict_stack_workers_identity(self):
        task = make_task(seed=5, n_train_per_class=5, n_test_per_class=4)
        luts = _lut_library(seed=8, count=4)
        serial = task.model.predict_stack(task.test_x, luts, stack_workers=1)
        parallel = task.model.predict_stack(task.test_x, luts, stack_workers=3)
        assert np.array_equal(serial, parallel)

    def test_accuracy_batch_workers_identity(self):
        task = make_task(seed=6, n_train_per_class=5, n_test_per_class=4)
        luts = _lut_library(seed=9, count=3)
        serial = task.accuracy_batch(luts, stack_workers=1)
        parallel = task.accuracy_batch(luts, stack_workers=4)
        assert np.array_equal(serial, parallel)

    def test_invalid_stack_workers_rejected(self):
        for bad in (0, -2, 1.5, "bananas", False):
            with pytest.raises(AccuracyModelError, match="stack_workers"):
                resolve_stack_workers(bad)

    def test_resolve_defaults_and_env(self, monkeypatch):
        assert resolve_stack_workers(3) == 3
        assert resolve_stack_workers("4") == 4
        monkeypatch.setenv("REPRO_STACK_WORKERS", "2")
        assert resolve_stack_workers() == 2
        monkeypatch.setenv("REPRO_STACK_WORKERS", "auto")
        assert resolve_stack_workers() >= 1

    def test_auto_degrades_inside_pool_workers(self, monkeypatch):
        """Pool workers must not multiply process x thread fan-out."""
        import repro.engine.backends as backends

        monkeypatch.setattr(backends, "_IN_POOL_WORKER", True)
        assert resolve_stack_workers("auto") == 1

    def test_tiles_partition_the_output(self):
        """Tiles cover every (multiplier, row) slot exactly once."""
        for m_count, rows, workers in [
            (1, 10000, 4), (3, 5000, 8), (5, 100, 2), (4, 1, 16), (2, 4096, 3),
        ]:
            tiles = _stack_tiles(m_count, rows, workers)
            slots = np.zeros((m_count, rows), dtype=int)
            for m, start, stop in tiles:
                assert stop > start
                slots[m, start:stop] += 1
            assert (slots == 1).all(), (m_count, rows, workers)


class TestForwardStackValidation:
    def test_empty_stack_rejected(self):
        model = _model()
        model.calibrate(np.zeros((1, 1, 8, 8)))
        with pytest.raises(AccuracyModelError, match="empty"):
            model.forward_stack(np.zeros((1, 1, 8, 8)), [])

    def test_mixed_widths_rejected(self):
        model = _model()
        model.calibrate(np.zeros((1, 1, 8, 8)))
        mixed = [LutMultiplier.exact(8, 8), LutMultiplier.exact(8, 7)]
        with pytest.raises(AccuracyModelError, match="uniform"):
            model.forward_stack(np.zeros((1, 1, 8, 8)), mixed)

    def test_requires_calibration(self):
        model = _model()
        with pytest.raises(AccuracyModelError, match="calibrate"):
            model.forward_stack(np.zeros((1, 1, 8, 8)), [LutMultiplier.exact()])

    def test_input_shape_checked(self):
        model = _model()
        model.calibrate(np.zeros((1, 1, 8, 8)))
        with pytest.raises(AccuracyModelError, match="N, C, H, W"):
            model.forward_stack(np.zeros((8, 8)), [LutMultiplier.exact()])


class TestSignedTable:
    def test_matches_signed_product_everywhere(self):
        """The folded table reproduces signed_product for all byte pairs."""
        lut = _lut_library(seed=2, count=2)[1]
        table = _LutStack._signed_table(lut)
        unsigned = np.arange(256)
        signed = np.where(unsigned < 128, unsigned, unsigned - 256)
        grid_a = np.tile(signed, 256)
        grid_b = np.repeat(signed, 256)
        expected = lut.signed_product(grid_a, grid_b)
        index = unsigned[np.newaxis, :] + (unsigned[:, np.newaxis] << 8)
        assert np.array_equal(table[index.reshape(-1)], expected)

    def test_int32_narrowing_is_lossless(self):
        luts = _lut_library()
        stack = _LutStack(luts)
        assert stack.tables.dtype == np.int32
        wide = _LutStack._signed_table(luts[1])
        assert np.array_equal(stack.tables[1], wide)

    def test_huge_products_stay_int64(self):
        big = LutMultiplier(
            np.full(65536, 2**40, dtype=np.int64), 8, 8, name="big"
        )
        stack = _LutStack([big])
        assert stack.tables.dtype == np.int64


class TestIm2colVectorised:
    def _reference(self, x, kernel, stride, padding):
        """The seed's double-loop patch extraction."""
        n, c, h, w = x.shape
        if padding:
            x = np.pad(
                x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
            )
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        cols = np.empty((n, out_h * out_w, c * kernel * kernel), dtype=x.dtype)
        index = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = x[
                    :,
                    :,
                    i * stride : i * stride + kernel,
                    j * stride : j * stride + kernel,
                ]
                cols[:, index, :] = patch.reshape(n, -1)
                index += 1
        return cols, out_h, out_w

    @pytest.mark.parametrize("kernel,stride,padding", [
        (3, 1, 1), (3, 2, 1), (3, 1, 0), (1, 1, 0), (2, 2, 0), (3, 3, 2),
    ])
    def test_matches_loop_reference(self, kernel, stride, padding):
        rng = np.random.default_rng(kernel * 10 + stride + padding)
        x = rng.integers(-127, 128, size=(3, 2, 9, 9)).astype(np.int64)
        got, out_h, out_w = _im2col(x, kernel, stride, padding)
        want, ref_h, ref_w = self._reference(x, kernel, stride, padding)
        assert (out_h, out_w) == (ref_h, ref_w)
        assert np.array_equal(got, want)

    def test_kernel_too_large_raises(self):
        with pytest.raises(AccuracyModelError, match="does not fit"):
            _im2col(np.zeros((1, 1, 4, 4)), 6, 1, 0)


class TestPreparedLayerMemoisation:
    def test_prepared_layers_cached(self):
        model = _model()
        assert model.prepared_layers() is model.prepared_layers()

    def test_cache_invalidated_on_layer_change(self):
        model = _model()
        before = model.prepared_layers()
        model.layers = list(model.layers[:-1])
        after = model.prepared_layers()
        assert after is not before
        assert len(after) == len(model.layers)

    def test_forward_unchanged_by_repeated_calls(self):
        model = _model()
        x = np.random.default_rng(2).standard_normal((2, 1, 8, 8))
        model.calibrate(x)
        first = model.forward(x)
        second = model.forward(x)
        assert np.array_equal(first, second)

    def test_inplace_weight_mutation_invalidates_cache(self):
        """The seed re-quantised every forward; mutation must still bite."""
        model = _model()
        x = np.random.default_rng(5).standard_normal((2, 1, 8, 8))
        model.calibrate(x)
        before = model.forward(x)
        model.layers[0].weights[:] *= 2.0  # frozen spec, mutable array
        after = model.forward(x)
        fresh = _model()
        fresh.layers[0].weights[:] *= 2.0
        fresh.calibrate(x)
        assert np.array_equal(after, fresh.forward(x))
        assert not np.array_equal(before, after)
