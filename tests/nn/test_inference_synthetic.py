"""Unit tests for quantisation, the LUT-pluggable engine, and the task."""

import numpy as np
import pytest

from repro.approx.lut import LutMultiplier
from repro.errors import AccuracyModelError
from repro.nn.inference import (
    ConvSpec,
    DenseSpec,
    PoolSpec,
    QuantCNN,
    exact_multiply,
)
from repro.nn.quantize import (
    QuantParams,
    calibrate_scale,
    dequantize_tensor,
    quantize_tensor,
)
from repro.nn.synthetic import make_task


class TestQuantize:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        params = calibrate_scale(x)
        restored = dequantize_tensor(quantize_tensor(x, params), params)
        assert np.max(np.abs(restored - x)) <= params.scale / 2 + 1e-12

    def test_calibrate_covers_max(self):
        x = np.array([-3.0, 1.0, 2.0])
        params = calibrate_scale(x)
        codes = quantize_tensor(x, params)
        assert codes.min() == -127

    def test_zero_tensor(self):
        params = calibrate_scale(np.zeros(10))
        assert params.scale > 0

    def test_saturation(self):
        params = QuantParams(scale=0.01)
        codes = quantize_tensor(np.array([100.0, -100.0]), params)
        assert codes.tolist() == [127, -127]

    def test_invalid_scale(self):
        with pytest.raises(AccuracyModelError):
            QuantParams(scale=0.0)


def tiny_model(seed=0) -> QuantCNN:
    rng = np.random.default_rng(seed)
    model = QuantCNN(
        layers=[
            ConvSpec(weights=rng.standard_normal((4, 1, 3, 3)) * 0.3),
            PoolSpec(2),
            DenseSpec(weights=rng.standard_normal((3, 4 * 4 * 4)) * 0.3),
        ]
    )
    return model


class TestQuantCNN:
    def test_forward_shape(self):
        model = tiny_model()
        x = np.random.default_rng(1).standard_normal((5, 1, 8, 8))
        model.calibrate(x)
        logits = model.forward(x)
        assert logits.shape == (5, 3)

    def test_forward_requires_calibration(self):
        model = tiny_model()
        x = np.zeros((1, 1, 8, 8))
        with pytest.raises(AccuracyModelError, match="calibrate"):
            model.forward(x)

    def test_input_shape_checked(self):
        model = tiny_model()
        model.calibrate(np.zeros((1, 1, 8, 8)))
        with pytest.raises(AccuracyModelError, match="N, C, H, W"):
            model.forward(np.zeros((8, 8)))

    def test_exact_lut_matches_exact_multiply(self):
        """LUT of the exact multiplier must reproduce exact inference."""
        model = tiny_model()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 1, 8, 8))
        model.calibrate(x)
        exact_logits = model.forward(x, exact_multiply)
        lut_logits = model.forward(x, LutMultiplier.exact(8, 8))
        assert np.allclose(exact_logits, lut_logits)

    def test_deterministic(self):
        model = tiny_model()
        x = np.random.default_rng(3).standard_normal((2, 1, 8, 8))
        model.calibrate(x)
        assert np.array_equal(model.forward(x), model.forward(x))

    def test_channel_mismatch_rejected(self):
        model = tiny_model()
        x = np.zeros((1, 2, 8, 8))
        model.calibrate(x)
        with pytest.raises(AccuracyModelError, match="input channels"):
            model.forward(x)

    def test_pool_requires_tiling(self):
        model = QuantCNN(layers=[PoolSpec(2)])
        x = np.zeros((1, 1, 7, 7))
        model.calibrate(x)
        with pytest.raises(AccuracyModelError, match="does not tile"):
            model.forward(x)


class TestSyntheticTask:
    @pytest.fixture(scope="class")
    def task(self):
        return make_task(seed=0, n_train_per_class=15, n_test_per_class=10)

    def test_deterministic(self):
        a = make_task(seed=5, n_train_per_class=5, n_test_per_class=5)
        b = make_task(seed=5, n_train_per_class=5, n_test_per_class=5)
        assert np.array_equal(a.test_x, b.test_x)
        assert a.accuracy() == b.accuracy()

    def test_different_seeds_differ(self):
        a = make_task(seed=1, n_train_per_class=5, n_test_per_class=5)
        b = make_task(seed=2, n_train_per_class=5, n_test_per_class=5)
        assert not np.array_equal(a.test_x, b.test_x)

    def test_exact_accuracy_in_target_band(self, task):
        """Exact accuracy must leave measurable head-room for drops."""
        acc = task.accuracy()
        assert 0.6 < acc < 1.0

    def test_much_better_than_chance(self, task):
        assert task.accuracy() > 3 * (1.0 / 10)

    def test_severe_approximation_degrades(self, task):
        # a multiplier that zeroes every product destroys accuracy
        broken = LutMultiplier(
            np.zeros(65536, dtype=np.int64), 8, 8, name="zero"
        )
        assert task.accuracy(broken) < task.accuracy()

    def test_invalid_parameters(self):
        with pytest.raises(AccuracyModelError):
            make_task(n_train_per_class=0)
        with pytest.raises(AccuracyModelError):
            make_task(template_similarity=1.5)
