"""Unit tests for the ACT equations (Eq. 1 / Eq. 2)."""

import pytest

from repro.carbon.accelerator_carbon import (
    DieAreaBreakdown,
    accelerator_embodied_carbon,
)
from repro.carbon.act import (
    GRID_PROFILES,
    cfpa_g_per_mm2,
    embodied_carbon,
)
from repro.carbon.nodes import technology_node
from repro.carbon.operational import (
    OperationalModel,
    break_even_inferences,
    operational_carbon,
)
from repro.errors import CarbonModelError


class TestCfpa:
    def test_eq2_by_hand(self):
        """CFPA must match a hand-computed Eq. 2 instance."""
        node = technology_node(28)
        grid = 500.0  # gCO2/kWh
        y = 0.8
        # (CI*EPA + Cgas + Cmat)/Y, in kg/cm2, then to g/mm2
        kg_cm2 = (500.0 * 0.90 / 1000.0 + 0.14 + 0.50) / 0.8
        expected_g_mm2 = kg_cm2 * 1000.0 / 100.0
        assert cfpa_g_per_mm2(node, grid, y) == pytest.approx(expected_g_mm2)

    def test_cfpa_in_published_range(self):
        """ACT reports roughly 1-3 kgCO2/cm^2 for logic nodes."""
        for node_nm in (7, 14, 28):
            node = technology_node(node_nm)
            value = cfpa_g_per_mm2(node, GRID_PROFILES["taiwan"], 0.95)
            kg_per_cm2 = value / 10.0
            assert 0.5 < kg_per_cm2 < 3.5, (node_nm, kg_per_cm2)

    def test_advanced_node_higher_cfpa(self):
        grid = GRID_PROFILES["taiwan"]
        c7 = cfpa_g_per_mm2(technology_node(7), grid, 0.9)
        c28 = cfpa_g_per_mm2(technology_node(28), grid, 0.9)
        assert c7 > c28

    def test_dirty_grid_higher_cfpa(self):
        node = technology_node(14)
        assert cfpa_g_per_mm2(node, 820.0, 0.9) > cfpa_g_per_mm2(node, 50.0, 0.9)

    def test_poor_yield_higher_cfpa(self):
        node = technology_node(14)
        assert cfpa_g_per_mm2(node, 500.0, 0.5) == pytest.approx(
            2 * cfpa_g_per_mm2(node, 500.0, 1.0)
        )

    def test_invalid_inputs(self):
        node = technology_node(7)
        with pytest.raises(CarbonModelError):
            cfpa_g_per_mm2(node, -5.0, 0.9)
        with pytest.raises(CarbonModelError):
            cfpa_g_per_mm2(node, 500.0, 0.0)
        with pytest.raises(CarbonModelError):
            cfpa_g_per_mm2(node, 500.0, 1.5)


class TestEmbodiedCarbon:
    def test_eq1_structure(self):
        result = embodied_carbon(10.0, 7)
        assert result.total_g == pytest.approx(
            result.die_carbon_g + result.wasted_carbon_g
        )
        assert result.die_carbon_g == pytest.approx(
            result.cfpa_g_per_mm2 * result.die_area_mm2
        )
        assert result.wasted_carbon_g == pytest.approx(
            result.cfpa_si_g_per_mm2 * result.wasted_area_mm2
        )

    def test_monotone_in_area(self):
        small = embodied_carbon(5.0, 7).total_g
        large = embodied_carbon(50.0, 7).total_g
        assert large > small

    def test_monotone_in_node(self):
        for area in (5.0, 50.0):
            c7 = embodied_carbon(area, 7).total_g
            c14 = embodied_carbon(area, 14).total_g
            c28 = embodied_carbon(area, 28).total_g
            assert c7 > c14 > c28

    def test_named_and_numeric_grid(self):
        by_name = embodied_carbon(10.0, 14, grid="coal").total_g
        by_value = embodied_carbon(10.0, 14, grid=820.0).total_g
        assert by_name == pytest.approx(by_value)

    def test_unknown_grid_rejected(self):
        with pytest.raises(CarbonModelError, match="unknown grid profile"):
            embodied_carbon(10.0, 14, grid="mars")

    def test_nonpositive_area_rejected(self):
        with pytest.raises(CarbonModelError):
            embodied_carbon(0.0, 7)

    def test_wasted_share_larger_for_smaller_die(self):
        """Edge waste per die is relatively larger for tiny dies."""
        small = embodied_carbon(0.5, 7)
        large = embodied_carbon(100.0, 7)
        small_share = small.wasted_carbon_g / small.total_g
        large_share = large.wasted_carbon_g / large.total_g
        assert small_share > large_share

    def test_yield_unyielded_for_waste(self):
        """CFPA_Si never exceeds yielded CFPA."""
        result = embodied_carbon(200.0, 7)
        assert result.cfpa_si_g_per_mm2 <= result.cfpa_g_per_mm2


class TestAcceleratorCarbon:
    def test_component_split_sums_to_die_term(self):
        areas = DieAreaBreakdown(pe_array_mm2=1.0, sram_mm2=2.0, other_mm2=0.5)
        result = accelerator_embodied_carbon(areas, 7)
        assert result.pe_array_g + result.sram_g + result.other_g == pytest.approx(
            result.breakdown.die_carbon_g
        )

    def test_split_proportional_to_area(self):
        areas = DieAreaBreakdown(pe_array_mm2=1.0, sram_mm2=2.0, other_mm2=1.0)
        result = accelerator_embodied_carbon(areas, 14)
        assert result.sram_g == pytest.approx(2 * result.pe_array_g)

    def test_negative_area_rejected(self):
        with pytest.raises(CarbonModelError):
            DieAreaBreakdown(pe_array_mm2=-1.0, sram_mm2=1.0, other_mm2=0.0)

    def test_zero_total_rejected(self):
        with pytest.raises(CarbonModelError):
            DieAreaBreakdown(pe_array_mm2=0.0, sram_mm2=0.0, other_mm2=0.0)


class TestOperational:
    def make_model(self, **overrides):
        defaults = dict(
            node_nm=7,
            macs_per_inference=15.5e9,
            sram_bytes_per_inference=50e6,
            dram_bytes_per_inference=30e6,
        )
        defaults.update(overrides)
        return OperationalModel(**defaults)

    def test_energy_positive(self):
        assert self.make_model().energy_per_inference_j() > 0

    def test_advanced_node_lower_energy(self):
        e7 = self.make_model(node_nm=7).energy_per_inference_j()
        e28 = self.make_model(node_nm=28).energy_per_inference_j()
        assert e7 < e28

    def test_operational_carbon_scales_linearly(self):
        model = self.make_model()
        one = operational_carbon(model, 1e6)
        two = operational_carbon(model, 2e6)
        assert two == pytest.approx(2 * one)

    def test_break_even_sensible(self):
        """Embodied carbon should equal years of inference, not seconds."""
        model = self.make_model()
        inferences = break_even_inferences(model, embodied_g=10_000.0)
        assert inferences > 1e6

    def test_static_energy_included(self):
        busy = self.make_model(static_power_w=1.0, latency_s=0.01)
        idle = self.make_model()
        assert (
            busy.energy_per_inference_j()
            == pytest.approx(idle.energy_per_inference_j() + 0.01)
        )

    def test_invalid_inputs(self):
        with pytest.raises(CarbonModelError):
            self.make_model(macs_per_inference=-1)
        with pytest.raises(CarbonModelError):
            operational_carbon(self.make_model(), -5)
        with pytest.raises(CarbonModelError):
            operational_carbon(self.make_model(), 1.0, grid_gco2_per_kwh=0.0)
