"""Unit tests for the node database and wafer models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.nodes import SUPPORTED_NODES, TechnologyNode, technology_node
from repro.carbon.wafer import (
    DEFAULT_WAFER,
    WaferSpec,
    dies_per_wafer,
    murphy_yield,
    poisson_yield,
    wasted_area_per_die_mm2,
)
from repro.errors import CarbonModelError


class TestNodeDatabase:
    def test_supported_nodes(self):
        assert SUPPORTED_NODES == (7, 14, 28)

    def test_unknown_node_rejected(self):
        with pytest.raises(CarbonModelError, match="unsupported technology node"):
            technology_node(5)

    def test_epa_rises_towards_advanced_nodes(self):
        assert (
            technology_node(7).epa_kwh_per_cm2
            > technology_node(14).epa_kwh_per_cm2
            > technology_node(28).epa_kwh_per_cm2
        )

    def test_defect_density_rises_towards_advanced_nodes(self):
        assert (
            technology_node(7).defect_density_per_cm2
            > technology_node(14).defect_density_per_cm2
            > technology_node(28).defect_density_per_cm2
        )

    def test_sram_bitcell_shrinks_towards_advanced_nodes(self):
        assert (
            technology_node(7).sram_bitcell_um2
            < technology_node(14).sram_bitcell_um2
            < technology_node(28).sram_bitcell_um2
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CarbonModelError, match="must be positive"):
            TechnologyNode(7, -1, 0.2, 0.5, 0.1, 0.03, 0.5, 1.0)
        with pytest.raises(CarbonModelError, match="efficiency"):
            TechnologyNode(7, 1.0, 0.2, 0.5, 0.1, 0.03, 1.5, 1.0)
        with pytest.raises(CarbonModelError, match="defect"):
            TechnologyNode(7, 1.0, 0.2, 0.5, -0.1, 0.03, 0.5, 1.0)


class TestWaferSpec:
    def test_default_is_300mm(self):
        assert DEFAULT_WAFER.diameter_mm == 300.0

    def test_usable_area_below_full_disc(self):
        full = math.pi * 150.0**2
        assert DEFAULT_WAFER.usable_area_mm2 < full

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CarbonModelError):
            WaferSpec(diameter_mm=-1)
        with pytest.raises(CarbonModelError):
            WaferSpec(edge_exclusion_mm=-1)
        with pytest.raises(CarbonModelError, match="whole wafer"):
            WaferSpec(diameter_mm=10, edge_exclusion_mm=5)


class TestDiesPerWafer:
    def test_small_die_many_dies(self):
        assert dies_per_wafer(1.0) > 50000

    def test_monotone_in_die_area(self):
        assert dies_per_wafer(10.0) > dies_per_wafer(100.0) > dies_per_wafer(500.0)

    def test_rejects_nonpositive_area(self):
        with pytest.raises(CarbonModelError):
            dies_per_wafer(0.0)

    def test_rejects_wafer_sized_die(self):
        with pytest.raises(CarbonModelError, match="does not fit"):
            dies_per_wafer(70000.0)

    def test_wasted_area_positive_and_bounded(self):
        for area in (1.0, 25.0, 400.0):
            waste = wasted_area_per_die_mm2(area)
            assert waste > 0.0
            # waste per die should stay a modest multiple of die area
            assert waste < area * 5 + 50


class TestYieldModels:
    def test_zero_defects_perfect_yield(self):
        assert poisson_yield(100.0, 0.0) == 1.0
        assert murphy_yield(100.0, 0.0) == 1.0

    def test_yields_decrease_with_area(self):
        assert poisson_yield(50.0, 0.2) > poisson_yield(500.0, 0.2)
        assert murphy_yield(50.0, 0.2) > murphy_yield(500.0, 0.2)

    def test_murphy_less_pessimistic_than_poisson(self):
        for area in (100.0, 400.0, 900.0):
            assert murphy_yield(area, 0.3) >= poisson_yield(area, 0.3)

    def test_poisson_formula(self):
        # 100 mm^2 = 1 cm^2, D = 0.5 -> exp(-0.5)
        assert poisson_yield(100.0, 0.5) == pytest.approx(math.exp(-0.5))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CarbonModelError):
            poisson_yield(-1.0, 0.1)
        with pytest.raises(CarbonModelError):
            murphy_yield(10.0, -0.1)


@settings(max_examples=40, deadline=None)
@given(area=st.floats(min_value=0.5, max_value=2000.0))
def test_property_yields_in_unit_interval(area):
    for defect_density in (0.05, 0.2, 1.0):
        for model in (poisson_yield, murphy_yield):
            y = model(area, defect_density)
            assert 0.0 < y <= 1.0


@settings(max_examples=30, deadline=None)
@given(area=st.floats(min_value=0.5, max_value=1000.0))
def test_property_wafer_conservation(area):
    """dies * area + dies * waste ~ full wafer area (within kerf slack)."""
    count = dies_per_wafer(area)
    waste = wasted_area_per_die_mm2(area)
    total = count * (area + waste)
    full = math.pi * 150.0**2
    assert total == pytest.approx(full, rel=1e-6)
