"""Unit tests for the chiplet (ECO-CHIP style) carbon extension."""

import pytest

from repro.carbon.act import embodied_carbon
from repro.carbon.chiplet import (
    DEFAULT_PACKAGING,
    PackagingModel,
    best_chiplet_count,
    chiplet_embodied_carbon,
)
from repro.errors import CarbonModelError


class TestPackagingModel:
    def test_default_is_valid(self):
        assert DEFAULT_PACKAGING.assembly_yield > 0.9

    def test_validation(self):
        with pytest.raises(CarbonModelError):
            PackagingModel(interposer_g_per_mm2=-1)
        with pytest.raises(CarbonModelError):
            PackagingModel(interposer_area_factor=0.5)
        with pytest.raises(CarbonModelError):
            PackagingModel(d2d_phy_overhead=1.5)
        with pytest.raises(CarbonModelError):
            PackagingModel(assembly_yield=0.0)


class TestChipletCarbon:
    def test_monolithic_matches_eq1(self):
        mono = chiplet_embodied_carbon(50.0, 1, 7)
        direct = embodied_carbon(50.0, 7)
        assert mono.total_g == pytest.approx(direct.total_g)
        assert mono.packaging_g == 0.0

    def test_splitting_adds_packaging(self):
        split = chiplet_embodied_carbon(50.0, 4, 7)
        assert split.packaging_g > 0.0
        assert split.n_chiplets == 4

    def test_small_die_prefers_monolithic(self):
        """Tiny accelerators already yield ~100%; packaging only hurts."""
        count, _carbon = best_chiplet_count(5.0, 7)
        assert count == 1

    def test_huge_die_prefers_chiplets(self):
        """A reticle-scale die at 7 nm yields terribly; splitting wins."""
        count, carbon = best_chiplet_count(600.0, 7)
        assert count > 1
        mono = chiplet_embodied_carbon(600.0, 1, 7).total_g
        assert carbon < mono

    def test_yield_gain_mechanism(self):
        """Per-chiplet yield must beat the monolithic yield."""
        mono = chiplet_embodied_carbon(400.0, 1, 7)
        split = chiplet_embodied_carbon(400.0, 4, 7)
        assert (
            split.per_chiplet.yield_fraction
            > mono.per_chiplet.yield_fraction
        )

    def test_phy_overhead_grows_silicon(self):
        """Total silicon area grows with the d2d overhead."""
        split = chiplet_embodied_carbon(100.0, 4, 7)
        assert (
            split.per_chiplet.die_area_mm2 * 4
            > 100.0
        )

    def test_invalid_inputs(self):
        with pytest.raises(CarbonModelError):
            chiplet_embodied_carbon(0.0, 2, 7)
        with pytest.raises(CarbonModelError):
            chiplet_embodied_carbon(10.0, 0, 7)
        with pytest.raises(CarbonModelError):
            best_chiplet_count(10.0, 7, max_chiplets=0)

    def test_cleaner_packaging_shifts_crossover(self):
        """Cheaper packaging makes chipletisation win earlier."""
        cheap = PackagingModel(
            interposer_g_per_mm2=0.05,
            bonding_g_per_chiplet=0.01,
        )
        area = 200.0
        default_count, _ = best_chiplet_count(area, 7)
        cheap_count, _ = best_chiplet_count(area, 7, packaging=cheap)
        assert cheap_count >= default_count
