"""Gate-script behavior around broken and missing report files."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
CHECK_BENCH = REPO / "benchmarks" / "check_bench.py"


def run_gate(*reports, cwd):
    return subprocess.run(
        [sys.executable, str(CHECK_BENCH), *map(str, reports)],
        capture_output=True,
        text=True,
        cwd=cwd,
        timeout=60,
    )


def write_report(path, **overrides):
    payload = {
        "benchmark": "fixture",
        "all_identical": True,
        "speedup": 3.0,
    }
    payload.update(overrides)
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestMissingReport:
    def test_missing_file_fails_with_clear_message(self, tmp_path):
        result = run_gate(tmp_path / "BENCH_absent.json", cwd=tmp_path)
        assert result.returncode == 1
        assert "missing report file" in result.stderr
        assert "did not run" in result.stderr

    def test_missing_file_fails_even_among_good_reports(self, tmp_path):
        good = write_report(tmp_path / "BENCH_good.json")
        result = run_gate(
            good, tmp_path / "BENCH_absent.json", cwd=tmp_path
        )
        assert result.returncode == 1
        assert "ok: fixture" in result.stdout
        assert "missing report file" in result.stderr

    def test_corrupt_file_reports_unreadable_not_missing(self, tmp_path):
        corrupt = tmp_path / "BENCH_corrupt.json"
        corrupt.write_text("{not json", encoding="utf-8")
        result = run_gate(corrupt, cwd=tmp_path)
        assert result.returncode == 1
        assert "unreadable report" in result.stderr
        assert "missing report file" not in result.stderr


class TestGatesStillWork:
    def test_good_report_passes(self, tmp_path):
        good = write_report(tmp_path / "BENCH_good.json")
        result = run_gate(good, cwd=tmp_path)
        assert result.returncode == 0
        assert "ok: fixture" in result.stdout

    def test_identity_failure_fails(self, tmp_path):
        bad = write_report(
            tmp_path / "BENCH_bad.json", all_identical=False
        )
        result = run_gate(bad, cwd=tmp_path)
        assert result.returncode == 1
        assert "diverged" in result.stderr


class TestRecoveryOverheadGate:
    def test_within_bar_passes_and_is_reported(self, tmp_path):
        report = write_report(
            tmp_path / "BENCH_r.json", recovery_overhead=0.03
        )
        result = run_gate(
            report, "--max-recovery-overhead", "0.10", cwd=tmp_path
        )
        assert result.returncode == 0
        assert "recovery_overhead=0.03" in result.stdout

    def test_above_bar_fails(self, tmp_path):
        report = write_report(
            tmp_path / "BENCH_r.json", recovery_overhead=0.42
        )
        result = run_gate(
            report, "--max-recovery-overhead", "0.10", cwd=tmp_path
        )
        assert result.returncode == 1
        assert "recovery_overhead 0.42 above the 0.1 gate" in result.stderr

    def test_report_without_field_is_skipped(self, tmp_path):
        report = write_report(tmp_path / "BENCH_r.json")
        result = run_gate(
            report, "--max-recovery-overhead", "0.10", cwd=tmp_path
        )
        assert result.returncode == 0
        assert "recovery_overhead" not in result.stdout
