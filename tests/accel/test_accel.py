"""Unit tests for the accelerator architecture model."""

import pytest

from repro.accel.arch import AcceleratorConfig
from repro.accel.memory import sram_area_mm2, sram_bits_for_bytes
from repro.accel.nvdla import (
    NVDLA_MAC_COUNTS,
    nvdla_buffer_bytes,
    nvdla_config,
    nvdla_dimensions,
    nvdla_family,
)
from repro.accel.pe import PEAreaModel, pe_area_ge, pe_area_um2
from repro.approx.library import build_library
from repro.errors import ArchitectureError

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def exact(library):
    return library.exact


class TestPEModel:
    def test_overhead_dominated_by_registers_and_adder(self):
        model = PEAreaModel()
        assert model.overhead_ge > 100

    def test_pe_area_includes_multiplier(self, exact):
        total = pe_area_ge(exact.area_ge)
        assert total == pytest.approx(exact.area_ge + PEAreaModel().overhead_ge)

    def test_smaller_multiplier_smaller_pe(self, library):
        smallest = library.multipliers[-1]
        assert pe_area_ge(smallest.area_ge) < pe_area_ge(library.exact.area_ge)

    def test_pe_area_um2_scales_with_node(self, exact):
        assert pe_area_um2(exact.area_ge, 7) < pe_area_um2(exact.area_ge, 28)

    def test_invalid_model_rejected(self):
        with pytest.raises(ArchitectureError, match="at least 16 bits"):
            PEAreaModel(accumulator_bits=8)
        with pytest.raises(ArchitectureError):
            PEAreaModel(control_ge=-1)

    def test_invalid_multiplier_area_rejected(self):
        with pytest.raises(ArchitectureError):
            pe_area_ge(0.0)


class TestSramModel:
    def test_bits_include_ecc(self):
        assert sram_bits_for_bytes(1024) == 1024 * 9.0

    def test_area_scales_linearly(self):
        one = sram_area_mm2(128 * 1024, 7)
        two = sram_area_mm2(256 * 1024, 7)
        assert two == pytest.approx(2 * one)

    def test_zero_capacity_zero_area(self):
        assert sram_area_mm2(0, 7) == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ArchitectureError):
            sram_bits_for_bytes(-1)

    def test_sram_denser_at_advanced_nodes(self):
        assert sram_area_mm2(1024, 7) < sram_area_mm2(1024, 28)


class TestAcceleratorConfig:
    def make(self, exact, **overrides):
        defaults = dict(
            pe_rows=16,
            pe_cols=16,
            local_buffer_bytes=64,
            global_buffer_bytes=256 * 1024,
            multiplier=exact,
            node_nm=7,
        )
        defaults.update(overrides)
        return AcceleratorConfig(**defaults)

    def test_n_pes(self, exact):
        assert self.make(exact).n_pes == 256

    def test_validation_bounds(self, exact):
        with pytest.raises(ArchitectureError, match="pe_rows"):
            self.make(exact, pe_rows=0)
        with pytest.raises(ArchitectureError, match="pe_cols"):
            self.make(exact, pe_cols=1000)
        with pytest.raises(ArchitectureError, match="local_buffer_bytes"):
            self.make(exact, local_buffer_bytes=100_000)
        with pytest.raises(ArchitectureError, match="global_buffer_bytes"):
            self.make(exact, global_buffer_bytes=100)
        with pytest.raises(ArchitectureError, match="clock"):
            self.make(exact, clock_ghz_override=-1.0)

    def test_unsupported_node_rejected(self, exact):
        with pytest.raises(Exception):
            self.make(exact, node_nm=5)

    def test_clock_default_from_node(self, exact):
        assert self.make(exact).clock_hz == pytest.approx(1.2e9)
        assert self.make(exact, node_nm=28).clock_hz == pytest.approx(0.8e9)

    def test_clock_override(self, exact):
        assert self.make(exact, clock_ghz_override=0.5).clock_hz == 0.5e9

    def test_geometry_key_ignores_multiplier(self, library, exact):
        small = library.multipliers[-1]
        a = self.make(exact)
        b = self.make(small)
        assert a.geometry_key() == b.geometry_key()

    def test_die_area_components_positive(self, exact):
        area = self.make(exact).die_area()
        assert area.pe_array_mm2 > 0
        assert area.sram_mm2 > 0
        assert area.other_mm2 > 0

    def test_smaller_multiplier_smaller_die(self, library, exact):
        small = library.multipliers[-1]
        base = self.make(exact)
        approx = base.with_multiplier(small)
        assert approx.die_area().total_mm2 < base.die_area().total_mm2

    def test_embodied_carbon_positive(self, exact):
        carbon = self.make(exact).embodied_carbon()
        assert carbon.total_g > 0
        assert carbon.pe_array_g > 0

    def test_describe_contains_key_fields(self, exact):
        text = self.make(exact).describe()
        assert "16x16" in text
        assert "exact" in text


class TestNvdlaFamily:
    def test_dimensions_near_square_powers_of_two(self):
        assert nvdla_dimensions(64) == (8, 8)
        assert nvdla_dimensions(128) == (8, 16)
        assert nvdla_dimensions(2048) == (32, 64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ArchitectureError, match="power of two"):
            nvdla_dimensions(100)

    def test_buffer_scaling_anchors(self):
        # linear CBUF scaling anchored at nv_full (2048 MACs, 512 KiB)
        _, global_full = nvdla_buffer_bytes(2048)
        assert global_full == 512 * 1024
        # small end floors at 16 KiB; per-PE staging is fixed
        local, global_small = nvdla_buffer_bytes(64)
        assert global_small == 16 * 1024
        assert local == 32
        # midpoint follows the linear rule
        _, global_mid = nvdla_buffer_bytes(1024)
        assert global_mid == 256 * 1024

    def test_buffers_monotone(self):
        sizes = [nvdla_buffer_bytes(m)[1] for m in NVDLA_MAC_COUNTS]
        assert sizes == sorted(sizes)

    def test_family_covers_all_mac_counts(self, exact):
        family = nvdla_family(exact, 7)
        assert [c.n_pes for c in family] == list(NVDLA_MAC_COUNTS)

    def test_family_carbon_monotone(self, exact):
        family = nvdla_family(exact, 7)
        carbons = [c.embodied_carbon().total_g for c in family]
        assert carbons == sorted(carbons)

    def test_carbon_ranges_match_paper_order_of_magnitude(self, exact):
        """Fig. 2 shows roughly 3..40 gCO2 across the family and nodes."""
        for node in (7, 14, 28):
            for cfg in nvdla_family(exact, node):
                total = cfg.embodied_carbon().total_g
                assert 0.5 < total < 80.0, (node, cfg.n_pes, total)

    def test_config_matches_dimensions(self, exact):
        cfg = nvdla_config(512, exact, 14)
        assert (cfg.pe_rows, cfg.pe_cols) == (16, 32)
        assert cfg.node_nm == 14
