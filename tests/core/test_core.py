"""Unit and integration tests for the core methodology."""

import pytest

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.core.baselines import (
    approximate_only_sweep,
    exact_sweep,
    smallest_exact_meeting_fps,
)
from repro.core.cdp import carbon_delay_product
from repro.core.designer import CarbonAwareDesigner
from repro.errors import ConstraintError, OptimizationError
from repro.ga.engine import GaConfig

FAST = dict(population=16, generations=10, hybrid=True)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def predictor():
    return AccuracyPredictor()


class TestCdp:
    def test_product(self):
        assert carbon_delay_product(10.0, 0.1) == pytest.approx(1.0)

    def test_negative_carbon_rejected(self):
        with pytest.raises(ConstraintError):
            carbon_delay_product(-1.0, 0.1)

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ConstraintError):
            carbon_delay_product(1.0, 0.0)


class TestExactSweep:
    def test_sweep_covers_family(self, library, predictor):
        sweep = exact_sweep("vgg16", library, 7, predictor)
        assert [p.config.n_pes for p in sweep] == [64, 128, 256, 512, 1024, 2048]

    def test_monotone_carbon_and_fps(self, library, predictor):
        sweep = exact_sweep("vgg16", library, 7, predictor)
        carbons = [p.carbon_g for p in sweep]
        fps = [p.fps for p in sweep]
        assert carbons == sorted(carbons)
        assert fps == sorted(fps)

    def test_zero_drop_for_exact(self, library, predictor):
        for point in exact_sweep("resnet50", library, 14, predictor):
            assert point.accuracy_drop_percent == 0.0
            assert point.label == "exact"

    def test_design_point_row(self, library, predictor):
        point = exact_sweep("vgg16", library, 7, predictor)[0]
        row = point.as_row()
        assert row["label"] == "exact"
        assert row["pes"] == 64
        assert row["node_nm"] == 7

    def test_meets_check(self, library, predictor):
        sweep = exact_sweep("vgg16", library, 7, predictor)
        biggest = sweep[-1]
        assert biggest.meets(min_fps=30.0, max_drop_percent=0.0)
        smallest = sweep[0]
        assert not smallest.meets(min_fps=30.0, max_drop_percent=0.0)


class TestApproximateOnlySweep:
    def test_architecture_unchanged(self, library, predictor):
        exact = exact_sweep("vgg16", library, 7, predictor)
        appx = approximate_only_sweep("vgg16", library, 7, predictor, 2.0)
        for e, a in zip(exact, appx):
            assert e.config.geometry_key() == a.config.geometry_key()
            assert a.config.multiplier.name != "exact"

    def test_carbon_strictly_lower(self, library, predictor):
        exact = exact_sweep("vgg16", library, 7, predictor)
        appx = approximate_only_sweep("vgg16", library, 7, predictor, 2.0)
        for e, a in zip(exact, appx):
            assert a.carbon_g < e.carbon_g

    def test_fps_unchanged(self, library, predictor):
        """Approximation alone does not change timing in this model."""
        exact = exact_sweep("vgg16", library, 7, predictor)
        appx = approximate_only_sweep("vgg16", library, 7, predictor, 1.0)
        for e, a in zip(exact, appx):
            assert a.fps == pytest.approx(e.fps)

    def test_accuracy_constraint_respected(self, library, predictor):
        for threshold in (0.5, 1.0, 2.0):
            appx = approximate_only_sweep(
                "resnet50", library, 7, predictor, threshold
            )
            for point in appx:
                assert point.accuracy_drop_percent <= threshold

    def test_tighter_threshold_less_saving(self, library, predictor):
        """Savings grow with the allowed drop; peak savings (largest
        config, where the PE array dominates the die) exceed 1%."""
        exact = exact_sweep("vgg16", library, 7, predictor)[-1]
        savings = {}
        for threshold in (0.5, 1.0, 2.0):
            point = approximate_only_sweep(
                "vgg16", library, 7, predictor, threshold
            )[-1]
            savings[threshold] = 1.0 - point.carbon_g / exact.carbon_g
        assert savings[0.5] <= savings[1.0] <= savings[2.0]
        assert savings[2.0] > 0.01


class TestSmallestExact:
    def test_meets_threshold_minimally(self, library, predictor):
        point = smallest_exact_meeting_fps("vgg16", library, 7, predictor, 30.0)
        assert point.fps >= 30.0
        sweep = exact_sweep("vgg16", library, 7, predictor)
        smaller = [p for p in sweep if p.config.n_pes < point.config.n_pes]
        for p in smaller:
            assert p.fps < 30.0

    def test_impossible_threshold_raises(self, library, predictor):
        with pytest.raises(ConstraintError, match="no NVDLA family member"):
            smallest_exact_meeting_fps("vgg16", library, 28, predictor, 10_000.0)


class TestDesigner:
    def test_ga_cdp_beats_exact_baseline(self, library, predictor):
        baseline = smallest_exact_meeting_fps("vgg16", library, 7, predictor, 30.0)
        designer = CarbonAwareDesigner(
            network="vgg16",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=2.0,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=20, generations=20, seed=0),
        )
        result = designer.run()
        assert result.feasible
        assert result.best.fps >= 30.0
        assert result.best.accuracy_drop_percent <= 2.0
        assert result.best.cdp < baseline.cdp
        assert result.best.carbon_g < baseline.carbon_g

    def test_designer_deterministic(self, library, predictor):
        kwargs = dict(
            network="resnet50",
            node_nm=14,
            min_fps=30.0,
            max_drop_percent=1.0,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=16, generations=15, seed=4),
        )
        a = CarbonAwareDesigner(**kwargs).run()
        b = CarbonAwareDesigner(**kwargs).run()
        assert a.best.config.geometry_key() == b.best.config.geometry_key()
        assert a.best.cdp == b.best.cdp

    def test_unsatisfiable_constraints_raise(self, library, predictor):
        designer = CarbonAwareDesigner(
            network="vgg16",
            node_nm=28,
            min_fps=100_000.0,
            max_drop_percent=0.5,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=8, generations=3, seed=0),
        )
        with pytest.raises(OptimizationError, match="no design meeting"):
            designer.run()

    def test_design_point_label(self, library, predictor):
        designer = CarbonAwareDesigner(
            network="resnet50",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=2.0,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=12, generations=8, seed=1),
        )
        result = designer.run()
        assert result.best.label == "ga_cdp"
        assert result.outcome.evaluations > 0
