"""Invariant tests for the seeded GA-CDP designer.

These pin down the guarantees the experiment harnesses rely on:
baseline seeding means GA-CDP can never lose to the baselines it is
compared against, for any seed.
"""

import pytest

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.core.baselines import (
    approximate_only_sweep,
    smallest_exact_meeting_fps,
)
from repro.core.designer import CarbonAwareDesigner
from repro.ga.chromosome import space_for_library
from repro.ga.engine import GaConfig

FAST = dict(population=12, generations=5, hybrid=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def predictor():
    return AccuracyPredictor()


class TestBaselineSeeding:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_ga_never_loses_to_exact_baseline(self, library, predictor, seed):
        """Even a tiny GA beats or matches the exact baseline, because
        the baseline geometry is in the initial population."""
        baseline = smallest_exact_meeting_fps(
            "vgg16", library, 7, predictor, 30.0
        )
        result = CarbonAwareDesigner(
            network="vgg16",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=2.0,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=16, generations=3, seed=seed),
        ).run()
        assert result.best.carbon_g <= baseline.carbon_g * (1 + 1e-9)

    def test_ga_never_loses_to_approx_only(self, library, predictor):
        """The approximate-only design is also a seed, so it bounds the
        GA outcome too."""
        approx_points = approximate_only_sweep(
            "resnet50", library, 7, predictor, 2.0
        )
        feasible = [p for p in approx_points if p.fps >= 30.0]
        best_approx = min(feasible, key=lambda p: p.carbon_g)
        result = CarbonAwareDesigner(
            network="resnet50",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=2.0,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=16, generations=3, seed=5),
        ).run()
        assert result.best.carbon_g <= best_approx.carbon_g * (1 + 1e-9)

    def test_seeds_are_valid_genomes(self, library, predictor):
        designer = CarbonAwareDesigner(
            network="vgg16",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=1.0,
            library=library,
            predictor=predictor,
        )
        space = space_for_library(library)
        seeds = designer._baseline_seeds(library, space)
        assert len(seeds) >= 6  # at least the six-family sweep
        for genome in seeds:
            space.validate(genome)
            config = space.decode(genome, library, 7)
            assert config.n_pes >= 4

    def test_seed_multipliers_include_exact(self, library, predictor):
        designer = CarbonAwareDesigner(
            network="vgg16",
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=0.5,
            library=library,
            predictor=predictor,
        )
        space = space_for_library(library)
        seeds = designer._baseline_seeds(library, space)
        multiplier_indices = {genome[-1] for genome in seeds}
        exact_positions = {
            i for i, m in enumerate(library.multipliers) if m.is_exact
        }
        assert multiplier_indices & exact_positions
