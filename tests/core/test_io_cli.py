"""Unit tests for result serialisation and the CLI."""

import json

import pytest

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.cli import build_parser, main
from repro.core.baselines import exact_sweep
from repro.core.io import (
    design_points_to_csv,
    design_points_to_json,
    fig2_table_to_json,
    load_design_rows,
)
from repro.errors import ExperimentError

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def points():
    library = build_library(width=8, seed=0, **FAST)
    return exact_sweep("vgg16", library, 7, AccuracyPredictor())


class TestJson:
    def test_round_trip(self, points):
        text = design_points_to_json(points)
        rows = load_design_rows(text)
        assert len(rows) == len(points)
        assert rows[0]["label"] == "exact"
        assert rows[0]["pes"] == 64

    def test_rejects_non_array(self):
        with pytest.raises(ExperimentError, match="array"):
            load_design_rows(json.dumps({"not": "a list"}))

    def test_rejects_malformed_rows(self):
        with pytest.raises(ExperimentError, match="malformed"):
            load_design_rows(json.dumps([{"no_label": 1}]))

    def test_fig2_table_json(self):
        text = fig2_table_to_json(
            {(7, 0.5): (1.0, 2.0), (14, 0.5): (3.0, 4.0)}, "vgg16"
        )
        payload = json.loads(text)
        assert payload["network"] == "vgg16"
        assert len(payload["reductions"]) == 2
        assert payload["reductions"][0]["node_nm"] == 7


class TestCsv:
    def test_header_and_rows(self, points):
        text = design_points_to_csv(points)
        lines = text.strip().splitlines()
        assert lines[0].startswith("label,network,node_nm")
        assert len(lines) == len(points) + 1

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            design_points_to_csv([])


class TestCliParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("library", "design", "accuracy", "fig2-scatter",
                        "fig2-table", "fig3", "sensitivity"):
            assert command in text

    def test_accuracy_flags_documented(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--help"])
        text = capsys.readouterr().out
        for flag in ("--stack-workers", "--accuracy-mode",
                     "--accuracy-workers", "--accuracy-shards",
                     "--coordinator"):
            assert flag in text

    def test_accuracy_mode_choices(self):
        args = build_parser().parse_args(
            ["accuracy", "--accuracy-mode", "thread", "--stack-workers", "2"]
        )
        assert args.accuracy_mode == "thread"
        assert args.stack_workers == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["accuracy", "--accuracy-mode", "bogus"])

    def test_design_defaults(self):
        args = build_parser().parse_args(["design"])
        assert args.network == "vgg16"
        assert args.node == 7
        assert args.fps == 30.0

    def test_invalid_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design", "--network", "alexnet"])

    def test_invalid_node_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design", "--node", "5"])


class TestCliExecution:
    def test_library_fast(self, capsys):
        assert main(["library", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Approximate-multiplier library" in out
        assert "exact" in out

    def test_design_fast_with_json(self, tmp_path, capsys):
        out_path = tmp_path / "design.json"
        code = main([
            "design", "--fast", "--network", "resnet50",
            "--fps", "30", "--drop", "2", "--json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GA-CDP:" in out
        assert "saving" in out
        rows = load_design_rows(out_path.read_text())
        assert {row["label"] for row in rows} == {"exact", "ga_cdp"}

    def test_accuracy_fast_serial_vs_thread_identical(self, tmp_path, capsys):
        """The CLI accuracy study prints identical drops in every mode."""
        serial_json = tmp_path / "serial.json"
        code = main([
            "accuracy", "--fast", "--accuracy-mode", "serial",
            "--json", str(serial_json),
        ])
        assert code == 0
        serial_out = capsys.readouterr().out
        assert "Behavioural accuracy study" in serial_out
        assert "Spearman rho" in serial_out

        thread_json = tmp_path / "thread.json"
        code = main([
            "accuracy", "--fast", "--accuracy-mode", "thread",
            "--accuracy-workers", "2", "--stack-workers", "2",
            "--json", str(thread_json),
        ])
        assert code == 0
        serial_payload = json.loads(serial_json.read_text())
        thread_payload = json.loads(thread_json.read_text())
        assert serial_payload == thread_payload

    def test_impossible_design_returns_error_code(self, capsys):
        code = main([
            "design", "--fast", "--network", "vgg16",
            "--node", "28", "--fps", "100000",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err
