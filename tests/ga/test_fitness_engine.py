"""Unit tests for CDP fitness and the GA engine."""

import pytest

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import build_library
from repro.errors import ConstraintError, OptimizationError
from repro.ga.chromosome import space_for_library
from repro.ga.engine import GaConfig, GeneticAlgorithm
from repro.ga.fitness import FitnessEvaluator, FitnessResult

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def space(library):
    return space_for_library(library)


@pytest.fixture(scope="module")
def evaluator(library, space):
    return FitnessEvaluator(
        network="resnet50",
        library=library,
        space=space,
        node_nm=7,
        min_fps=30.0,
        max_drop_percent=2.0,
        predictor=AccuracyPredictor(),
    )


class TestFitnessResult:
    def make(self, cdp=1.0, violation=0.0):
        return FitnessResult(
            genome=(0,) * 5,
            cdp=cdp,
            carbon_g=1.0,
            fps=30.0,
            accuracy_drop_percent=0.0,
            violation=violation,
        )

    def test_feasible_beats_infeasible(self):
        assert self.make(cdp=100.0).better_than(self.make(violation=0.1))

    def test_lower_violation_wins_among_infeasible(self):
        assert self.make(violation=0.1).better_than(self.make(violation=0.5))

    def test_lower_cdp_wins_among_feasible(self):
        assert self.make(cdp=0.5).better_than(self.make(cdp=1.0))

    def test_feasible_flag(self):
        assert self.make().feasible
        assert not self.make(violation=0.01).feasible


class TestFitnessEvaluator:
    def test_memoised(self, evaluator, space):
        import numpy as np

        genome = space.random_genome(np.random.default_rng(0))
        first = evaluator.evaluate(genome)
        count = evaluator.evaluations
        second = evaluator.evaluate(genome)
        assert first is second
        assert evaluator.evaluations == count

    def test_small_design_violates_fps(self, evaluator, library, space):
        tiny = (0, 0, 0, 0, 0)  # 2x2 PEs
        result = evaluator.evaluate(tiny)
        assert result.fps < 30.0
        assert not result.feasible
        assert result.violation > 0

    def test_bad_multiplier_violates_accuracy(self, library, space):
        evaluator = FitnessEvaluator(
            network="resnet152",
            library=library,
            space=space,
            node_nm=7,
            min_fps=1.0,
            max_drop_percent=0.5,
            predictor=AccuracyPredictor(),
        )
        worst_index = len(library) - 1  # smallest area, largest error
        big = (13, 13, 3, 7, worst_index)
        result = evaluator.evaluate(big)
        assert result.accuracy_drop_percent > 0.5
        assert not result.feasible

    def test_invalid_constraints_rejected(self, library, space):
        with pytest.raises(ConstraintError):
            FitnessEvaluator(
                network="vgg16", library=library, space=space,
                node_nm=7, min_fps=0.0, max_drop_percent=1.0,
            )
        with pytest.raises(ConstraintError):
            FitnessEvaluator(
                network="vgg16", library=library, space=space,
                node_nm=7, min_fps=30.0, max_drop_percent=-1.0,
            )

    def test_cdp_consistency(self, evaluator, space):
        """Deadline-CDP: delay floored at 1/min_fps."""
        import numpy as np

        genome = space.random_genome(np.random.default_rng(7))
        result = evaluator.evaluate(genome)
        if result.fps > 0 and np.isfinite(result.cdp):
            delay = max(1.0 / result.fps, 1.0 / 30.0)
            assert result.cdp == pytest.approx(
                result.carbon_g * delay, rel=1e-9
            )

    def test_pure_cdp_mode(self, library, space):
        pure = FitnessEvaluator(
            network="resnet50",
            library=library,
            space=space,
            node_nm=7,
            min_fps=30.0,
            max_drop_percent=2.0,
            fitness_mode="pure_cdp",
        )
        import numpy as np

        genome = space.random_genome(np.random.default_rng(11))
        result = pure.evaluate(genome)
        if result.fps > 0 and np.isfinite(result.cdp):
            assert result.cdp == pytest.approx(
                result.carbon_g / result.fps, rel=1e-9
            )

    def test_unknown_fitness_mode_rejected(self, library, space):
        with pytest.raises(ConstraintError, match="fitness_mode"):
            FitnessEvaluator(
                network="vgg16", library=library, space=space,
                node_nm=7, min_fps=30.0, max_drop_percent=1.0,
                fitness_mode="inverse",
            )


class TestGaConfig:
    def test_bounds(self):
        with pytest.raises(OptimizationError):
            GaConfig(population_size=2)
        with pytest.raises(OptimizationError):
            GaConfig(generations=0)
        with pytest.raises(OptimizationError):
            GaConfig(crossover_rate=2.0)
        with pytest.raises(OptimizationError):
            GaConfig(mutation_rate=-0.1)
        with pytest.raises(OptimizationError):
            GaConfig(tournament_size=1)


class TestGeneticAlgorithm:
    def test_deterministic(self, evaluator, space):
        cfg = GaConfig(population_size=10, generations=5, seed=3)
        a = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        b = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        assert a.best.genome == b.best.genome
        assert a.best.cdp == b.best.cdp

    def test_finds_feasible_design(self, evaluator, space):
        cfg = GaConfig(population_size=16, generations=12, seed=0)
        outcome = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        assert outcome.best.feasible
        assert outcome.best.fps >= 30.0
        assert outcome.best.accuracy_drop_percent <= 2.0

    def test_history_monotone(self, evaluator, space):
        cfg = GaConfig(population_size=12, generations=10, seed=5)
        outcome = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        cdps = [
            record.cdp for record in outcome.history if record.feasible
        ]
        assert cdps == sorted(cdps, reverse=True) or cdps == sorted(cdps)
        # best-so-far history: once feasible, CDP never increases
        for earlier, later in zip(cdps, cdps[1:]):
            assert later <= earlier

    def test_elitism_keeps_best(self, evaluator, space):
        cfg = GaConfig(population_size=10, generations=8, seed=9)
        outcome = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        final = outcome.history[-1]
        assert not outcome.best.better_than(final) or final.genome == outcome.best.genome
        assert outcome.best.cdp <= min(
            r.cdp for r in outcome.history if r.feasible
        )

    def test_beats_random_search(self, evaluator, space):
        """GA best should be at least as good as same-budget random."""
        import numpy as np

        cfg = GaConfig(population_size=16, generations=10, seed=2)
        outcome = GeneticAlgorithm(space, evaluator.evaluate, cfg).run()
        rng = np.random.default_rng(123)
        random_results = [
            evaluator.evaluate(space.random_genome(rng))
            for _ in range(outcome.evaluations)
        ]
        random_best = min(
            (r for r in random_results if r.feasible),
            key=lambda r: r.cdp,
            default=None,
        )
        assert random_best is None or outcome.best.cdp <= random_best.cdp * 1.2
