"""Unit tests for the chromosome encoding."""

import numpy as np
import pytest

from repro.approx.library import build_library
from repro.errors import OptimizationError
from repro.ga.chromosome import (
    ChromosomeSpace,
    DIMENSION_CHOICES,
    space_for_library,
)

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def library():
    return build_library(width=8, seed=0, **FAST)


@pytest.fixture(scope="module")
def space(library):
    return space_for_library(library)


class TestSpace:
    def test_gene_ranges(self, space, library):
        ranges = space.gene_ranges
        assert len(ranges) == 5
        assert ranges[0] == ranges[1] == len(DIMENSION_CHOICES)
        assert ranges[4] == len(library)

    def test_search_space_size(self, space):
        expected = 1
        for r in space.gene_ranges:
            expected *= r
        assert space.search_space_size == expected
        assert space.search_space_size > 10_000

    def test_empty_menu_rejected(self):
        with pytest.raises(OptimizationError):
            ChromosomeSpace(dimension_choices=())
        with pytest.raises(OptimizationError):
            ChromosomeSpace(n_multipliers=0)


class TestValidateDecode:
    def test_decode_round_trip(self, space, library):
        genome = (3, 5, 2, 4, 0)
        config = space.decode(genome, library, 7)
        assert config.pe_rows == DIMENSION_CHOICES[3]
        assert config.pe_cols == DIMENSION_CHOICES[5]
        assert config.multiplier is library[0]
        assert config.node_nm == 7

    def test_wrong_length_rejected(self, space, library):
        with pytest.raises(OptimizationError, match="genes"):
            space.decode((0, 0, 0), library, 7)

    def test_out_of_range_rejected(self, space, library):
        genome = (0, 0, 0, 0, len(library))
        with pytest.raises(OptimizationError, match="outside"):
            space.decode(genome, library, 7)

    def test_library_size_mismatch(self, library):
        wrong = ChromosomeSpace(n_multipliers=len(library) + 5)
        with pytest.raises(OptimizationError, match="entries"):
            wrong.decode((0, 0, 0, 0, 0), library, 7)


class TestOperators:
    def test_random_genomes_valid(self, space):
        rng = np.random.default_rng(0)
        for _ in range(100):
            space.validate(space.random_genome(rng))

    def test_mutation_stays_valid(self, space):
        rng = np.random.default_rng(1)
        genome = space.random_genome(rng)
        for _ in range(100):
            genome = space.mutate(genome, rng, rate=0.5)
            space.validate(genome)

    def test_zero_rate_mutation_identity(self, space):
        rng = np.random.default_rng(2)
        genome = space.random_genome(rng)
        assert space.mutate(genome, rng, rate=0.0) == genome

    def test_crossover_mixes_parents(self, space):
        rng = np.random.default_rng(3)
        a = tuple([0] * space.n_genes)
        b = tuple(r - 1 for r in space.gene_ranges)
        child = space.crossover(a, b, rng)
        space.validate(child)
        assert all(c in (x, y) for c, x, y in zip(child, a, b))

    def test_mutation_mostly_small_steps(self, space):
        """The +-1 step bias should keep most mutations local."""
        rng = np.random.default_rng(4)
        genome = tuple(r // 2 for r in space.gene_ranges)
        small_steps = 0
        trials = 400
        for _ in range(trials):
            mutated = space.mutate(genome, rng, rate=1.0)
            deltas = [abs(m - g) for m, g in zip(mutated, genome)]
            small_steps += sum(1 for d in deltas if d <= 1)
        assert small_steps > trials * space.n_genes * 0.6
