"""Unit tests for the gate library."""

import numpy as np
import pytest

from repro.circuits.gates import (
    GATE_LIBRARY,
    Gate,
    GateKind,
    gate_output_for_constants,
)

TWO_INPUT_TRUTH = {
    GateKind.AND: [0, 0, 0, 1],
    GateKind.OR: [0, 1, 1, 1],
    GateKind.NAND: [1, 1, 1, 0],
    GateKind.NOR: [1, 0, 0, 0],
    GateKind.XOR: [0, 1, 1, 0],
    GateKind.XNOR: [1, 0, 0, 1],
}


class TestGateSpecs:
    def test_library_covers_every_kind(self):
        assert set(GATE_LIBRARY) == set(GateKind)

    @pytest.mark.parametrize("kind", list(GateKind))
    def test_input_counts(self, kind):
        spec = GATE_LIBRARY[kind]
        expected = {"not": 1, "buf": 1, "mux": 3}.get(kind.value, 2)
        assert spec.n_inputs == expected

    def test_nand_is_cheapest_two_input(self):
        nand = GATE_LIBRARY[GateKind.NAND].transistors
        for kind in (GateKind.AND, GateKind.OR, GateKind.XOR, GateKind.XNOR):
            assert GATE_LIBRARY[kind].transistors >= nand

    def test_nand2_equivalents_normalised(self):
        assert GATE_LIBRARY[GateKind.NAND].nand2_equivalents == 1.0
        assert GATE_LIBRARY[GateKind.NOT].nand2_equivalents == 0.5

    def test_xor_slower_than_nand(self):
        assert (
            GATE_LIBRARY[GateKind.XOR].delay_weight
            > GATE_LIBRARY[GateKind.NAND].delay_weight
        )


class TestGateEvaluation:
    @pytest.mark.parametrize("kind,expected", sorted(TWO_INPUT_TRUTH.items(), key=lambda kv: kv[0].value))
    def test_two_input_truth_tables(self, kind, expected):
        a = np.array([0, 0, 1, 1], dtype=bool)
        b = np.array([0, 1, 0, 1], dtype=bool)
        out = GATE_LIBRARY[kind].evaluate((a, b))
        assert out.tolist() == [bool(v) for v in expected]

    def test_not_and_buf(self):
        a = np.array([0, 1], dtype=bool)
        assert GATE_LIBRARY[GateKind.NOT].evaluate((a,)).tolist() == [True, False]
        assert GATE_LIBRARY[GateKind.BUF].evaluate((a,)).tolist() == [False, True]

    def test_mux_selects(self):
        a = np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=bool)
        b = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=bool)
        sel = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=bool)
        out = GATE_LIBRARY[GateKind.MUX].evaluate((a, b, sel))
        expected = np.where(sel, b, a)
        assert np.array_equal(out, expected)

    def test_packed_uint64_evaluation_matches_bool(self):
        rng = np.random.default_rng(7)
        a64 = rng.integers(0, 2**63, size=4, dtype=np.uint64)
        b64 = rng.integers(0, 2**63, size=4, dtype=np.uint64)
        for kind, spec in GATE_LIBRARY.items():
            if spec.n_inputs != 2:
                continue
            packed = spec.evaluate((a64, b64))
            for word in range(4):
                for bit in range(64):
                    a_bit = bool((int(a64[word]) >> bit) & 1)
                    b_bit = bool((int(b64[word]) >> bit) & 1)
                    want = GATE_LIBRARY[kind].evaluate(
                        (np.array([a_bit]), np.array([b_bit]))
                    )[0]
                    got = bool((int(packed[word]) >> bit) & 1)
                    assert got == want, (kind, word, bit)
                    break  # one bit per word is enough to catch packing bugs
            # also compare whole-word semantics against python ints
            if kind == GateKind.AND:
                assert np.array_equal(packed, a64 & b64)


class TestGateInstances:
    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 inputs"):
            Gate(GateKind.AND, ("a",), "y")
        with pytest.raises(ValueError, match="expects 1 inputs"):
            Gate(GateKind.NOT, ("a", "b"), "y")

    def test_with_inputs_rewires(self):
        gate = Gate(GateKind.AND, ("a", "b"), "y")
        rewired = gate.with_inputs(("c", "d"))
        assert rewired.inputs == ("c", "d")
        assert rewired.output == "y"
        assert rewired.kind == GateKind.AND

    def test_spec_property(self):
        gate = Gate(GateKind.XOR, ("a", "b"), "y")
        assert gate.spec.transistors == 10


class TestConstantEvaluation:
    @pytest.mark.parametrize("kind", [k for k in GateKind if GATE_LIBRARY[k].n_inputs == 2])
    def test_matches_vector_truth(self, kind):
        for a in (0, 1):
            for b in (0, 1):
                scalar = gate_output_for_constants(kind, (a, b))
                arr = GATE_LIBRARY[kind].evaluate(
                    (np.array([bool(a)]), np.array([bool(b)]))
                )
                assert scalar == int(arr[0])

    def test_mux_constants(self):
        assert gate_output_for_constants(GateKind.MUX, (1, 0, 0)) == 1
        assert gate_output_for_constants(GateKind.MUX, (1, 0, 1)) == 0
        assert gate_output_for_constants(GateKind.MUX, (0, 1, 1)) == 1
