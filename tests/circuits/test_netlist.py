"""Unit tests for the netlist IR."""

import pytest

from repro.circuits.gates import GateKind
from repro.circuits.netlist import (
    Netlist,
    bus,
    declare_input_bus,
    declare_output_bus,
    iter_gates_in_order,
)
from repro.errors import NetlistError


def small_netlist() -> Netlist:
    """y = (a AND b) XOR c, z = NOT y."""
    nl = Netlist("small")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_input("c")
    nl.add_gate(GateKind.AND, ("a", "b"), "t")
    nl.add_gate(GateKind.XOR, ("t", "c"), "y")
    nl.add_gate(GateKind.NOT, ("y",), "z")
    nl.add_output("y")
    nl.add_output("z")
    return nl


class TestConstruction:
    def test_duplicate_input_rejected(self):
        nl = Netlist("t")
        nl.add_input("a")
        with pytest.raises(NetlistError, match="duplicate input"):
            nl.add_input("a")

    def test_double_drive_rejected(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate(GateKind.NOT, ("a",), "y")
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_gate(GateKind.BUF, ("a",), "y")

    def test_gate_cannot_drive_input(self):
        nl = Netlist("t")
        nl.add_input("a")
        with pytest.raises(NetlistError, match="primary input"):
            nl.add_gate(GateKind.NOT, ("a",), "a")

    def test_gate_cannot_drive_constant(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.tie_constant("k", 1)
        with pytest.raises(NetlistError, match="constant"):
            nl.add_gate(GateKind.NOT, ("a",), "k")

    def test_constant_value_checked(self):
        nl = Netlist("t")
        with pytest.raises(NetlistError, match="must be 0 or 1"):
            nl.tie_constant("k", 2)

    def test_constant_cannot_shadow_gate(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate(GateKind.NOT, ("a",), "y")
        with pytest.raises(NetlistError, match="already driven"):
            nl.tie_constant("y", 0)

    def test_fresh_wire_never_collides(self):
        nl = small_netlist()
        names = {nl.fresh_wire() for _ in range(5)}
        # fresh_wire does not reserve, so identical calls may repeat; but
        # none may collide with existing wires
        for name in names:
            assert not nl.is_known(name)


class TestQueries:
    def test_driver_of(self):
        nl = small_netlist()
        assert nl.driver_of("t").kind == GateKind.AND
        assert nl.driver_of("a") is None

    def test_all_wires(self):
        nl = small_netlist()
        assert nl.all_wires() == {"a", "b", "c", "t", "y", "z"}

    def test_fanout(self):
        nl = small_netlist()
        fan = nl.fanout()
        assert fan["a"] == ["t"]
        assert fan["t"] == ["y"]
        assert fan["y"] == ["z"]

    def test_counts(self):
        nl = small_netlist()
        assert nl.gate_count == 3
        # AND(6) + XOR(10) + NOT(2)
        assert nl.transistor_count() == 18

    def test_kind_histogram(self):
        nl = small_netlist()
        hist = nl.kind_histogram()
        assert hist[GateKind.AND] == 1
        assert hist[GateKind.XOR] == 1
        assert hist[GateKind.NOT] == 1

    def test_stats(self):
        stats = small_netlist().stats()
        assert stats["gates"] == 3
        assert stats["inputs"] == 3
        assert stats["outputs"] == 2


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        nl = small_netlist()
        order = nl.topological_order()
        assert order.index("t") < order.index("y") < order.index("z")

    def test_cycle_detected(self):
        nl = Netlist("cycle")
        nl.add_input("a")
        nl.add_gate(GateKind.AND, ("a", "q"), "p")
        nl.add_gate(GateKind.NOT, ("p",), "q")
        nl.add_output("q")
        with pytest.raises(NetlistError, match="cycle"):
            nl.topological_order()

    def test_undriven_gate_input_detected(self):
        nl = Netlist("undriven")
        nl.add_input("a")
        nl.add_gate(GateKind.AND, ("a", "ghost"), "y")
        nl.add_output("y")
        with pytest.raises(NetlistError, match="undriven wire 'ghost'"):
            nl.topological_order()

    def test_deep_chain_no_recursion_error(self):
        nl = Netlist("deep")
        nl.add_input("a")
        prev = "a"
        for i in range(5000):
            prev = nl.add_gate(GateKind.NOT, (prev,), f"n{i}")
        nl.add_output(prev)
        order = nl.topological_order()
        assert len(order) == 5000


class TestHousekeeping:
    def test_check_outputs_driven(self):
        nl = small_netlist()
        nl.check_outputs_driven()
        nl.add_output("missing")
        with pytest.raises(NetlistError, match="undriven"):
            nl.check_outputs_driven()

    def test_copy_is_independent(self):
        nl = small_netlist()
        clone = nl.copy()
        clone.add_input("d")
        assert "d" not in nl.inputs
        del clone.gates["z"]
        assert "z" in nl.gates


class TestBusHelpers:
    def test_bus_names(self):
        assert bus("p", 3) == ["p0", "p1", "p2"]

    def test_bus_width_validated(self):
        with pytest.raises(NetlistError, match="positive"):
            bus("p", 0)

    def test_declare_buses(self):
        nl = Netlist("t")
        a = declare_input_bus(nl, "a", 2)
        assert nl.inputs == ["a0", "a1"] == a
        out = declare_output_bus(nl, "o", 2)
        assert nl.outputs == ["o0", "o1"] == out

    def test_iter_gates_in_order(self):
        nl = small_netlist()
        kinds = [g.kind for g in iter_gates_in_order(nl)]
        assert kinds == [GateKind.AND, GateKind.XOR, GateKind.NOT]
