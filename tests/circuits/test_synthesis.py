"""Unit and property tests for the arithmetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.area import netlist_delay_ps
from repro.circuits.synthesis import (
    MULTIPLIER_KINDS,
    array_multiplier,
    dadda_multiplier,
    make_multiplier,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.circuits.verify import validate_netlist
from repro.errors import SynthesisError


def operands(a_width: int, b_width: int):
    cases = np.arange(1 << (a_width + b_width))
    a = cases & ((1 << a_width) - 1)
    b = cases >> a_width
    return a, b


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 8])
    def test_exhaustively_correct(self, width):
        adder = ripple_carry_adder(width)
        validate_netlist(adder.netlist)
        a, b = operands(width, width)
        assert np.array_equal(adder.truth_table(), a + b)

    def test_result_width(self):
        adder = ripple_carry_adder(8)
        assert adder.result_width == 9

    def test_gate_count_scales_linearly(self):
        # HA (2 gates) + (w-1) FAs (5 gates each)
        assert ripple_carry_adder(8).netlist.gate_count == 2 + 7 * 5

    def test_invalid_width(self):
        with pytest.raises(SynthesisError):
            ripple_carry_adder(0)


class TestMultiplierCorrectness:
    @pytest.mark.parametrize("kind", MULTIPLIER_KINDS)
    @pytest.mark.parametrize("a_width,b_width", [(1, 1), (2, 2), (3, 5), (4, 4), (8, 8)])
    def test_exhaustively_correct(self, kind, a_width, b_width):
        mul = make_multiplier(a_width, b_width, kind=kind)
        validate_netlist(mul.netlist)
        a, b = operands(a_width, b_width)
        assert np.array_equal(mul.truth_table(), a * b)

    @pytest.mark.parametrize("kind", MULTIPLIER_KINDS)
    def test_result_width_is_sum_of_operand_widths(self, kind):
        mul = make_multiplier(5, 3, kind=kind)
        assert mul.result_width == 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(SynthesisError, match="unknown multiplier kind"):
            make_multiplier(4, 4, kind="booth")

    def test_oversized_rejected(self):
        with pytest.raises(SynthesisError, match="refusing"):
            make_multiplier(16, 16)

    def test_zero_width_rejected(self):
        with pytest.raises(SynthesisError):
            make_multiplier(0, 4)


class TestMultiplierStructure:
    def test_tree_multipliers_are_faster_than_array(self):
        array = array_multiplier(8, 8)
        wallace = wallace_multiplier(8, 8)
        dadda = dadda_multiplier(8, 8)
        d_array = netlist_delay_ps(array.netlist, 7)
        d_wallace = netlist_delay_ps(wallace.netlist, 7)
        d_dadda = netlist_delay_ps(dadda.netlist, 7)
        assert d_wallace < d_array
        assert d_dadda < d_array

    def test_gate_counts_in_expected_range(self):
        # 64 partial-product ANDs plus ~56 adder cells
        for kind in MULTIPLIER_KINDS:
            gates = make_multiplier(8, 8, kind=kind).netlist.gate_count
            assert 250 <= gates <= 400, (kind, gates)

    def test_default_square(self):
        mul = make_multiplier(6, kind="dadda")
        assert mul.a_width == mul.b_width == 6

    def test_names_are_stable(self):
        assert make_multiplier(8, 8, kind="array").netlist.name == "mul8x8_array"
        assert make_multiplier(8, 8, kind="wallace").netlist.name == "mul8x8_wallace"


@settings(max_examples=25, deadline=None)
@given(
    a_width=st.integers(min_value=1, max_value=6),
    b_width=st.integers(min_value=1, max_value=6),
    kind=st.sampled_from(MULTIPLIER_KINDS),
)
def test_property_multiplier_always_exact(a_width, b_width, kind):
    """Any generated multiplier is exhaustively correct."""
    mul = make_multiplier(a_width, b_width, kind=kind)
    a, b = operands(a_width, b_width)
    assert np.array_equal(mul.truth_table(), a * b)


@settings(max_examples=15, deadline=None)
@given(width=st.integers(min_value=1, max_value=7))
def test_property_adder_always_exact(width):
    adder = ripple_carry_adder(width)
    a, b = operands(width, width)
    assert np.array_equal(adder.truth_table(), a + b)
