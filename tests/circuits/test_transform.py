"""Unit and property tests for netlist transforms (pruning machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import bus_to_uint, exhaustive_table
from repro.circuits.synthesis import make_multiplier
from repro.circuits.transform import (
    propagate_constants,
    prune_wires,
    remove_dead_gates,
    simplify,
)
from repro.circuits.verify import validate_netlist
from repro.errors import NetlistError


def build(gates, inputs, outputs, constants=None):
    nl = Netlist("t")
    for wire in inputs:
        nl.add_input(wire)
    for wire, value in (constants or {}).items():
        nl.tie_constant(wire, value)
    for kind, ins, out in gates:
        nl.add_gate(kind, ins, out)
    for wire in outputs:
        nl.add_output(wire)
    return nl


class TestConstantPropagation:
    def test_and_with_zero_becomes_constant(self):
        nl = build(
            [(GateKind.AND, ("a", "k0"), "y")],
            inputs=["a"],
            outputs=["y"],
            constants={"k0": 0},
        )
        out = propagate_constants(nl)
        assert out.gate_count == 0
        assert out.constants[out.outputs[0]] == 0

    def test_and_with_one_aliases(self):
        nl = build(
            [(GateKind.AND, ("a", "k1"), "y")],
            inputs=["a"],
            outputs=["y"],
            constants={"k1": 1},
        )
        out = propagate_constants(nl)
        assert out.gate_count == 0
        assert out.outputs == ["a"]

    def test_or_rules(self):
        nl = build(
            [
                (GateKind.OR, ("a", "k1"), "y1"),
                (GateKind.OR, ("a", "k0"), "y0"),
            ],
            inputs=["a"],
            outputs=["y1", "y0"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.constants[out.outputs[0]] == 1
        assert out.outputs[1] == "a"

    def test_nand_nor_with_constant_becomes_not(self):
        nl = build(
            [
                (GateKind.NAND, ("a", "k1"), "y1"),
                (GateKind.NOR, ("a", "k0"), "y0"),
            ],
            inputs=["a"],
            outputs=["y1", "y0"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.gates[out.outputs[0]].kind == GateKind.NOT
        assert out.gates[out.outputs[1]].kind == GateKind.NOT

    def test_xor_rules(self):
        nl = build(
            [
                (GateKind.XOR, ("a", "k0"), "alias"),
                (GateKind.XOR, ("a", "k1"), "inverted"),
                (GateKind.XOR, ("a", "a"), "zero"),
            ],
            inputs=["a"],
            outputs=["alias", "inverted", "zero"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.outputs[0] == "a"
        assert out.gates[out.outputs[1]].kind == GateKind.NOT
        assert out.constants[out.outputs[2]] == 0

    def test_xnor_rules(self):
        nl = build(
            [
                (GateKind.XNOR, ("a", "k1"), "alias"),
                (GateKind.XNOR, ("a", "a"), "one"),
            ],
            inputs=["a"],
            outputs=["alias", "one"],
            constants={"k1": 1},
        )
        out = propagate_constants(nl)
        assert out.outputs[0] == "a"
        assert out.constants[out.outputs[1]] == 1

    def test_same_input_collapses(self):
        nl = build(
            [
                (GateKind.AND, ("a", "a"), "ya"),
                (GateKind.OR, ("a", "a"), "yo"),
                (GateKind.NAND, ("a", "a"), "yn"),
            ],
            inputs=["a"],
            outputs=["ya", "yo", "yn"],
        )
        out = propagate_constants(nl)
        assert out.outputs[0] == "a"
        assert out.outputs[1] == "a"
        assert out.gates[out.outputs[2]].kind == GateKind.NOT

    def test_buf_aliases_through_chain(self):
        nl = build(
            [
                (GateKind.BUF, ("a",), "b1"),
                (GateKind.BUF, ("b1",), "b2"),
                (GateKind.AND, ("b2", "c"), "y"),
            ],
            inputs=["a", "c"],
            outputs=["y"],
        )
        out = propagate_constants(nl)
        assert out.gates["y"].inputs == ("a", "c")
        assert out.gate_count == 1

    def test_mux_select_known(self):
        nl = build(
            [
                (GateKind.MUX, ("a", "b", "k0"), "y0"),
                (GateKind.MUX, ("a", "b", "k1"), "y1"),
            ],
            inputs=["a", "b"],
            outputs=["y0", "y1"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.outputs == ["a", "b"]

    def test_mux_const_data_rules(self):
        nl = build(
            [
                (GateKind.MUX, ("k0", "k1", "s"), "is_s"),
                (GateKind.MUX, ("k1", "k0", "s"), "not_s"),
                (GateKind.MUX, ("k0", "b", "s"), "and_bs"),
                (GateKind.MUX, ("a", "k1", "s"), "or_as"),
            ],
            inputs=["a", "b", "s"],
            outputs=["is_s", "not_s", "and_bs", "or_as"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.outputs[0] == "s"
        assert out.gates[out.outputs[1]].kind == GateKind.NOT
        assert out.gates[out.outputs[2]].kind == GateKind.AND
        assert out.gates[out.outputs[3]].kind == GateKind.OR

    def test_all_constant_gate_folds(self):
        nl = build(
            [(GateKind.NAND, ("k0", "k1"), "y")],
            inputs=["a"],
            outputs=["y"],
            constants={"k0": 0, "k1": 1},
        )
        out = propagate_constants(nl)
        assert out.constants[out.outputs[0]] == 1


class TestDeadGateRemoval:
    def test_unreachable_cone_removed(self):
        nl = build(
            [
                (GateKind.AND, ("a", "b"), "used"),
                (GateKind.XOR, ("a", "b"), "unused1"),
                (GateKind.NOT, ("unused1",), "unused2"),
            ],
            inputs=["a", "b"],
            outputs=["used"],
        )
        out = remove_dead_gates(nl)
        assert set(out.gates) == {"used"}

    def test_unused_constants_removed(self):
        nl = build(
            [(GateKind.AND, ("a", "b"), "y")],
            inputs=["a", "b"],
            outputs=["y"],
            constants={"k": 1},
        )
        out = remove_dead_gates(nl)
        assert out.constants == {}

    def test_inputs_always_kept(self):
        nl = build(
            [(GateKind.NOT, ("a",), "y")],
            inputs=["a", "unused_input"],
            outputs=["y"],
        )
        out = remove_dead_gates(nl)
        assert out.inputs == ["a", "unused_input"]


class TestPruneWires:
    def test_prune_requires_gate_output(self):
        mul = make_multiplier(4, 4, kind="wallace")
        with pytest.raises(NetlistError, match="not a gate output"):
            prune_wires(mul.netlist, {"a0": 0})
        with pytest.raises(NetlistError, match="not a gate output"):
            prune_wires(mul.netlist, {"nonexistent": 0})

    def test_prune_value_validated(self):
        mul = make_multiplier(4, 4, kind="wallace")
        some_gate = next(iter(mul.netlist.gates))
        with pytest.raises(NetlistError, match="must be 0/1"):
            prune_wires(mul.netlist, {some_gate: 7})

    def test_prune_reduces_gates(self):
        mul = make_multiplier(8, 8, kind="wallace")
        wires = mul.netlist.topological_order()[:10]
        pruned = prune_wires(mul.netlist, {w: 0 for w in wires})
        validate_netlist(pruned)
        assert pruned.gate_count < mul.netlist.gate_count

    def test_prune_keeps_output_positions(self):
        mul = make_multiplier(4, 4, kind="dadda")
        wires = mul.netlist.topological_order()[:3]
        pruned = prune_wires(mul.netlist, {w: 1 for w in wires})
        assert len(pruned.outputs) == len(mul.netlist.outputs)

    def test_original_untouched(self):
        mul = make_multiplier(4, 4, kind="array")
        before = dict(mul.netlist.gates)
        prune_wires(mul.netlist, {next(iter(before)): 0})
        assert mul.netlist.gates == before

    def test_prune_all_drivers_of_output(self):
        """Pruning the wire that directly drives an output makes it constant."""
        mul = make_multiplier(2, 2, kind="array")
        out0 = mul.netlist.outputs[0]
        pruned = prune_wires(mul.netlist, {out0: 1})
        table = exhaustive_table(pruned, [mul.a_wires, mul.b_wires])
        assert bool(np.all(table[pruned.outputs[0]]))


class TestSimplify:
    def test_simplify_is_idempotent(self):
        mul = make_multiplier(6, 6, kind="wallace")
        wires = mul.netlist.topological_order()[5:25:5]
        once = prune_wires(mul.netlist, {w: 0 for w in wires})
        twice = simplify(once)
        assert twice.gate_count == once.gate_count

    def test_exact_circuit_unchanged_by_simplify(self):
        mul = make_multiplier(8, 8, kind="dadda")
        # zero-padding constants may be dropped only if unused; function same
        simplified = simplify(mul.netlist)
        a = np.arange(65536) & 0xFF
        b = np.arange(65536) >> 8
        table = exhaustive_table(simplified, [mul.a_wires, mul.b_wires])
        product = bus_to_uint(table, simplified.outputs)
        assert np.array_equal(product, a * b)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_prune=st.integers(min_value=1, max_value=30),
    value=st.integers(min_value=0, max_value=1),
)
def test_property_pruned_netlist_valid_and_smaller(seed, n_prune, value):
    """Pruning any wire set yields a structurally valid, smaller netlist
    whose truth table is byte-for-byte reproducible."""
    mul = make_multiplier(6, 6, kind="wallace")
    rng = np.random.default_rng(seed)
    wires = list(mul.netlist.gates)
    chosen = rng.choice(wires, size=min(n_prune, len(wires)), replace=False)
    pruned = prune_wires(mul.netlist, {w: value for w in chosen})
    validate_netlist(pruned)
    assert pruned.gate_count <= mul.netlist.gate_count
    circ = mul.with_netlist(pruned)
    t1 = circ.truth_table()
    t2 = circ.truth_table()
    assert np.array_equal(t1, t2)
    # product of an approximate multiplier still fits in the result bus
    assert int(t1.max()) < (1 << circ.result_width)
