"""Unit and property tests for the fast adder families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    ADDER_KINDS,
    carry_lookahead_adder,
    carry_select_adder,
    kogge_stone_adder,
    make_adder,
)
from repro.circuits.area import netlist_delay_ps, netlist_ge
from repro.circuits.verify import validate_netlist
from repro.errors import SynthesisError


def operands(width: int):
    cases = np.arange(1 << (2 * width))
    return cases & ((1 << width) - 1), cases >> width


class TestCorrectness:
    @pytest.mark.parametrize("kind", ADDER_KINDS)
    @pytest.mark.parametrize("width", [1, 2, 5, 8])
    def test_exhaustively_correct(self, kind, width):
        adder = make_adder(width, kind)
        validate_netlist(adder.netlist)
        a, b = operands(width)
        assert np.array_equal(adder.truth_table(), a + b), (kind, width)

    @pytest.mark.parametrize("block", [1, 2, 3, 4, 8])
    def test_cla_blocks(self, block):
        adder = carry_lookahead_adder(8, block=block)
        a, b = operands(8)
        assert np.array_equal(adder.truth_table(), a + b)

    @pytest.mark.parametrize("block", [1, 2, 3, 5])
    def test_carry_select_blocks(self, block):
        adder = carry_select_adder(8, block=block)
        a, b = operands(8)
        assert np.array_equal(adder.truth_table(), a + b)

    def test_unknown_kind(self):
        with pytest.raises(SynthesisError, match="unknown adder kind"):
            make_adder(8, "brent_kung")

    def test_invalid_width(self):
        for kind in ADDER_KINDS:
            with pytest.raises(SynthesisError):
                make_adder(0, kind)

    def test_invalid_blocks(self):
        with pytest.raises(SynthesisError):
            carry_lookahead_adder(8, block=0)
        with pytest.raises(SynthesisError):
            carry_select_adder(8, block=0)


class TestAreaDelayTradeoffs:
    def test_ripple_is_smallest(self):
        ripple = netlist_ge(make_adder(8, "ripple").netlist)
        for kind in ("cla", "kogge_stone", "carry_select"):
            assert netlist_ge(make_adder(8, kind).netlist) > ripple

    def test_fast_adders_are_faster(self):
        ripple_delay = netlist_delay_ps(make_adder(8, "ripple").netlist, 7)
        for kind in ("cla", "kogge_stone", "carry_select"):
            assert netlist_delay_ps(make_adder(8, kind).netlist, 7) < ripple_delay

    def test_kogge_stone_fastest(self):
        delays = {
            kind: netlist_delay_ps(make_adder(8, kind).netlist, 7)
            for kind in ADDER_KINDS
        }
        assert delays["kogge_stone"] == min(delays.values())

    def test_wider_cla_deeper(self):
        d8 = netlist_delay_ps(carry_lookahead_adder(8).netlist, 7)
        d12 = netlist_delay_ps(carry_lookahead_adder(12).netlist, 7)
        assert d12 >= d8


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(ADDER_KINDS),
)
def test_property_all_adders_exact(width, kind):
    adder = make_adder(width, kind)
    a, b = operands(width)
    assert np.array_equal(adder.truth_table(), a + b)


@settings(max_examples=12, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=8),
    block=st.integers(min_value=1, max_value=8),
)
def test_property_kogge_stone_result_width(width, block):
    del block
    adder = kogge_stone_adder(width)
    assert adder.result_width == width + 1
