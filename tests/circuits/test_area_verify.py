"""Unit tests for area/delay models and verification helpers."""

import pytest

from repro.circuits.area import (
    GATE_AREA_MODELS,
    GateAreaModel,
    gate_area_model,
    netlist_area_um2,
    netlist_delay_ps,
    netlist_ge,
)
from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import make_multiplier, ripple_carry_adder
from repro.circuits.transform import prune_wires
from repro.circuits.verify import equivalent, validate_netlist
from repro.errors import CarbonModelError, NetlistError


class TestAreaModel:
    def test_supported_nodes(self):
        assert set(GATE_AREA_MODELS) == {7, 14, 28}

    def test_unsupported_node_rejected(self):
        with pytest.raises(CarbonModelError, match="unsupported technology node"):
            gate_area_model(5)

    def test_nonphysical_model_rejected(self):
        with pytest.raises(CarbonModelError, match="non-physical"):
            GateAreaModel(node_nm=7, nand2_area_um2=-1.0, gate_delay_ps=10.0)

    def test_area_scales_with_node(self):
        mul = make_multiplier(8, 8)
        a7 = netlist_area_um2(mul.netlist, 7)
        a14 = netlist_area_um2(mul.netlist, 14)
        a28 = netlist_area_um2(mul.netlist, 28)
        assert a7 < a14 < a28

    def test_delay_scales_with_node(self):
        mul = make_multiplier(8, 8)
        assert netlist_delay_ps(mul.netlist, 7) < netlist_delay_ps(mul.netlist, 28)

    def test_ge_counts_gates(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(GateKind.NAND, ("a", "b"), "y")
        nl.add_output("y")
        assert netlist_ge(nl) == 1.0

    def test_pruning_reduces_area(self):
        mul = make_multiplier(8, 8, kind="wallace")
        wires = mul.netlist.topological_order()[:30]
        pruned = prune_wires(mul.netlist, {w: 0 for w in wires})
        assert netlist_area_um2(pruned, 7) < netlist_area_um2(mul.netlist, 7)

    def test_empty_netlist_zero_delay(self):
        nl = Netlist("empty")
        nl.add_input("a")
        nl.add_output("a")
        assert netlist_delay_ps(nl, 7) == 0.0


class TestVerify:
    def test_validate_accepts_generated(self):
        for kind in ("array", "wallace", "dadda"):
            validate_netlist(make_multiplier(8, 8, kind=kind).netlist)

    def test_validate_rejects_bad_gate_key(self):
        nl = Netlist("bad")
        nl.add_input("a")
        nl.add_gate(GateKind.NOT, ("a",), "y")
        nl.add_output("y")
        gate = nl.gates["y"]
        nl.gates["z"] = gate  # corrupt: key != gate.output
        nl.add_output("z")
        with pytest.raises(NetlistError, match="claims to drive"):
            validate_netlist(nl)

    def test_equivalent_multipliers(self):
        a = make_multiplier(6, 6, kind="array")
        b = make_multiplier(6, 6, kind="wallace")
        assert equivalent(a.netlist, b.netlist, [a.a_wires, a.b_wires])

    def test_adder_not_equivalent_to_multiplier(self):
        add = ripple_carry_adder(4)
        mul = make_multiplier(4, 4)
        assert not equivalent(add.netlist, mul.netlist, [add.a_wires, add.b_wires])

    def test_pruned_not_equivalent_to_exact(self):
        mul = make_multiplier(6, 6, kind="wallace")
        # prune the output-driving wire hardest to miss
        out_driver = mul.netlist.outputs[4]
        pruned = prune_wires(mul.netlist, {out_driver: 1})
        assert not equivalent(mul.netlist, pruned, [mul.a_wires, mul.b_wires])
