"""Unit tests for the Verilog exporter."""

import re

import pytest

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import make_multiplier
from repro.circuits.transform import prune_wires
from repro.circuits.verilog import to_verilog
from repro.errors import NetlistError


def small_netlist() -> Netlist:
    nl = Netlist("demo")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_input("sel")
    nl.tie_constant("one", 1)
    nl.add_gate(GateKind.AND, ("a", "b"), "t1")
    nl.add_gate(GateKind.NAND, ("a", "b"), "t2")
    nl.add_gate(GateKind.MUX, ("t1", "t2", "sel"), "y")
    nl.add_gate(GateKind.XOR, ("y", "one"), "z")
    nl.add_output("y")
    nl.add_output("z")
    return nl


class TestVerilogStructure:
    def test_module_wrapper(self):
        text = to_verilog(small_netlist())
        assert text.startswith("// generated")
        assert "module demo(" in text
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared(self):
        text = to_verilog(small_netlist())
        for port in ("a", "b", "sel"):
            assert f"  input {port};" in text
        assert "  output out0;" in text
        assert "  output out1;" in text

    def test_gate_expressions(self):
        text = to_verilog(small_netlist())
        assert "assign t1 = a & b;" in text
        assert "assign t2 = ~(a & b);" in text
        assert "assign y = sel ? t2 : t1;" in text
        assert "assign z = y ^ one;" in text

    def test_constants_emitted(self):
        text = to_verilog(small_netlist())
        assert "assign one = 1'b1;" in text

    def test_outputs_bound_positionally(self):
        text = to_verilog(small_netlist())
        assert "assign out0 = y;" in text
        assert "assign out1 = z;" in text

    def test_custom_module_name(self):
        text = to_verilog(small_netlist(), module_name="my_mod")
        assert "module my_mod(" in text

    def test_illegal_names_sanitised(self):
        nl = Netlist("weird-name!")
        nl.add_input("in")  # not a Verilog keyword issue for us, but odd chars are
        nl.add_gate(GateKind.NOT, ("in",), "out$value-x")
        nl.add_output("out$value-x")
        text = to_verilog(nl)
        # every assign target must be a legal identifier
        for match in re.finditer(r"assign ([^ =]+) =", text):
            assert re.match(r"^[A-Za-z_][A-Za-z0-9_$]*$", match.group(1)), match.group(1)

    def test_undriven_output_rejected(self):
        nl = Netlist("bad")
        nl.add_input("a")
        nl.add_output("ghost")
        with pytest.raises(NetlistError):
            to_verilog(nl)


class TestVerilogOnRealCircuits:
    def test_multiplier_exports(self):
        mul = make_multiplier(8, 8, kind="dadda")
        text = to_verilog(mul.netlist)
        # one assign per gate + constants + output bindings
        assert text.count("assign") >= mul.netlist.gate_count
        assert "module mul8x8_dadda(" in text

    def test_pruned_multiplier_exports_with_constants(self):
        mul = make_multiplier(6, 6, kind="wallace")
        wires = mul.netlist.topological_order()[:10]
        pruned = prune_wires(mul.netlist, {w: 0 for w in wires})
        text = to_verilog(pruned)
        assert "1'b0" in text or "1'b1" in text or pruned.constants == {}

    def test_output_aliasing_input(self):
        """After simplification an output can be a primary input."""
        nl = Netlist("alias")
        nl.add_input("a")
        nl.add_output("a")
        text = to_verilog(nl)
        assert "assign out0 = a;" in text
