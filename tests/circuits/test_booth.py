"""Unit and property tests for the radix-4 Booth multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.area import netlist_delay_ps, netlist_ge
from repro.circuits.booth import booth_multiplier
from repro.circuits.synthesis import make_multiplier
from repro.circuits.verify import validate_netlist
from repro.errors import SynthesisError


def signed_view(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret unsigned codes as two's complement."""
    return ((values ^ (1 << (width - 1))) - (1 << (width - 1))).astype(np.int64)


def expected_products(width: int) -> np.ndarray:
    cases = np.arange(1 << (2 * width))
    a = signed_view(cases & ((1 << width) - 1), width)
    b = signed_view(cases >> width, width)
    return (a * b) & ((1 << (2 * width)) - 1)


class TestBoothCorrectness:
    @pytest.mark.parametrize("width", [2, 4, 6, 8])
    def test_exhaustively_correct(self, width):
        mul = booth_multiplier(width)
        validate_netlist(mul.netlist)
        assert np.array_equal(mul.truth_table(), expected_products(width))

    def test_result_width(self):
        assert booth_multiplier(8).result_width == 16

    def test_extreme_operands(self):
        """The asymmetric two's-complement corner (-128 x -128)."""
        mul = booth_multiplier(8)
        table = mul.truth_table()
        # a = b = 0x80 (-128): product 16384
        assert table[0x80 + (0x80 << 8)] == 16384
        # -128 x 127 = -16256 -> two's complement in 16 bits
        assert table[0x80 + (0x7F << 8)] == (-16256) & 0xFFFF


class TestBoothStructure:
    def test_odd_width_rejected(self):
        with pytest.raises(SynthesisError, match="even"):
            booth_multiplier(7)

    def test_tiny_width_rejected(self):
        with pytest.raises(SynthesisError):
            booth_multiplier(0)

    def test_oversized_rejected(self):
        with pytest.raises(SynthesisError, match="refusing"):
            booth_multiplier(14)

    def test_fewer_partial_product_rows_than_array(self):
        """Booth halves the PP rows; gate count is comparable or less."""
        booth = booth_multiplier(8)
        array = make_multiplier(8, 8, kind="array")
        assert netlist_ge(booth.netlist) < 1.3 * netlist_ge(array.netlist)

    def test_delay_reported(self):
        assert netlist_delay_ps(booth_multiplier(8).netlist, 7) > 0


@settings(max_examples=10, deadline=None)
@given(width=st.sampled_from([2, 4, 6]))
def test_property_booth_matches_signed_semantics(width):
    mul = booth_multiplier(width)
    assert np.array_equal(mul.truth_table(), expected_products(width))
