"""Unit tests for the vectorised simulator."""

import numpy as np
import pytest

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import (
    CompiledNetlist,
    bus_to_uint,
    exhaustive_table,
    multiplier_truth_table,
    packed_input_patterns,
    simulate,
    unpack_cases,
)
from repro.errors import SimulationError


def xor_netlist() -> Netlist:
    nl = Netlist("xor")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate(GateKind.XOR, ("a", "b"), "y")
    nl.add_output("y")
    return nl


class TestPackedPatterns:
    def test_small_space_all_cases(self):
        patterns, n_cases, n_words = packed_input_patterns(3)
        assert n_cases == 8
        assert n_words == 1
        for i, pattern in enumerate(patterns):
            bits = unpack_cases(pattern, n_cases)
            expected = [(c >> i) & 1 for c in range(n_cases)]
            assert bits.astype(int).tolist() == expected

    def test_large_space_spot_checks(self):
        patterns, n_cases, n_words = packed_input_patterns(16)
        assert n_cases == 65536
        assert n_words == 1024
        for i in (0, 5, 6, 12, 15):
            bits = unpack_cases(patterns[i], n_cases)
            cases = np.arange(n_cases)
            assert np.array_equal(bits, ((cases >> i) & 1).astype(bool))

    def test_rejects_zero_bits(self):
        with pytest.raises(SimulationError):
            packed_input_patterns(0)

    def test_rejects_huge_spaces(self):
        with pytest.raises(SimulationError, match="refusing"):
            packed_input_patterns(27)


class TestCompiledNetlist:
    def test_bool_evaluation(self):
        nl = xor_netlist()
        out = simulate(
            nl,
            {
                "a": np.array([0, 0, 1, 1], dtype=bool),
                "b": np.array([0, 1, 0, 1], dtype=bool),
            },
        )
        assert out["y"].astype(int).tolist() == [0, 1, 1, 0]

    def test_uint64_evaluation(self):
        nl = xor_netlist()
        out = simulate(
            nl,
            {
                "a": np.array([0x0F], dtype=np.uint64),
                "b": np.array([0x33], dtype=np.uint64),
            },
        )
        assert out["y"][0] == 0x0F ^ 0x33

    def test_constant_wires(self):
        nl = Netlist("const")
        nl.add_input("a")
        nl.tie_constant("one", 1)
        nl.add_gate(GateKind.AND, ("a", "one"), "y")
        nl.add_output("y")
        out = simulate(nl, {"a": np.array([0, 1], dtype=bool)})
        assert out["y"].astype(int).tolist() == [0, 1]

    def test_constant_output_packed(self):
        nl = Netlist("const_out")
        nl.add_input("a")
        nl.tie_constant("one", 1)
        nl.add_gate(GateKind.BUF, ("a",), "y")
        nl.add_output("one")
        nl.add_output("y")
        out = simulate(nl, {"a": np.array([0x0], dtype=np.uint64)})
        assert out["one"][0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_input_passthrough_output(self):
        nl = Netlist("pass")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate(GateKind.AND, ("a", "b"), "y")
        nl.add_output("a")
        nl.add_output("y")
        out = simulate(
            nl,
            {"a": np.array([1, 0], dtype=bool), "b": np.array([1, 1], dtype=bool)},
        )
        assert out["a"].astype(int).tolist() == [1, 0]

    def test_missing_input_rejected(self):
        nl = xor_netlist()
        with pytest.raises(SimulationError, match="missing value"):
            simulate(nl, {"a": np.array([True])})

    def test_shape_mismatch_rejected(self):
        nl = xor_netlist()
        with pytest.raises(SimulationError, match="shape/dtype"):
            simulate(
                nl,
                {
                    "a": np.array([True, False]),
                    "b": np.array([True]),
                },
            )

    def test_bad_dtype_rejected(self):
        nl = xor_netlist()
        with pytest.raises(SimulationError, match="unsupported simulation dtype"):
            simulate(
                nl,
                {
                    "a": np.array([1], dtype=np.int32),
                    "b": np.array([0], dtype=np.int32),
                },
            )

    def test_compile_once_run_many(self):
        compiled = CompiledNetlist(xor_netlist())
        for _ in range(3):
            out = compiled.run(
                {
                    "a": np.array([True]),
                    "b": np.array([False]),
                }
            )
            assert bool(out["y"][0]) is True


class TestExhaustive:
    def test_exhaustive_xor(self):
        nl = xor_netlist()
        table = exhaustive_table(nl, [["a"], ["b"]])
        # case index = a + 2*b
        assert table["y"].astype(int).tolist() == [0, 1, 1, 0]

    def test_input_cover_check(self):
        nl = xor_netlist()
        with pytest.raises(SimulationError, match="cover every primary input"):
            exhaustive_table(nl, [["a"]])
        with pytest.raises(SimulationError, match="cover every primary input"):
            exhaustive_table(nl, [["a", "b", "a"]])

    def test_bus_to_uint_lsb_first(self):
        values = {
            "b0": np.array([1, 0], dtype=bool),
            "b1": np.array([0, 1], dtype=bool),
        }
        combined = bus_to_uint(values, ["b0", "b1"])
        assert combined.tolist() == [1, 2]

    def test_bus_to_uint_rejects_empty(self):
        with pytest.raises(SimulationError, match="empty bus"):
            bus_to_uint({}, [])

    def test_multiplier_truth_table_2x2(self):
        from repro.circuits.synthesis import array_multiplier

        mul = array_multiplier(2, 2)
        table = multiplier_truth_table(
            mul.netlist, mul.a_wires, mul.b_wires, mul.result_wires
        )
        for a in range(4):
            for b in range(4):
                assert table[a + (b << 2)] == a * b


class TestPopcountCases:
    def test_matches_unpack_mean(self):
        from repro.circuits.simulate import popcount_cases

        rng = np.random.default_rng(0)
        for n_bits in (3, 5, 6, 8, 12, 16):
            n_cases = 1 << n_bits
            n_words = max(1, n_cases // 64)
            packed = rng.integers(
                0, 1 << 63, size=n_words, dtype=np.uint64
            ) | (rng.integers(0, 2, size=n_words, dtype=np.uint64) << 63)
            count = popcount_cases(packed, n_cases)
            assert count == int(unpack_cases(packed, n_cases).sum())
            # division by the power-of-two case count is exact, so the
            # probability equals the bool-mean bit for bit
            assert count / n_cases == float(
                unpack_cases(packed, n_cases).mean()
            )

    def test_partial_word_masks_garbage(self):
        from repro.circuits.simulate import popcount_cases

        packed = np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount_cases(packed, 8) == 8

    def test_signal_probabilities_match_legacy(self):
        from repro.circuits.simulate import signal_probabilities
        from repro.circuits.synthesis import make_multiplier

        mul = make_multiplier(4, 4)
        probs = signal_probabilities(
            mul.netlist, [mul.a_wires, mul.b_wires]
        )
        compiled = CompiledNetlist(mul.netlist)
        patterns, n_cases, _ = packed_input_patterns(8)
        inputs = {
            wire: patterns[i]
            for i, wire in enumerate(
                list(mul.a_wires) + list(mul.b_wires)
            )
        }
        legacy = {
            wire: float(unpack_cases(value, n_cases).mean())
            for wire, value in compiled.run_all(inputs).items()
        }
        assert probs == legacy
