"""Property-based fuzzing of the netlist pipeline.

Random DAG netlists are generated from a seed and pushed through the
whole substrate: validation, simulation (packed and boolean paths must
agree), simplification (must preserve function), pruning (must keep
structural validity) and Verilog export (must produce legal text).
These are the invariants every higher layer silently relies on.
"""

from __future__ import annotations

import re

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import GATE_LIBRARY, GateKind
from repro.circuits.netlist import Netlist
from repro.circuits.simulate import (
    CompiledNetlist,
    bus_to_uint,
    exhaustive_table,
)
from repro.circuits.transform import prune_wires, simplify
from repro.circuits.verify import validate_netlist
from repro.circuits.verilog import to_verilog

_TWO_INPUT = [
    k for k in GateKind if GATE_LIBRARY[k].n_inputs == 2
]


def random_netlist(seed: int, n_inputs: int, n_gates: int) -> Netlist:
    """A random acyclic netlist over the full gate library."""
    rng = np.random.default_rng(seed)
    nl = Netlist(f"fuzz{seed}")
    wires = [nl.add_input(f"i{k}") for k in range(n_inputs)]
    if rng.random() < 0.5:
        constant = nl.fresh_wire("k")
        nl.tie_constant(constant, int(rng.integers(0, 2)))
        wires.append(constant)
    for g in range(n_gates):
        kind_index = int(rng.integers(0, len(GateKind)))
        kind = list(GateKind)[kind_index]
        arity = GATE_LIBRARY[kind].n_inputs
        ins = tuple(
            wires[int(rng.integers(0, len(wires)))] for _ in range(arity)
        )
        wires.append(nl.add_gate(kind, ins, f"w{g}"))
    # choose a handful of outputs from the most recent wires
    n_outputs = min(4, len(wires))
    for wire in wires[-n_outputs:]:
        nl.add_output(wire)
    return nl


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_inputs=st.integers(2, 8),
    n_gates=st.integers(1, 60),
)
def test_property_random_netlists_validate_and_simulate(seed, n_inputs, n_gates):
    nl = random_netlist(seed, n_inputs, n_gates)
    validate_netlist(nl)
    table = exhaustive_table(nl, [[f"i{k}" for k in range(n_inputs)]])
    for wire in nl.outputs:
        assert table[wire].shape == (1 << n_inputs,)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_inputs=st.integers(2, 6),
    n_gates=st.integers(1, 40),
)
def test_property_packed_and_bool_paths_agree(seed, n_inputs, n_gates):
    """uint64-packed simulation must equal naive boolean simulation."""
    nl = random_netlist(seed, n_inputs, n_gates)
    compiled = CompiledNetlist(nl)

    n_cases = 1 << n_inputs
    cases = np.arange(n_cases)
    bool_inputs = {
        f"i{k}": ((cases >> k) & 1).astype(bool) for k in range(n_inputs)
    }
    bool_out = compiled.run(bool_inputs)

    packed_out = exhaustive_table(nl, [[f"i{k}" for k in range(n_inputs)]])
    for wire in nl.outputs:
        assert np.array_equal(bool_out[wire], packed_out[wire]), wire


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_inputs=st.integers(2, 6),
    n_gates=st.integers(1, 40),
)
def test_property_simplify_preserves_function(seed, n_inputs, n_gates):
    nl = random_netlist(seed, n_inputs, n_gates)
    simplified = simplify(nl)
    validate_netlist(simplified)
    assert simplified.gate_count <= nl.gate_count

    buses = [[f"i{k}" for k in range(n_inputs)]]
    before = bus_to_uint(exhaustive_table(nl, buses), nl.outputs)
    after = bus_to_uint(
        exhaustive_table(simplified, buses), simplified.outputs
    )
    assert np.array_equal(before, after)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_gates=st.integers(5, 40),
    prune_seed=st.integers(0, 1000),
)
def test_property_pruning_random_netlists_stays_valid(seed, n_gates, prune_seed):
    nl = random_netlist(seed, 4, n_gates)
    rng = np.random.default_rng(prune_seed)
    victims = [w for w in nl.gates if rng.random() < 0.3]
    if not victims:
        return
    pruned = prune_wires(nl, {w: int(rng.integers(0, 2)) for w in victims})
    validate_netlist(pruned)
    assert len(pruned.outputs) == len(nl.outputs)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_gates=st.integers(1, 30),
)
def test_property_verilog_always_legal(seed, n_gates):
    nl = random_netlist(seed, 3, n_gates)
    text = to_verilog(nl)
    assert len(re.findall(r"^module ", text, flags=re.MULTILINE)) == 1
    assert text.rstrip().endswith("endmodule")
    for match in re.finditer(r"assign\s+([^\s=]+)\s*=", text):
        assert re.match(r"^[A-Za-z_][A-Za-z0-9_$]*$", match.group(1))
    # every output port is assigned exactly once
    for index in range(len(nl.outputs)):
        assert text.count(f"assign out{index} =") == 1
