"""Property suite: population-batched evaluation == per-genome reference.

The contract under test is total bit-identity: for every genome,
:class:`repro.circuits.batched.BatchedCircuitEvaluator` must reproduce
``prune_wires`` + ``CompiledNetlist`` simulation exactly — truth
tables, and the gate-equivalent area of the pruned-and-simplified
netlist — across random genomes, the empty genome, all-ties, and
degenerate population shapes.
"""

import itertools

import numpy as np
import pytest

from repro.approx.pruning import PruningSpace
from repro.circuits.area import netlist_ge
from repro.circuits.batched import BatchedCircuitEvaluator
from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.simulate import CompiledNetlist
from repro.circuits.synthesis import ArithmeticCircuit, make_multiplier
from repro.circuits.transform import prune_wires, simplify
from repro.errors import NetlistError, SimulationError


def reference_objectives(space, genome):
    """The per-genome prune-then-simulate reference."""
    circuit = space.apply(genome)
    return circuit.truth_table(), netlist_ge(circuit.netlist)


def make_evaluator(circuit, max_candidates=48):
    space = PruningSpace(circuit, max_candidates=max_candidates)
    return space, BatchedCircuitEvaluator(circuit, space.tie_candidates())


class TestAgainstReference:
    @pytest.mark.parametrize("kind", ["wallace", "dadda", "array"])
    def test_random_population_6x6(self, kind):
        space, evaluator = make_evaluator(make_multiplier(6, 6, kind=kind))
        rng = np.random.default_rng(3)
        genomes = [space.random_genome(rng) for _ in range(16)]
        tables, areas = evaluator.evaluate(genomes)
        for i, genome in enumerate(genomes):
            ref_table, ref_ge = reference_objectives(space, genome)
            assert np.array_equal(tables[i].astype(np.uint64), ref_table)
            if any(genome):
                assert float(areas[i]) == ref_ge

    def test_random_population_8x8(self):
        space, evaluator = make_evaluator(
            make_multiplier(8, 8), max_candidates=96
        )
        rng = np.random.default_rng(11)
        genomes = [space.random_genome(rng) for _ in range(10)]
        tables, areas = evaluator.evaluate(genomes)
        for i, genome in enumerate(genomes):
            ref_table, ref_ge = reference_objectives(space, genome)
            assert np.array_equal(tables[i].astype(np.uint64), ref_table)
            if any(genome):
                assert float(areas[i]) == ref_ge

    def test_empty_genome(self):
        space, evaluator = make_evaluator(make_multiplier(6, 6))
        empty = tuple([0] * space.genome_length)
        tables = evaluator.truth_tables([empty])
        assert np.array_equal(tables[0], space.circuit.truth_table())
        # PruningSpace.apply returns the unsimplified base for the
        # empty genome; the engine carries its area separately and the
        # sweep returns the simplified base's area
        assert evaluator.base_area_ge == netlist_ge(space.circuit.netlist)
        swept = float(evaluator.area_ge([empty])[0])
        assert swept == netlist_ge(
            simplify(space.circuit.netlist.copy())
        )

    def test_all_ties_genome(self):
        space, evaluator = make_evaluator(make_multiplier(6, 6))
        full = tuple([1] * space.genome_length)
        tables, areas = evaluator.evaluate([full])
        ref_table, ref_ge = reference_objectives(space, full)
        assert np.array_equal(tables[0].astype(np.uint64), ref_table)
        assert float(areas[0]) == ref_ge

    def test_single_member_population(self):
        space, evaluator = make_evaluator(make_multiplier(6, 6))
        rng = np.random.default_rng(5)
        genome = space.random_genome(rng, density=0.2)
        tables, areas = evaluator.evaluate([genome])
        assert tables.shape[0] == 1
        ref_table, ref_ge = reference_objectives(space, genome)
        assert np.array_equal(tables[0].astype(np.uint64), ref_table)
        assert float(areas[0]) == ref_ge

    def test_duplicate_genomes_get_identical_rows(self):
        space, evaluator = make_evaluator(make_multiplier(6, 6))
        rng = np.random.default_rng(8)
        genome = space.random_genome(rng, density=0.25)
        tables, areas = evaluator.evaluate([genome, genome, genome])
        assert np.array_equal(tables[0], tables[1])
        assert np.array_equal(tables[0], tables[2])
        assert areas[0] == areas[1] == areas[2]

    def test_population_rows_independent_of_batch(self):
        """Evaluating together == evaluating alone, row for row."""
        space, evaluator = make_evaluator(make_multiplier(6, 6))
        rng = np.random.default_rng(13)
        genomes = [space.random_genome(rng) for _ in range(6)]
        tables, areas = evaluator.evaluate(genomes)
        for i, genome in enumerate(genomes):
            solo_tables, solo_areas = evaluator.evaluate([genome])
            assert np.array_equal(tables[i], solo_tables[0])
            assert areas[i] == solo_areas[0]

    def test_truncated_base(self):
        """The hybrid flow prunes an input-truncated base circuit."""
        from repro.approx.precision import truncate_inputs

        base = truncate_inputs(make_multiplier(8, 8), 1, 1)
        space, evaluator = make_evaluator(base, max_candidates=96)
        rng = np.random.default_rng(21)
        genomes = [space.random_genome(rng) for _ in range(8)]
        tables, areas = evaluator.evaluate(genomes)
        for i, genome in enumerate(genomes):
            ref_table, ref_ge = reference_objectives(space, genome)
            assert np.array_equal(tables[i].astype(np.uint64), ref_table)
            if any(genome):
                assert float(areas[i]) == ref_ge


class TestMuxAndRewrites:
    """Gate-algebra coverage beyond what multiplier netlists contain."""

    def build_mux_circuit(self):
        nl = Netlist("muxy")
        a = declare_input_bus(nl, "a", 3)
        b = declare_input_bus(nl, "b", 3)
        nl.add_gate(GateKind.AND, (a[0], b[0]), "w1")
        nl.add_gate(GateKind.MUX, ("w1", a[1], b[1]), "w2")
        nl.add_gate(GateKind.MUX, (a[2], a[2], "w2"), "w3")
        nl.add_gate(GateKind.XOR, ("w2", "w3"), "w4")
        nl.add_gate(GateKind.MUX, ("w4", b[2], "w1"), "w5")
        nl.add_gate(GateKind.NAND, ("w5", "w3"), "w6")
        nl.add_gate(GateKind.NOR, ("w6", "w4"), "w7")
        nl.add_gate(GateKind.BUF, ("w4",), "w8")
        nl.add_gate(GateKind.XNOR, ("w8", "w5"), "w9")
        for wire in ("w5", "w6", "w7", "w9"):
            nl.add_output(wire)
        return nl, ArithmeticCircuit(
            nl, tuple(a), tuple(b), tuple(nl.outputs)
        )

    def test_exhaustive_mux_genomes(self):
        netlist, circuit = self.build_mux_circuit()
        candidates = [
            (wire, const)
            for wire in ("w1", "w2", "w3", "w4")
            for const in (0, 1)
        ]
        evaluator = BatchedCircuitEvaluator(circuit, candidates)
        genomes = list(itertools.product((0, 1), repeat=len(candidates)))
        tables, areas = evaluator.evaluate(genomes)
        for i, genome in enumerate(genomes):
            assignments = {}
            for (wire, const), bit in zip(candidates, genome):
                if bit:
                    assignments[wire] = const
            if not assignments:
                continue
            pruned = prune_wires(netlist, assignments)
            reference = ArithmeticCircuit(
                pruned,
                circuit.a_wires,
                circuit.b_wires,
                tuple(pruned.outputs),
            )
            assert np.array_equal(
                tables[i].astype(np.uint64), reference.truth_table()
            )
            assert float(areas[i]) == netlist_ge(pruned)


class TestApiContracts:
    def test_truth_tables_are_uint64(self):
        space, evaluator = make_evaluator(make_multiplier(4, 4))
        genome = tuple(
            1 if i == 0 else 0 for i in range(space.genome_length)
        )
        tables = evaluator.truth_tables([genome])
        assert tables.dtype == np.uint64

    def test_evaluate_tables_match_truth_tables(self):
        space, evaluator = make_evaluator(make_multiplier(4, 4))
        rng = np.random.default_rng(0)
        genomes = [space.random_genome(rng) for _ in range(4)]
        narrow, _areas = evaluator.evaluate(genomes)
        assert np.array_equal(
            narrow.astype(np.uint64), evaluator.truth_tables(genomes)
        )

    def test_empty_population(self):
        space, evaluator = make_evaluator(make_multiplier(4, 4))
        tables, areas = evaluator.evaluate([])
        assert tables.shape == (0, evaluator.n_cases)
        assert areas.shape == (0,)
        # empty shards carry the same narrow dtype as populated ones
        genome = tuple([0] * space.genome_length)
        assert tables.dtype == evaluator.evaluate([genome])[0].dtype
        assert tables.dtype == evaluator.table_dtype

    def test_genome_length_checked(self):
        space, evaluator = make_evaluator(make_multiplier(4, 4))
        with pytest.raises(SimulationError, match="genome length"):
            evaluator.evaluate([(1, 0)])

    def test_non_gate_candidate_rejected(self):
        circuit = make_multiplier(4, 4)
        with pytest.raises(NetlistError, match="not a gate output"):
            BatchedCircuitEvaluator(circuit, [("a0", 0)])

    def test_bad_constant_rejected(self):
        circuit = make_multiplier(4, 4)
        wire = next(iter(circuit.netlist.gates))
        with pytest.raises(NetlistError, match="must be 0/1"):
            BatchedCircuitEvaluator(circuit, [(wire, 2)])


class TestCompiledNetlistHooks:
    def test_program_matches_topological_order(self):
        circuit = make_multiplier(4, 4)
        compiled = CompiledNetlist(circuit.netlist)
        program_wires = []
        slot_to_wire = {
            compiled.slot_of(w): w for w in circuit.netlist.gates
        }
        for _evaluate, out_slot, _ins in compiled.program:
            program_wires.append(slot_to_wire[out_slot])
        assert program_wires == circuit.netlist.topological_order()

    def test_slot_maps_cover_interface(self):
        circuit = make_multiplier(4, 4)
        compiled = CompiledNetlist(circuit.netlist)
        assert [w for w, _ in compiled.input_slots] == list(
            circuit.netlist.inputs
        )
        assert [w for w, _ in compiled.output_slots] == list(
            circuit.netlist.outputs
        )
        for wire, slot in compiled.input_slots:
            assert compiled.slot_of(wire) == slot
