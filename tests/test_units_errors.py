"""Unit tests for the units module and error hierarchy."""

import pytest

from repro import errors, units


class TestAreaConversions:
    def test_um2_mm2_round_trip(self):
        assert units.mm2_to_um2(units.um2_to_mm2(123.0)) == pytest.approx(123.0)

    def test_known_values(self):
        assert units.um2_to_mm2(1_000_000.0) == 1.0
        assert units.cm2_to_mm2(1.0) == 100.0
        assert units.mm2_to_cm2(100.0) == 1.0


class TestCarbonConversions:
    def test_kg_g(self):
        assert units.kg_to_g(2.5) == 2500.0
        assert units.g_to_kg(2500.0) == 2.5

    def test_cfpa_conversion(self):
        # 1 kg/cm^2 == 10 g/mm^2
        assert units.kg_per_cm2_to_g_per_mm2(1.0) == pytest.approx(10.0)


class TestEnergyConversions:
    def test_kwh_j_round_trip(self):
        assert units.j_to_kwh(units.kwh_to_j(3.7)) == pytest.approx(3.7)

    def test_one_kwh(self):
        assert units.kwh_to_j(1.0) == 3.6e6


class TestFrequency:
    def test_ghz_mhz(self):
        assert units.ghz_to_hz(1.2) == pytest.approx(1.2e9)
        assert units.mhz_to_hz(500.0) == pytest.approx(5e8)

    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(1e9, 1e9) == 1.0

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(100, 0.0)


class TestCapacity:
    def test_kib_round_trip(self):
        assert units.bytes_to_kib(units.kib_to_bytes(128)) == pytest.approx(128)

    def test_kib_bytes(self):
        assert units.kib_to_bytes(1) == 1024


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.MappingError("boom")

    def test_distinct_types(self):
        assert not issubclass(errors.MappingError, errors.CarbonModelError)
