"""Unit tests for the NSGA-II engine on analytic problems."""

import numpy as np
import pytest

from repro.approx.nsga2 import (
    Nsga2,
    Nsga2Config,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    pareto_front,
)
from repro.errors import OptimizationError


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_no_self_dominance(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))


class TestSorting:
    def test_fronts(self):
        objectives = [
            (1.0, 4.0),  # front 0
            (2.0, 2.0),  # front 0
            (4.0, 1.0),  # front 0
            (3.0, 3.0),  # front 1 (dominated by (2,2))
            (5.0, 5.0),  # front 2
        ]
        fronts = fast_non_dominated_sort(objectives)
        assert fronts[0] == [0, 1, 2]
        assert fronts[1] == [3]
        assert fronts[2] == [4]

    def test_single_point(self):
        assert fast_non_dominated_sort([(0.0,)]) == [[0]]

    def test_crowding_extremes_infinite(self):
        objectives = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)]
        crowd = crowding_distance(objectives, [0, 1, 2])
        assert crowd[0] == float("inf")
        assert crowd[2] == float("inf")
        assert np.isfinite(crowd[1])

    def test_crowding_small_front(self):
        crowd = crowding_distance([(1.0, 2.0), (2.0, 1.0)], [0, 1])
        assert crowd[0] == crowd[1] == float("inf")


class TestParetoFront:
    def test_filters_dominated(self):
        points = [("a", (1.0, 3.0)), ("b", (2.0, 2.0)), ("c", (2.5, 2.5))]
        front = pareto_front(points)
        assert [name for name, _ in front] == ["a", "b"]

    def test_deduplicates_objectives(self):
        points = [("a", (1.0, 1.0)), ("b", (1.0, 1.0))]
        front = pareto_front(points)
        assert len(front) == 1
        assert front[0][0] == "a"


class TestConfig:
    def test_odd_population_rejected(self):
        with pytest.raises(OptimizationError, match="even"):
            Nsga2Config(population_size=7)

    def test_tiny_population_rejected(self):
        with pytest.raises(OptimizationError, match=">= 4"):
            Nsga2Config(population_size=2)

    def test_bad_rates_rejected(self):
        with pytest.raises(OptimizationError):
            Nsga2Config(generations=0)
        with pytest.raises(OptimizationError):
            Nsga2Config(crossover_rate=1.5)


def binary_knapsack_problem():
    """Minimise (-value, weight) over 12-bit selections."""
    rng = np.random.default_rng(42)
    values = rng.integers(1, 20, size=12)
    weights = rng.integers(1, 20, size=12)

    def evaluate(genome):
        mask = np.array(genome, dtype=bool)
        return (-float(values[mask].sum()), float(weights[mask].sum()))

    def random_genome(rng_):
        return tuple(int(b) for b in rng_.integers(0, 2, size=12))

    return evaluate, random_genome


class TestSearch:
    def test_deterministic_runs(self):
        evaluate, random_genome = binary_knapsack_problem()
        cfg = Nsga2Config(population_size=16, generations=10, seed=3)
        front1 = Nsga2(evaluate, random_genome, cfg).run()
        front2 = Nsga2(evaluate, random_genome, cfg).run()
        assert front1 == front2

    def test_different_seeds_usually_differ(self):
        evaluate, random_genome = binary_knapsack_problem()
        f1 = Nsga2(evaluate, random_genome, Nsga2Config(seed=1, generations=5)).run()
        f2 = Nsga2(evaluate, random_genome, Nsga2Config(seed=2, generations=5)).run()
        # fronts could coincide in principle, but for this problem they don't
        assert f1 != f2

    def test_front_is_mutually_nondominated(self):
        evaluate, random_genome = binary_knapsack_problem()
        front = Nsga2(
            evaluate, random_genome, Nsga2Config(population_size=20, generations=15)
        ).run()
        for _, a in front:
            for _, b in front:
                assert not dominates(a, b)

    def test_search_beats_random_sampling(self):
        """NSGA-II front should dominate most random samples."""
        evaluate, random_genome = binary_knapsack_problem()
        front = Nsga2(
            evaluate, random_genome, Nsga2Config(population_size=24, generations=20)
        ).run()
        rng = np.random.default_rng(99)
        dominated_count = 0
        trials = 50
        for _ in range(trials):
            sample = evaluate(random_genome(rng))
            if any(dominates(obj, sample) for _, obj in front):
                dominated_count += 1
        assert dominated_count > trials * 0.5

    def test_memoisation_counts_unique_evaluations(self):
        evaluate, random_genome = binary_knapsack_problem()
        search = Nsga2(
            evaluate, random_genome, Nsga2Config(population_size=8, generations=6)
        )
        search.run()
        # at most pop * (gens + 1) unique genomes
        assert search.evaluations <= 8 * 7

    def test_extreme_points_found(self):
        """The empty selection (0 weight) should be on the front."""
        evaluate, random_genome = binary_knapsack_problem()
        front = Nsga2(
            evaluate, random_genome, Nsga2Config(population_size=24, generations=25)
        ).run()
        weights = [obj[1] for _, obj in front]
        assert min(weights) == 0.0
