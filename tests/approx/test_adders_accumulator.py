"""Unit tests for approximate adders and the accumulator analysis."""

import numpy as np
import pytest

from repro.accuracy.accumulator import (
    accumulator_drop_percent,
    characterize_loa_accumulator,
    iso_area_comparison,
)
from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.adders import loa_adder, truncated_adder
from repro.approx.library import build_library
from repro.approx.metrics import compute_error_metrics, exact_sums
from repro.circuits.area import netlist_ge
from repro.circuits.simulate import bus_to_uint, exhaustive_table
from repro.circuits.synthesis import ripple_carry_adder
from repro.circuits.verify import validate_netlist
from repro.errors import AccuracyModelError, SynthesisError

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


def adder_table(circuit) -> np.ndarray:
    outputs = exhaustive_table(circuit.netlist, [circuit.a_wires, circuit.b_wires])
    return bus_to_uint(outputs, list(circuit.result_wires)).astype(np.int64)


class TestLoaAdder:
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_valid_and_smaller(self, k):
        circuit = loa_adder(8, k)
        validate_netlist(circuit.netlist)
        assert netlist_ge(circuit.netlist) < netlist_ge(
            ripple_carry_adder(8).netlist
        )

    def test_high_bits_exact(self):
        """With zero low operand bits, the LOA adder is exact."""
        table = adder_table(loa_adder(8, 3))
        exact = exact_sums(8, 8)
        for a in (0, 8, 64, 248):
            for b in (0, 16, 128, 240):
                index = a + (b << 8)
                assert table[index] == exact[index]

    def test_error_grows_with_k(self):
        meds = []
        for k in (1, 3, 5, 7):
            metrics = compute_error_metrics(
                adder_table(loa_adder(8, k)), 8, 8, reference=exact_sums(8, 8)
            )
            meds.append(metrics.med)
        assert meds == sorted(meds)

    def test_bridge_carry_catches_common_case(self):
        """LOA must beat plain truncation at equal k."""
        for k in (2, 4, 6):
            loa = compute_error_metrics(
                adder_table(loa_adder(8, k)), 8, 8, reference=exact_sums(8, 8)
            )
            trunc = compute_error_metrics(
                adder_table(truncated_adder(8, k)), 8, 8,
                reference=exact_sums(8, 8),
            )
            assert loa.med < trunc.med

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            loa_adder(8, 0)
        with pytest.raises(SynthesisError):
            loa_adder(8, 8)
        with pytest.raises(SynthesisError):
            truncated_adder(8, 9)


class TestTruncatedAdder:
    def test_low_bits_constant_one(self):
        table = adder_table(truncated_adder(8, 3))
        assert np.all(table & 0b111 == 0b111)

    def test_zero_bias_by_construction(self):
        """Midpoint forcing roughly centres the error."""
        metrics = compute_error_metrics(
            adder_table(truncated_adder(8, 4)), 8, 8, reference=exact_sums(8, 8)
        )
        assert abs(metrics.bias) < 1.0


class TestAccumulatorAnalysis:
    def test_characterisation_cached_and_sane(self):
        ch = characterize_loa_accumulator(4)
        assert ch.area_saving_ge > 0
        assert ch.per_add_std > 0
        assert characterize_loa_accumulator(4) is ch

    def test_invalid_bits(self):
        with pytest.raises(AccuracyModelError):
            characterize_loa_accumulator(0)
        with pytest.raises(AccuracyModelError):
            characterize_loa_accumulator(8)

    def test_drop_grows_with_bits(self):
        drops = [
            accumulator_drop_percent("vgg16", k) for k in (2, 4, 6)
        ]
        assert drops == sorted(drops)
        assert drops[0] > 0

    def test_deeper_network_larger_drop(self):
        assert accumulator_drop_percent(
            "resnet152", 4
        ) > accumulator_drop_percent("resnet50", 4)

    def test_iso_area_multiplier_wins(self):
        """At matched area savings, approximating the multiplier costs
        less accuracy than approximating the accumulator — the paper's
        implicit design choice, quantified.  Uses the structural
        candidates, which populate the low-error/low-saving regime."""
        library = build_library(
            width=8, seed=0, population=12, generations=5,
            hybrid=False, structural=True,
        )
        predictor = AccuracyPredictor()
        comparison = iso_area_comparison("vgg16", 6, library, predictor)
        assert (
            comparison["multiplier_drop_percent"]
            < comparison["accumulator_drop_percent"]
        )
        # and the multiplier side has far more total headroom
        max_mult_saving = library.exact.area_ge - min(
            m.area_ge for m in library
        )
        assert max_mult_saving > 5 * comparison["area_saving_ge"]
