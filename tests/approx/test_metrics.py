"""Unit and property tests for exhaustive error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.metrics import (
    compute_error_metrics,
    exact_products,
    gaussian_operand_distribution,
)
from repro.errors import SimulationError


class TestExactProducts:
    def test_small_table(self):
        table = exact_products(2, 2)
        assert table[1 + (3 << 2)] == 3
        assert table[3 + (3 << 2)] == 9
        assert table[0] == 0

    def test_shape(self):
        assert exact_products(8, 8).shape == (65536,)


class TestMetricsOnExact:
    def test_exact_multiplier_all_zero(self):
        table = exact_products(4, 4)
        metrics = compute_error_metrics(table, 4, 4)
        assert metrics.is_exact
        assert metrics.error_rate == 0.0
        assert metrics.med == 0.0
        assert metrics.nmed == 0.0
        assert metrics.mred == 0.0
        assert metrics.wce == 0
        assert metrics.bias == 0.0


class TestMetricsOnKnownError:
    def test_constant_offset(self):
        """Adding +1 to every product: ER=1, MED=1, bias=+1."""
        table = exact_products(3, 3) + 1
        metrics = compute_error_metrics(table, 3, 3)
        assert metrics.error_rate == 1.0
        assert metrics.med == 1.0
        assert metrics.bias == 1.0
        assert metrics.wce == 1
        assert metrics.mse == 1.0
        assert metrics.variance == pytest.approx(0.0)

    def test_single_corrupted_entry(self):
        table = exact_products(2, 2).copy()
        table[5] += 4  # a=1, b=1
        metrics = compute_error_metrics(table, 2, 2)
        assert metrics.error_rate == pytest.approx(1 / 16)
        assert metrics.med == pytest.approx(4 / 16)
        assert metrics.wce == 4
        # max product for 2x2 is 9
        assert metrics.nmed == pytest.approx((4 / 16) / 9)

    def test_negative_bias(self):
        table = exact_products(2, 2) - 2
        metrics = compute_error_metrics(table, 2, 2)
        assert metrics.bias == -2.0
        assert metrics.med == 2.0

    def test_mred_uses_max_exact_one(self):
        """Relative error at exact==0 divides by 1, not 0."""
        table = exact_products(2, 2).copy()
        table[0] = 3  # a=0,b=0: exact 0
        metrics = compute_error_metrics(table, 2, 2)
        assert np.isfinite(metrics.mred)
        assert metrics.mred == pytest.approx(3 / 16)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="expected"):
            compute_error_metrics(np.zeros(10), 2, 2)


class TestWeightedMetrics:
    def test_weighting_changes_metrics(self):
        table = exact_products(4, 4).copy()
        # corrupt only the largest operand pair
        table[-1] += 50
        uniform = compute_error_metrics(table, 4, 4)
        low = gaussian_operand_distribution(4, sigma_fraction=0.1)
        weighted = compute_error_metrics(
            table, 4, 4, a_probabilities=low, b_probabilities=low
        )
        # error lives at large operands, which the DNN distribution rarely
        # produces -> weighted MED far below uniform MED
        assert weighted.med < uniform.med / 10

    def test_point_mass_weights(self):
        table = exact_products(2, 2).copy()
        table[2 + (3 << 2)] += 7  # a=2, b=3
        a_p = np.zeros(4)
        a_p[2] = 1.0
        b_p = np.zeros(4)
        b_p[3] = 1.0
        metrics = compute_error_metrics(
            table, 2, 2, a_probabilities=a_p, b_probabilities=b_p
        )
        assert metrics.med == 7.0
        assert metrics.error_rate == 1.0

    def test_invalid_weights_rejected(self):
        table = exact_products(2, 2)
        with pytest.raises(SimulationError, match="shape"):
            compute_error_metrics(table, 2, 2, a_probabilities=np.ones(3))
        with pytest.raises(SimulationError, match="negative"):
            compute_error_metrics(
                table, 2, 2, a_probabilities=np.array([1, -1, 1, 1.0])
            )
        with pytest.raises(SimulationError, match="positive"):
            compute_error_metrics(
                table, 2, 2, a_probabilities=np.zeros(4)
            )


class TestGaussianDistribution:
    def test_normalised(self):
        p = gaussian_operand_distribution(8)
        assert p.sum() == pytest.approx(1.0)
        assert p.shape == (256,)

    def test_monotone_decreasing(self):
        p = gaussian_operand_distribution(8)
        assert np.all(np.diff(p) <= 1e-15)

    def test_sigma_controls_concentration(self):
        narrow = gaussian_operand_distribution(8, sigma_fraction=0.05)
        wide = gaussian_operand_distribution(8, sigma_fraction=0.5)
        assert narrow[0] > wide[0]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    scale=st.integers(1, 20),
)
def test_property_metric_consistency(seed, scale):
    """For random corruptions: MED <= WCE, MSE >= MED^2, variance >= 0."""
    rng = np.random.default_rng(seed)
    table = exact_products(4, 4) + rng.integers(-scale, scale + 1, size=256)
    metrics = compute_error_metrics(table, 4, 4)
    assert metrics.med <= metrics.wce
    assert metrics.mse >= metrics.med**2 - 1e-9
    assert metrics.variance >= -1e-9
    assert 0.0 <= metrics.error_rate <= 1.0
    assert abs(metrics.bias) <= metrics.med + 1e-12


class TestMemoisedTables:
    def test_exact_products_cached_and_read_only(self):
        first = exact_products(8, 8)
        second = exact_products(8, 8)
        assert first is second
        with pytest.raises(ValueError):
            first[0] = 1

    def test_exact_sums_cached_and_read_only(self):
        from repro.approx.metrics import exact_sums

        first = exact_sums(4, 4)
        assert first is exact_sums(4, 4)
        with pytest.raises(ValueError):
            first[0] = 1

    def test_uniform_weights_cached_and_consistent(self):
        from repro.approx.metrics import uniform_case_weights

        weights = uniform_case_weights(8, 8)
        assert weights is uniform_case_weights(8, 8)
        assert weights.shape == (65536,)
        assert float(weights.sum()) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            weights[0] = 0.0

    def test_metrics_unchanged_by_memoisation(self):
        """Weighted and unweighted paths still agree with a hand calc."""
        table = exact_products(2, 2) + 1
        metrics = compute_error_metrics(table, 2, 2)
        assert metrics.med == 1.0
        assert metrics.error_rate == 1.0
