"""Unit tests for structural approximate multipliers."""

import numpy as np
import pytest

from repro.approx.library import build_library
from repro.approx.metrics import compute_error_metrics, exact_products
from repro.approx.structural import (
    _dropped_expectation,
    loa_multiplier,
    truncated_pp_multiplier,
)
from repro.circuits.area import netlist_ge
from repro.circuits.synthesis import make_multiplier
from repro.circuits.verify import validate_netlist
from repro.errors import SynthesisError


class TestTruncatedPP:
    @pytest.mark.parametrize("cut", [2, 4, 6, 8])
    def test_valid_and_smaller(self, cut):
        circuit = truncated_pp_multiplier(8, cut)
        validate_netlist(circuit.netlist)
        exact = make_multiplier(8, 8, kind="wallace")
        assert netlist_ge(circuit.netlist) < netlist_ge(exact.netlist)

    def test_area_shrinks_with_cut(self):
        areas = [
            netlist_ge(truncated_pp_multiplier(8, cut).netlist)
            for cut in (2, 4, 6, 8)
        ]
        assert areas == sorted(areas, reverse=True)

    def test_error_grows_with_cut(self):
        nmeds = [
            compute_error_metrics(
                truncated_pp_multiplier(8, cut).truth_table(), 8, 8
            ).nmed
            for cut in (2, 4, 6, 8)
        ]
        assert nmeds == sorted(nmeds)

    def test_correction_centres_error(self):
        """Constant correction shrinks |bias| dramatically."""
        corrected = compute_error_metrics(
            truncated_pp_multiplier(8, 6, correction=True).truth_table(), 8, 8
        )
        raw = compute_error_metrics(
            truncated_pp_multiplier(8, 6, correction=False).truth_table(), 8, 8
        )
        assert abs(corrected.bias) < abs(raw.bias) / 10

    def test_dropped_expectation_formula(self):
        # columns 0..1 of an 8x8: heights 1 and 2 -> E = (1 + 2*2)*0.25
        assert _dropped_expectation(8, 2) == round((1 * 1 + 2 * 2) * 0.25)

    def test_exact_on_high_inputs(self):
        """Errors only come from dropped low columns: products of
        operands with zero low bits are exact."""
        circuit = truncated_pp_multiplier(8, 4, correction=False)
        table = circuit.truth_table()
        exact = exact_products(8, 8)
        for a in (0, 16, 128, 240):
            for b in (0, 16, 128, 240):
                index = a + (b << 8)
                assert table[index] == exact[index], (a, b)

    def test_invalid_cut(self):
        with pytest.raises(SynthesisError):
            truncated_pp_multiplier(8, 0)
        with pytest.raises(SynthesisError):
            truncated_pp_multiplier(8, 16)


class TestLoa:
    @pytest.mark.parametrize("k", [2, 4, 6, 8])
    def test_valid_and_smaller(self, k):
        circuit = loa_multiplier(8, k)
        validate_netlist(circuit.netlist)
        exact = make_multiplier(8, 8, kind="wallace")
        assert netlist_ge(circuit.netlist) < netlist_ge(exact.netlist)

    def test_error_grows_with_k(self):
        nmeds = [
            compute_error_metrics(loa_multiplier(8, k).truth_table(), 8, 8).nmed
            for k in (2, 4, 6, 8)
        ]
        assert nmeds == sorted(nmeds)

    def test_lower_error_than_truncation_at_same_k(self):
        """OR folding keeps information truncation throws away."""
        for k in (4, 6):
            loa = compute_error_metrics(loa_multiplier(8, k).truth_table(), 8, 8)
            tpp = compute_error_metrics(
                truncated_pp_multiplier(8, k, correction=False).truth_table(),
                8,
                8,
            )
            assert loa.nmed < tpp.nmed

    def test_single_pp_columns_exact(self):
        """Column 0 has one product: OR fold of one wire is exact."""
        circuit = loa_multiplier(8, 1)
        table = circuit.truth_table()
        assert np.array_equal(table, exact_products(8, 8))

    def test_invalid_k(self):
        with pytest.raises(SynthesisError):
            loa_multiplier(8, 0)


class TestLibraryIntegration:
    def test_structural_entries_in_default_library(self):
        library = build_library(
            population=12, generations=5, hybrid=False, structural=True
        )
        origins = {m.origin for m in library}
        assert "structural" in origins

    def test_structural_flag_off(self):
        library = build_library(
            population=12, generations=5, hybrid=False, structural=False
        )
        origins = {m.origin for m in library}
        assert "structural" not in origins
