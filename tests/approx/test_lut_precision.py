"""Unit tests for LUT multipliers and precision scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.lut import LutMultiplier
from repro.approx.precision import precision_scaled_multiplier, truncate_inputs
from repro.circuits.area import netlist_ge
from repro.circuits.synthesis import make_multiplier
from repro.circuits.verify import validate_netlist
from repro.errors import SimulationError, SynthesisError


class TestLutMultiplier:
    def test_exact_lut(self):
        lut = LutMultiplier.exact(8, 8)
        a = np.array([0, 1, 200, 255])
        b = np.array([0, 255, 3, 255])
        assert np.array_equal(lut.product(a, b), a * b)

    def test_signed_product_signs(self):
        lut = LutMultiplier.exact(8, 8)
        a = np.array([-5, 5, -5, 5, 0])
        b = np.array([-7, -7, 7, 7, -3])
        assert lut.signed_product(a, b).tolist() == [35, -35, -35, 35, 0]

    def test_signed_saturates_int8_min(self):
        lut = LutMultiplier.exact(8, 8)
        out = lut.signed_product(np.array([-128]), np.array([1]))
        assert out[0] == -127  # |-128| saturated to 127

    def test_call_is_signed(self):
        lut = LutMultiplier.exact(8, 8)
        assert lut(np.array([-2]), np.array([3]))[0] == -6

    def test_wrong_table_size_rejected(self):
        with pytest.raises(SimulationError, match="entries"):
            LutMultiplier(np.zeros(100), 8, 8)

    def test_shape_mismatch_rejected(self):
        lut = LutMultiplier.exact(4, 4)
        with pytest.raises(SimulationError, match="shapes differ"):
            lut.product(np.array([1, 2]), np.array([1, 2, 3]))

    def test_broadcasting_supported(self):
        lut = LutMultiplier.exact(4, 4)
        a = np.array([[1], [2]])  # (2, 1)
        b = np.array([[3, 4]])  # (1, 2)
        assert np.array_equal(lut.product(a, b), a * b)

    def test_out_of_range_rejected(self):
        lut = LutMultiplier.exact(4, 4)
        with pytest.raises(SimulationError, match="out of range"):
            lut.product(np.array([16]), np.array([0]))

    def test_multidimensional_operands(self):
        lut = LutMultiplier.exact(8, 8)
        a = np.arange(12).reshape(3, 4)
        b = np.full((3, 4), 7)
        assert np.array_equal(lut.product(a, b), a * b)


class TestPrecisionScaling:
    @pytest.mark.parametrize("trunc_a,trunc_b", [(1, 0), (0, 1), (2, 2), (4, 4)])
    def test_function_matches_truncated_multiply(self, trunc_a, trunc_b):
        circuit = precision_scaled_multiplier(8, trunc_a, trunc_b)
        validate_netlist(circuit.netlist)
        table = circuit.truth_table()
        cases = np.arange(65536)
        a = cases & 0xFF
        b = cases >> 8
        expected = (a & ~((1 << trunc_a) - 1)) * (b & ~((1 << trunc_b) - 1))
        assert np.array_equal(table, expected)

    def test_area_shrinks_with_truncation(self):
        exact = precision_scaled_multiplier(8, 0, 0)
        t22 = precision_scaled_multiplier(8, 2, 2)
        t44 = precision_scaled_multiplier(8, 4, 4)
        assert netlist_ge(t44.netlist) < netlist_ge(t22.netlist) < netlist_ge(exact.netlist)

    def test_interface_preserved(self):
        circuit = precision_scaled_multiplier(8, 3, 3)
        assert len(circuit.netlist.inputs) == 16
        assert len(circuit.result_wires) == 16

    def test_zero_truncation_returns_original(self):
        base = make_multiplier(8, 8)
        assert truncate_inputs(base, 0, 0) is base

    def test_negative_truncation_rejected(self):
        base = make_multiplier(8, 8)
        with pytest.raises(SynthesisError, match="non-negative"):
            truncate_inputs(base, -1, 0)

    def test_full_truncation_rejected(self):
        base = make_multiplier(8, 8)
        with pytest.raises(SynthesisError, match="cannot truncate"):
            truncate_inputs(base, 8, 0)

    @pytest.mark.parametrize("kind", ["array", "wallace", "dadda"])
    def test_all_base_kinds(self, kind):
        circuit = precision_scaled_multiplier(8, 1, 1, kind=kind)
        table = circuit.truth_table()
        cases = np.arange(65536)
        a = (cases & 0xFF) & ~1
        b = (cases >> 8) & ~1
        assert np.array_equal(table, a * b)


@settings(max_examples=20, deadline=None)
@given(
    trunc_a=st.integers(0, 3),
    trunc_b=st.integers(0, 3),
)
def test_property_truncated_area_monotone(trunc_a, trunc_b):
    """More truncation never increases area, and error grows with bits cut."""
    base = make_multiplier(6, 6)
    small = truncate_inputs(base, trunc_a, trunc_b)
    smaller = truncate_inputs(base, min(trunc_a + 1, 5), trunc_b)
    assert netlist_ge(smaller.netlist) <= netlist_ge(small.netlist)
