"""Unit tests for the pruning space and the multiplier library."""

import numpy as np
import pytest

from repro.approx.library import ApproxLibrary, build_library
from repro.approx.pruning import PruningSpace
from repro.circuits.simulate import signal_probabilities
from repro.circuits.synthesis import make_multiplier
from repro.circuits.verify import validate_netlist
from repro.errors import OptimizationError

# Small, fast library settings shared by these tests.
FAST = dict(population=12, generations=5, hybrid=False, structural=False, use_cache=True)


@pytest.fixture(scope="module")
def small_library() -> ApproxLibrary:
    return build_library(width=8, seed=0, **FAST)


class TestSignalProbabilities:
    def test_input_probability_half(self):
        mul = make_multiplier(4, 4)
        probs = signal_probabilities(mul.netlist, [mul.a_wires, mul.b_wires])
        for wire in mul.netlist.inputs:
            assert probs[wire] == pytest.approx(0.5)

    def test_and_partial_product_quarter(self):
        mul = make_multiplier(4, 4)
        probs = signal_probabilities(mul.netlist, [mul.a_wires, mul.b_wires])
        # any partial-product AND of two independent inputs has p1 = 0.25
        pp_wires = [w for w in mul.netlist.gates if w.startswith("pp")]
        assert pp_wires
        for wire in pp_wires[:5]:
            assert probs[wire] == pytest.approx(0.25)


class TestPruningSpace:
    def test_candidates_sorted_by_disagreement(self):
        space = PruningSpace(make_multiplier(6, 6), max_candidates=32)
        scores = [c.disagreement for c in space.candidates]
        assert scores == sorted(scores)

    def test_outputs_protected(self):
        mul = make_multiplier(6, 6)
        space = PruningSpace(mul, protect_outputs=True)
        wires = {c.wire for c in space.candidates}
        assert not wires & set(mul.netlist.outputs)

    def test_preferred_constant_matches_probability(self):
        mul = make_multiplier(6, 6)
        probs = signal_probabilities(mul.netlist, [mul.a_wires, mul.b_wires])
        space = PruningSpace(mul)
        for cand in space.candidates:
            expected = 1 if probs[cand.wire] >= 0.5 else 0
            assert cand.constant == expected

    def test_empty_genome_is_identity(self):
        mul = make_multiplier(6, 6)
        space = PruningSpace(mul, max_candidates=16)
        same = space.apply(tuple([0] * space.genome_length))
        assert same is mul

    def test_apply_produces_valid_smaller_circuit(self):
        mul = make_multiplier(8, 8)
        space = PruningSpace(mul, max_candidates=24)
        genome = tuple(1 if i < 8 else 0 for i in range(space.genome_length))
        pruned = space.apply(genome)
        validate_netlist(pruned.netlist)
        assert pruned.netlist.gate_count < mul.netlist.gate_count

    def test_genome_length_checked(self):
        space = PruningSpace(make_multiplier(4, 4), max_candidates=8)
        with pytest.raises(OptimizationError, match="genome length"):
            space.assignments_for((1, 0))

    def test_bad_max_candidates(self):
        with pytest.raises(OptimizationError):
            PruningSpace(make_multiplier(4, 4), max_candidates=0)

    def test_low_disagreement_prune_has_low_error(self):
        """Pruning the single cheapest candidate changes few outputs."""
        mul = make_multiplier(8, 8)
        space = PruningSpace(mul, max_candidates=16)
        genome = tuple(1 if i == 0 else 0 for i in range(space.genome_length))
        pruned = space.apply(genome)
        exact_table = mul.truth_table()
        approx_table = pruned.truth_table()
        error_rate = np.mean(exact_table != approx_table)
        assert error_rate <= space.candidates[0].disagreement + 1e-12


class TestLibrary:
    def test_contains_exact(self, small_library):
        assert small_library.exact.is_exact
        assert small_library.exact.origin == "exact"

    def test_exact_has_largest_area(self, small_library):
        assert small_library.exact.area_ge == max(
            m.area_ge for m in small_library
        )

    def test_entries_sorted_by_area_desc(self, small_library):
        areas = [m.area_ge for m in small_library]
        assert areas == sorted(areas, reverse=True)

    def test_pareto_no_domination(self, small_library):
        """Library entries are mutually non-dominated over the filter's
        three objectives: area, uniform NMED, DNN-weighted error moment."""

        def objectives(m):
            return (
                m.area_ge,
                m.metrics.nmed,
                m.dnn_metrics.variance + m.dnn_metrics.bias**2,
            )

        for a in small_library:
            for b in small_library:
                if a is b:
                    continue
                oa, ob = objectives(a), objectives(b)
                strictly_better = all(
                    x <= y for x, y in zip(oa, ob)
                ) and any(x < y for x, y in zip(oa, ob))
                # exact entry is always kept even if dominated
                assert not strictly_better or b.is_exact

    def test_luts_match_circuits(self, small_library):
        for entry in list(small_library)[:3]:
            assert np.array_equal(
                entry.lut.table, entry.circuit.truth_table().astype(np.int64)
            )

    def test_selection_by_nmed(self, small_library):
        bound = 2e-3
        chosen = small_library.smallest_within_nmed(bound)
        assert chosen.metrics.nmed <= bound
        for other in small_library.within_nmed(bound):
            assert chosen.area_ge <= other.area_ge

    def test_selection_impossible_bound(self, small_library):
        with pytest.raises(OptimizationError, match="no multiplier"):
            small_library.smallest_within_nmed(-1.0)

    def test_by_name(self, small_library):
        entry = small_library.by_name("exact")
        assert entry.is_exact
        with pytest.raises(OptimizationError, match="no multiplier named"):
            small_library.by_name("missing")

    def test_deterministic_rebuild(self):
        lib1 = build_library(width=8, seed=7, use_cache=False, **{k: v for k, v in FAST.items() if k != "use_cache"})
        lib2 = build_library(width=8, seed=7, use_cache=False, **{k: v for k, v in FAST.items() if k != "use_cache"})
        assert [m.name for m in lib1] == [m.name for m in lib2]
        assert [m.area_ge for m in lib1] == [m.area_ge for m in lib2]

    def test_cache_returns_same_object(self):
        lib1 = build_library(width=8, seed=0, **FAST)
        lib2 = build_library(width=8, seed=0, **FAST)
        assert lib1 is lib2

    def test_area_range_spans_at_least_2x(self, small_library):
        lo, hi = small_library.area_range_ge()
        assert hi / lo > 2.0

    def test_dnn_metrics_present(self, small_library):
        for entry in small_library:
            if entry.is_exact:
                assert entry.dnn_metrics.nmed == 0.0
            else:
                assert entry.dnn_metrics.nmed >= 0.0

    def test_delay_and_area_per_node(self, small_library):
        entry = small_library.exact
        assert entry.area_um2(7) < entry.area_um2(28)
        assert entry.delay_ps(7) < entry.delay_ps(28)
