"""Batched pruning objectives and the batched step-1 search.

Pins the approx-layer contract on top of the circuits-level property
suite: :class:`BatchedPruningObjectives` equals the reference evaluate
closure, NSGA-II trajectories are identical in every engine mode, and
``build_library`` returns bit-identical libraries batched vs the
per-genome reference.
"""

import numpy as np
import pytest

from repro.approx.library import build_library
from repro.approx.metrics import compute_error_metrics
from repro.approx.nsga2 import Nsga2, Nsga2Config
from repro.approx.pruning import BatchedPruningObjectives, PruningSpace
from repro.circuits.area import netlist_ge
from repro.circuits.synthesis import make_multiplier
from repro.engine.backends import SerialBackend, ThreadBackend
from repro.engine.population import EngineConfig
from repro.errors import OptimizationError

FAST = dict(
    population=10, generations=4, hybrid=False, structural=False,
    use_cache=False,
)


def reference_objectives(space, genome):
    circuit = space.apply(genome)
    table = circuit.truth_table()
    width = space.circuit.a_width
    metrics = compute_error_metrics(table, width, width)
    return (netlist_ge(circuit.netlist), metrics.nmed)


@pytest.fixture(scope="module")
def space():
    return PruningSpace(make_multiplier(8, 8), max_candidates=64)


class TestBatchedObjectives:
    def test_matches_reference(self, space):
        batched = BatchedPruningObjectives(space)
        rng = np.random.default_rng(4)
        genomes = [space.random_genome(rng) for _ in range(12)]
        genomes.append(tuple([0] * space.genome_length))  # empty
        genomes.append(tuple([1] * space.genome_length))  # all ties
        results = batched(genomes)
        for genome, objectives in zip(genomes, results):
            assert objectives == reference_objectives(space, genome)

    def test_empty_genome_uses_base_area(self, space):
        """``PruningSpace.apply`` returns the unsimplified base."""
        empty = tuple([0] * space.genome_length)
        (area, nmed) = BatchedPruningObjectives(space)([empty])[0]
        assert area == netlist_ge(space.circuit.netlist)
        assert nmed == 0.0

    def test_sharding_invariant(self, space):
        rng = np.random.default_rng(9)
        genomes = [space.random_genome(rng) for _ in range(11)]
        whole = BatchedPruningObjectives(space, shard_size=64)(genomes)
        small = BatchedPruningObjectives(space, shard_size=3)(genomes)
        threaded = BatchedPruningObjectives(
            space, shard_size=3, backend=ThreadBackend(3)
        )(genomes)
        serial = BatchedPruningObjectives(
            space, shard_size=5, backend=SerialBackend()
        )(genomes)
        assert whole == small == threaded == serial

    def test_empty_population(self, space):
        assert BatchedPruningObjectives(space)([]) == []

    def test_bad_shard_size(self, space):
        with pytest.raises(OptimizationError, match="shard_size"):
            BatchedPruningObjectives(space, shard_size=0)


class TestNsga2BatchPath:
    def run_search(self, space, mode, workers=None):
        def evaluate(genome):
            return reference_objectives(space, genome)

        batch = None
        if mode in ("auto", "batch"):
            batched = BatchedPruningObjectives(space)
            batch = batched.objectives
        search = Nsga2(
            evaluate,
            space.random_genome,
            Nsga2Config(population_size=8, generations=4, seed=2),
            engine=EngineConfig(mode=mode, workers=workers),
            batch_evaluate=batch,
        )
        return search, search.run()

    def test_batch_front_identical_to_serial(self, space):
        serial_search, serial_front = self.run_search(space, "serial")
        batch_search, batch_front = self.run_search(space, "batch")
        assert batch_front == serial_front
        # the store hook backfills the memo, so the distinct-genome
        # counter survives the batch fast path
        assert batch_search.evaluations == serial_search.evaluations

    def test_auto_resolves_to_batch(self, space):
        search, front = self.run_search(space, "auto", workers=1)
        assert (
            search._population_evaluator.resolved_mode() == "batch"
        )
        _, serial_front = self.run_search(space, "serial")
        assert front == serial_front


def library_fingerprint(library):
    return [
        (
            m.name,
            m.origin,
            m.area_ge,
            m.metrics,
            m.dnn_metrics,
            m.lut.table.tobytes(),
        )
        for m in library
    ]


class TestBatchedLibrary:
    def test_modes_bit_identical(self):
        reference = build_library(
            width=8, seed=3, engine=EngineConfig(mode="serial"), **FAST
        )
        batched = build_library(width=8, seed=3, **FAST)
        threaded = build_library(
            width=8, seed=3,
            engine=EngineConfig(mode="batch", workers=2), **FAST
        )
        assert library_fingerprint(batched) == library_fingerprint(
            reference
        )
        assert library_fingerprint(threaded) == library_fingerprint(
            reference
        )

    def test_hybrid_path_bit_identical(self):
        settings = dict(FAST, hybrid=True)
        reference = build_library(
            width=8, seed=1, engine=EngineConfig(mode="serial"), **settings
        )
        batched = build_library(width=8, seed=1, **settings)
        # (whether hybrid entries survive the Pareto filter depends on
        # the settings; the contract is that both engines agree)
        assert library_fingerprint(batched) == library_fingerprint(
            reference
        )

    def test_disk_cache_shared_across_modes(self, tmp_path):
        """Objectives cached by the batched engine warm the reference."""
        cold = build_library(
            width=8, seed=5, cache_dir=str(tmp_path), **FAST
        )
        warm = build_library(
            width=8, seed=5, cache_dir=str(tmp_path),
            engine=EngineConfig(mode="serial"), **FAST
        )
        assert library_fingerprint(warm) == library_fingerprint(cold)
