"""Unit tests for mapping search and the performance model."""

import pytest

from repro.accel.arch import AcceleratorConfig
from repro.accel.nvdla import nvdla_config, nvdla_family
from repro.approx.library import build_library
from repro.dataflow.layers import ConvLayer, FCLayer, PoolLayer
from repro.dataflow.mapping import LOOP_ORDERS, build_mapping
from repro.dataflow.performance import (
    clear_performance_cache,
    evaluate_layer,
    evaluate_network,
)
from repro.dataflow.scheduler import schedule_network
from repro.errors import MappingError
from repro.nn.zoo import workload

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def exact():
    return build_library(width=8, seed=0, **FAST).exact


@pytest.fixture(scope="module")
def config(exact):
    return nvdla_config(256, exact, 7)


CONV = ConvLayer(
    name="c", in_channels=64, out_channels=128,
    in_height=28, in_width=28, kernel=3, stride=1, padding=1,
)


class TestMappingConstruction:
    def test_spatial_tiles_bounded_by_array(self, config):
        mapping = build_mapping(CONV, config, "k_outer")
        assert mapping.ks <= config.pe_cols
        assert mapping.ps <= config.pe_rows
        assert mapping.nk * mapping.ks >= CONV.out_channels
        assert mapping.np_ * mapping.ps >= CONV.out_pixels

    def test_loop_orders_differ_in_traffic(self, exact):
        # tiny global buffer forces re-loads, making orders distinguishable
        small_gb = AcceleratorConfig(
            pe_rows=16, pe_cols=16, local_buffer_bytes=64,
            global_buffer_bytes=8 * 1024, multiplier=exact, node_nm=7,
        )
        big_layer = ConvLayer(
            name="big", in_channels=256, out_channels=512,
            in_height=28, in_width=28, kernel=3, padding=1,
        )
        k_outer = build_mapping(big_layer, small_gb, "k_outer")
        p_outer = build_mapping(big_layer, small_gb, "p_outer")
        assert k_outer.dram_total_bytes != p_outer.dram_total_bytes

    def test_unknown_loop_order_rejected(self, config):
        with pytest.raises(MappingError, match="unknown loop order"):
            build_mapping(CONV, config, "sideways")

    def test_pool_layer_not_mappable(self, config):
        pool = PoolLayer("p", 64, 28, 28, 2)
        with pytest.raises(MappingError):
            build_mapping(pool, config, "k_outer")

    def test_spatial_utilization_bounds(self, config):
        mapping = build_mapping(CONV, config, "k_outer")
        assert 0.0 < mapping.spatial_utilization <= 1.0

    def test_fc_maps_with_single_pixel_row(self, config):
        fc = FCLayer("fc", 4096, 1000)
        mapping = build_mapping(fc, config, "k_outer")
        assert mapping.ps == 1
        assert mapping.p == 1

    def test_weights_never_reload_in_k_outer(self, config):
        mapping = build_mapping(CONV, config, "k_outer")
        assert mapping.dram_weight_bytes == CONV.weight_bytes

    def test_inputs_never_reload_in_p_outer(self, config):
        mapping = build_mapping(CONV, config, "p_outer")
        assert mapping.dram_input_bytes == CONV.input_bytes


class TestLayerPerformance:
    def test_compute_bound_conv(self, config):
        perf = evaluate_layer(CONV, config)
        assert perf.total_cycles >= perf.compute_cycles
        assert perf.macs == CONV.macs
        assert 0.0 < perf.utilization(config.n_pes) <= 1.0

    def test_fc_is_memory_bound(self, config):
        fc = FCLayer("fc6", 25088, 4096)
        perf = evaluate_layer(fc, config)
        assert perf.dram_cycles > perf.onchip_cycles

    def test_pool_layer_traffic_only(self, config):
        pool = PoolLayer("p", 64, 28, 28, 2)
        perf = evaluate_layer(pool, config)
        assert perf.compute_cycles == 0.0
        assert perf.dram_bytes == pool.input_bytes + pool.output_bytes

    def test_best_mapping_at_least_as_good_as_each_order(self, config):
        best = evaluate_layer(CONV, config)
        for order in LOOP_ORDERS:
            mapping = build_mapping(CONV, config, order)
            # reconstruct that order's latency via a single-order evaluation
            from repro.dataflow.performance import _evaluate_mapping

            perf = _evaluate_mapping(CONV, mapping, config, 25.6)
            assert best.total_cycles <= perf.total_cycles + 1e-9

    def test_zero_local_buffer_slower(self, exact):
        fast = AcceleratorConfig(
            pe_rows=16, pe_cols=16, local_buffer_bytes=128,
            global_buffer_bytes=256 * 1024, multiplier=exact, node_nm=7,
        )
        slow = AcceleratorConfig(
            pe_rows=16, pe_cols=16, local_buffer_bytes=0,
            global_buffer_bytes=256 * 1024, multiplier=exact, node_nm=7,
        )
        assert (
            evaluate_layer(CONV, slow).total_cycles
            > evaluate_layer(CONV, fast).total_cycles
        )


class TestNetworkPerformance:
    def test_fps_increases_with_pes(self, exact):
        net = workload("vgg16")
        fps = [
            evaluate_network(net, cfg).fps for cfg in nvdla_family(exact, 7)
        ]
        assert fps == sorted(fps)
        assert fps[0] < 10 < fps[-1]

    def test_higher_clock_higher_fps(self, exact):
        net = workload("resnet50")
        slow = nvdla_config(256, exact, 7, clock_ghz_override=0.5)
        fast = nvdla_config(256, exact, 7, clock_ghz_override=1.5)
        assert evaluate_network(net, fast).fps > evaluate_network(net, slow).fps

    def test_utilization_below_one(self, exact, config):
        perf = evaluate_network(workload("vgg16"), config)
        assert 0.0 < perf.average_utilization < 1.0

    def test_multiplier_does_not_change_timing(self, exact):
        lib = build_library(width=8, seed=0, **FAST)
        small = lib.multipliers[-1]
        net = workload("resnet50")
        a = evaluate_network(net, nvdla_config(256, exact, 7))
        b = evaluate_network(net, nvdla_config(256, small, 7))
        assert a.fps == b.fps

    def test_cache_consistency(self, exact, config):
        net = workload("resnet50")
        clear_performance_cache()
        cold = evaluate_network(net, config, use_cache=True)
        warm = evaluate_network(net, config, use_cache=True)
        uncached = evaluate_network(net, config, use_cache=False)
        assert cold.fps == warm.fps == uncached.fps

    def test_bottleneck_layer_is_max(self, exact, config):
        perf = evaluate_network(workload("vgg16"), config)
        worst = perf.bottleneck_layer()
        assert worst.total_cycles == max(
            lp.total_cycles for lp in perf.layer_performances
        )


class TestScheduler:
    def test_report_covers_all_layers(self, config):
        net = workload("vgg16")
        report = schedule_network(net, config)
        covered = len(report.compute_bound_layers) + len(
            report.memory_bound_layers
        )
        assert covered == len(net.layers)

    def test_time_share_sums_to_one(self, config):
        report = schedule_network(workload("resnet50"), config)
        assert sum(report.time_share.values()) == pytest.approx(1.0)

    def test_fc_layers_memory_bound_on_vgg(self, config):
        report = schedule_network(workload("vgg16"), config)
        for fc_name in ("fc6", "fc7", "fc8"):
            assert fc_name in report.memory_bound_layers

    def test_summary_text(self, config):
        report = schedule_network(workload("vgg16"), config)
        text = report.summary()
        assert "FPS" in text
        assert "bottleneck" in text
