"""Unit tests for the dataflow energy bridge."""

import pytest

from repro.accel.nvdla import nvdla_config
from repro.approx.library import build_library
from repro.dataflow.energy import (
    energy_per_mac_pj,
    network_energy,
    total_carbon_per_inference,
)
from repro.errors import CarbonModelError
from repro.nn.zoo import workload

FAST = dict(population=12, generations=5, hybrid=False, structural=False)


@pytest.fixture(scope="module")
def exact():
    return build_library(width=8, seed=0, **FAST).exact


@pytest.fixture(scope="module")
def breakdown(exact):
    return network_energy("resnet50", nvdla_config(256, exact, 7))


class TestEnergyBreakdown:
    def test_macs_match_workload(self, breakdown):
        assert breakdown.macs == workload("resnet50").total_macs

    def test_positive_traffic(self, breakdown):
        assert breakdown.sram_bytes > 0
        assert breakdown.dram_bytes > 0

    def test_sram_traffic_at_least_dram(self, breakdown):
        """Everything from DRAM flows through the global buffer at
        least once, plus tile re-streaming."""
        assert breakdown.sram_bytes > breakdown.dram_bytes * 0.1

    def test_energy_positive_and_sane(self, breakdown):
        energy = breakdown.energy_per_inference_j
        # edge inference: between 0.1 mJ and 1 J
        assert 1e-4 < energy < 1.0

    def test_energy_per_mac_in_published_range(self, breakdown):
        """Accelerator surveys report ~0.3-20 pJ/MAC system-level."""
        per_mac = energy_per_mac_pj(breakdown)
        assert 0.1 < per_mac < 50.0

    def test_advanced_node_more_efficient(self, exact):
        e7 = network_energy("resnet50", nvdla_config(256, exact, 7))
        e28 = network_energy("resnet50", nvdla_config(256, exact, 28))
        assert (
            e7.energy_per_inference_j < e28.energy_per_inference_j
        )

    def test_static_power_included(self, exact):
        idle = network_energy("resnet50", nvdla_config(256, exact, 7))
        busy = network_energy(
            "resnet50", nvdla_config(256, exact, 7), static_power_w=0.5
        )
        assert (
            busy.energy_per_inference_j > idle.energy_per_inference_j
        )


class TestTotalCarbon:
    def test_shares_positive(self, breakdown):
        embodied, operational = total_carbon_per_inference(
            breakdown, embodied_g=5.0, lifetime_inferences=1e9
        )
        assert embodied > 0
        assert operational > 0

    def test_embodied_amortises(self, breakdown):
        short, _ = total_carbon_per_inference(
            breakdown, embodied_g=5.0, lifetime_inferences=1e6
        )
        long, _ = total_carbon_per_inference(
            breakdown, embodied_g=5.0, lifetime_inferences=1e9
        )
        assert long < short

    def test_invalid_lifetime(self, breakdown):
        with pytest.raises(CarbonModelError):
            total_carbon_per_inference(
                breakdown, embodied_g=5.0, lifetime_inferences=0
            )
