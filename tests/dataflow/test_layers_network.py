"""Unit tests for layer algebra and network containers."""

import pytest

from repro.dataflow.layers import ConvLayer, FCLayer, PoolLayer
from repro.dataflow.network import Network
from repro.errors import WorkloadError


class TestConvLayer:
    def make(self, **overrides):
        defaults = dict(
            name="conv",
            in_channels=64,
            out_channels=128,
            in_height=56,
            in_width=56,
            kernel=3,
            stride=1,
            padding=1,
        )
        defaults.update(overrides)
        return ConvLayer(**defaults)

    def test_same_padding_preserves_size(self):
        conv = self.make()
        assert conv.out_height == 56
        assert conv.out_width == 56

    def test_stride_halves(self):
        conv = self.make(stride=2)
        assert conv.out_height == 28

    def test_no_padding_shrinks(self):
        conv = self.make(padding=0)
        assert conv.out_height == 54

    def test_macs_formula(self):
        conv = self.make()
        assert conv.macs == 64 * 128 * 3 * 3 * 56 * 56

    def test_byte_counts(self):
        conv = self.make()
        assert conv.weight_bytes == 128 * 64 * 9
        assert conv.input_bytes == 64 * 56 * 56
        assert conv.output_bytes == 128 * 56 * 56

    def test_invalid_geometry_rejected(self):
        with pytest.raises(WorkloadError):
            self.make(in_channels=0)
        with pytest.raises(WorkloadError):
            self.make(padding=-1)
        with pytest.raises(WorkloadError, match="does not fit"):
            self.make(kernel=99, padding=0)


class TestFCLayer:
    def test_macs(self):
        fc = FCLayer("fc", 4096, 1000)
        assert fc.macs == 4096 * 1000

    def test_as_conv_equivalence(self):
        fc = FCLayer("fc", 4096, 1000)
        conv = fc.as_conv()
        assert conv.macs == fc.macs
        assert conv.weight_bytes == fc.weight_bytes
        assert conv.out_pixels == 1

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            FCLayer("fc", 0, 10)


class TestPoolLayer:
    def test_defaults_stride_to_kernel(self):
        pool = PoolLayer("p", channels=64, in_height=56, in_width=56, kernel=2)
        assert pool.out_height == 28

    def test_padding(self):
        pool = PoolLayer(
            "p", channels=64, in_height=112, in_width=112,
            kernel=3, stride=2, padding=1,
        )
        assert pool.out_height == 56

    def test_no_macs(self):
        pool = PoolLayer("p", channels=64, in_height=56, in_width=56, kernel=2)
        assert pool.macs == 0
        assert pool.weight_bytes == 0

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            PoolLayer("p", channels=0, in_height=8, in_width=8, kernel=2)
        with pytest.raises(WorkloadError, match="exceeds input"):
            PoolLayer("p", channels=8, in_height=4, in_width=4, kernel=8)


class TestNetwork:
    def test_empty_rejected(self):
        with pytest.raises(WorkloadError, match="no layers"):
            Network("empty", ())

    def test_duplicate_names_rejected(self):
        conv = ConvLayer("c", 3, 8, 8, 8, 3, padding=1)
        with pytest.raises(WorkloadError, match="duplicate"):
            Network("dup", (conv, conv))

    def test_aggregates(self):
        layers = (
            ConvLayer("c1", 3, 8, 8, 8, 3, padding=1),
            PoolLayer("p1", 8, 8, 8, 2),
            FCLayer("fc", 8 * 4 * 4, 10),
        )
        net = Network("tiny", layers)
        assert net.total_macs == layers[0].macs + layers[2].macs
        assert net.total_weight_bytes == (
            layers[0].weight_bytes + layers[2].weight_bytes
        )
        assert len(net.compute_layers()) == 2
        assert len(net.pool_layers()) == 1

    def test_max_activation(self):
        layers = (
            ConvLayer("c1", 3, 8, 8, 8, 3, padding=1),
            FCLayer("fc", 8 * 8 * 8, 10),
        )
        net = Network("tiny", layers)
        assert net.max_activation_bytes == 8 * 8 * 8

    def test_describe_mentions_layers(self):
        net = Network("tiny", (ConvLayer("c1", 3, 8, 8, 8, 3, padding=1),))
        text = net.describe()
        assert "tiny" in text
        assert "c1" in text
