"""Property-based tests of mapping and performance invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.arch import AcceleratorConfig
from repro.approx.library import build_library
from repro.dataflow.layers import ConvLayer
from repro.dataflow.mapping import LOOP_ORDERS, build_mapping
from repro.dataflow.performance import evaluate_layer

FAST = dict(population=12, generations=5, hybrid=False, structural=False)

_EXACT = build_library(width=8, seed=0, **FAST).exact


def make_config(rows: int, cols: int, lb: int, gb_kib: int) -> AcceleratorConfig:
    return AcceleratorConfig(
        pe_rows=rows,
        pe_cols=cols,
        local_buffer_bytes=lb,
        global_buffer_bytes=gb_kib * 1024,
        multiplier=_EXACT,
        node_nm=7,
    )


conv_strategy = st.builds(
    ConvLayer,
    name=st.just("conv"),
    in_channels=st.sampled_from([3, 16, 64, 256]),
    out_channels=st.sampled_from([8, 64, 128, 512]),
    in_height=st.sampled_from([7, 14, 28, 56]),
    in_width=st.sampled_from([7, 14, 28, 56]),
    kernel=st.sampled_from([1, 3]),
    stride=st.sampled_from([1, 2]),
    padding=st.sampled_from([0, 1]),
)

config_strategy = st.builds(
    make_config,
    rows=st.sampled_from([4, 8, 16, 32]),
    cols=st.sampled_from([4, 8, 16, 32]),
    lb=st.sampled_from([0, 32, 128]),
    gb_kib=st.sampled_from([16, 64, 256]),
)


@settings(max_examples=60, deadline=None)
@given(layer=conv_strategy, config=config_strategy, order=st.sampled_from(LOOP_ORDERS))
def test_property_mapping_covers_layer(layer, config, order):
    """Tiles always cover every output channel and pixel."""
    mapping = build_mapping(layer, config, order)
    assert mapping.nk * mapping.ks >= layer.out_channels
    assert mapping.np_ * mapping.ps >= layer.out_pixels
    assert 0.0 < mapping.spatial_utilization <= 1.0
    assert mapping.nc >= 1
    assert mapping.rp >= 1


@settings(max_examples=60, deadline=None)
@given(layer=conv_strategy, config=config_strategy, order=st.sampled_from(LOOP_ORDERS))
def test_property_traffic_lower_bounds(layer, config, order):
    """DRAM traffic can never go below one full pass of each tensor."""
    mapping = build_mapping(layer, config, order)
    assert mapping.dram_weight_bytes >= layer.weight_bytes
    assert mapping.dram_input_bytes >= layer.input_bytes
    assert mapping.dram_output_bytes >= layer.output_bytes


@settings(max_examples=40, deadline=None)
@given(layer=conv_strategy, config=config_strategy)
def test_property_layer_latency_positive_and_deterministic(layer, config):
    first = evaluate_layer(layer, config)
    second = evaluate_layer(layer, config)
    assert first.total_cycles > 0
    assert first.total_cycles == second.total_cycles
    assert first.total_cycles >= max(first.onchip_cycles, first.dram_cycles) - 1e-9
    assert 0.0 < first.utilization(config.n_pes) <= 1.0


@settings(max_examples=30, deadline=None)
@given(layer=conv_strategy)
def test_property_more_pes_not_slower_on_compute_bound(layer):
    """With abundant buffers, quadrupling the array never slows a layer."""
    small = make_config(8, 8, 128, 1024)
    large = make_config(16, 16, 128, 1024)
    t_small = evaluate_layer(layer, small).total_cycles
    t_large = evaluate_layer(layer, large).total_cycles
    assert t_large <= t_small * 1.25  # fill overhead tolerance


@settings(max_examples=25, deadline=None)
@given(
    active_mm2=st.floats(min_value=1.0, max_value=800.0),
    n_chiplets=st.integers(min_value=1, max_value=8),
)
def test_property_chiplet_accounting(active_mm2, n_chiplets):
    """Chiplet totals are internally consistent for any split."""
    from repro.carbon.chiplet import chiplet_embodied_carbon

    result = chiplet_embodied_carbon(active_mm2, n_chiplets, 7)
    assert result.total_g == pytest.approx(
        result.silicon_g + result.packaging_g
    )
    assert result.silicon_g > 0
    if n_chiplets == 1:
        assert result.packaging_g == 0.0
    else:
        # PHY overhead: total silicon exceeds the original active area
        assert (
            result.per_chiplet.die_area_mm2 * n_chiplets > active_mm2
        )
