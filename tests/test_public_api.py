"""Smoke tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_workflow_symbols(self):
        assert callable(repro.build_library)
        assert callable(repro.carbon_delay_product)
        assert repro.CarbonAwareDesigner is not None
        assert repro.AccuracyPredictor is not None

    def test_base_error_exported(self):
        assert issubclass(repro.ReproError, Exception)


class TestSubpackagesImportable:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.circuits",
            "repro.circuits.adders",
            "repro.circuits.booth",
            "repro.circuits.verilog",
            "repro.approx",
            "repro.approx.structural",
            "repro.approx.adders",
            "repro.carbon",
            "repro.carbon.chiplet",
            "repro.accel",
            "repro.dataflow",
            "repro.dataflow.energy",
            "repro.nn",
            "repro.accuracy",
            "repro.accuracy.accumulator",
            "repro.ga",
            "repro.core",
            "repro.core.io",
            "repro.engine",
            "repro.engine.backends",
            "repro.engine.batch",
            "repro.engine.population",
            "repro.engine.vectorized",
            "repro.engine.diskcache",
            "repro.engine.grid",
            "repro.engine.worker",
            "repro.experiments",
            "repro.experiments.sensitivity",
            "repro.experiments.pareto_sweep",
            "repro.cli",
        ],
    )
    def test_imports(self, module):
        importlib.import_module(module)

    def test_package_all_exports_resolve(self):
        for package_name in (
            "repro.circuits",
            "repro.approx",
            "repro.carbon",
            "repro.accel",
            "repro.dataflow",
            "repro.nn",
            "repro.accuracy",
            "repro.ga",
            "repro.core",
            "repro.engine",
            "repro.experiments",
        ):
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), f"{package_name}.{name}"
