"""Whole-tree gates: the shipped tree is clean, and the static
fingerprint contract is honored by the runtime helpers it documents."""

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.engine.checkpoint import (
    checkpoint_fingerprint,
    trajectory_parts,
)
from repro.errors import CheckpointError

REPO = Path(__file__).resolve().parents[2]


class TestTreeIsClean:
    def test_src_and_benchmarks_have_zero_unsuppressed_findings(self):
        report = run_analysis(
            [str(REPO / "src"), str(REPO / "benchmarks")]
        )
        assert report.unsuppressed == [], "\n" + report.render_human()
        assert report.exit_code() == 0

    def test_every_suppression_in_tree_names_a_rule_code(self):
        # SUP001 findings are exactly the malformed suppressions; the
        # clean gate above already fails on them, this pins the intent
        report = run_analysis(
            [str(REPO / "src"), str(REPO / "benchmarks")],
            codes=["SUP001"],
        )
        assert report.findings == []


class TestTrajectoryParts:
    def test_parts_are_named_pairs(self):
        from repro.ga.engine import GA_TRAJECTORY_FIELDS, GaConfig

        parts = trajectory_parts(GaConfig(seed=5), GA_TRAJECTORY_FIELDS)
        assert ("seed", 5) in parts
        assert [name for name, _value in parts] == list(
            GA_TRAJECTORY_FIELDS
        )

    def test_unknown_field_raises(self):
        from repro.ga.engine import GaConfig

        with pytest.raises(CheckpointError, match="not a field"):
            trajectory_parts(GaConfig(), ("population_size", "vanished"))

    def test_every_declared_field_perturbs_the_fingerprint(self):
        # the runtime half of FPR001: change any declared field, get a
        # different fingerprint (and therefore a refused resume)
        from repro.approx.nsga2 import NSGA2_TRAJECTORY_FIELDS, Nsga2Config

        perturbed = {
            "population_size": 34,
            "generations": 25,
            "crossover_rate": 0.8,
            "mutation_rate": 0.5,
            "seed": 1,
        }
        assert set(perturbed) == set(NSGA2_TRAJECTORY_FIELDS)
        base = checkpoint_fingerprint(
            trajectory_parts(Nsga2Config(), NSGA2_TRAJECTORY_FIELDS)
        )
        for field, value in perturbed.items():
            changed = checkpoint_fingerprint(
                trajectory_parts(
                    Nsga2Config(**{field: value}), NSGA2_TRAJECTORY_FIELDS
                )
            )
            assert changed != base, field


class TestSettingsTrajectoryFingerprint:
    def test_execution_policy_never_perturbs(self):
        from repro.experiments.common import ExperimentSettings

        base = ExperimentSettings().trajectory_fingerprint()
        assert (
            ExperimentSettings(
                grid_mode="thread",
                grid_workers=4,
                kernel_tier="numpy",
                cache_dir="/tmp/cache",
                accuracy_mode="serial",
            ).trajectory_fingerprint()
            == base
        )

    def test_every_trajectory_setting_perturbs(self):
        from repro.experiments.common import (
            SETTINGS_TRAJECTORY_FIELDS,
            ExperimentSettings,
        )

        perturbed = {
            "library_population": 42,
            "library_generations": 37,
            "ga_population": 26,
            "ga_generations": 31,
            "seed": 9,
            "grid": "france",
        }
        assert set(perturbed) == set(SETTINGS_TRAJECTORY_FIELDS)
        base = ExperimentSettings().trajectory_fingerprint()
        for field, value in perturbed.items():
            changed = ExperimentSettings(
                **{field: value}
            ).trajectory_fingerprint()
            assert changed != base, field
