"""Fixture snippets per rule: positive, negative, and noqa cases."""

import textwrap

from repro.analysis import run_analysis


def lint(tmp_path, source, codes, name="snippet.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = run_analysis([str(path)], codes=codes)
    return report.unsuppressed


class TestRng001:
    def test_module_random_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import random
            x = random.random()
            random.seed(7)
            """,
            ["RNG001"],
        )
        assert [f.line for f in findings] == [3, 4]
        assert "ambient RNG" in findings[0].message

    def test_numpy_random_flagged_through_alias(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import numpy as np
            np.random.seed(0)
            y = np.random.normal(size=3)
            """,
            ["RNG001"],
        )
        assert [f.line for f in findings] == [3, 4]

    def test_from_import_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from random import randint
            n = randint(1, 6)
            """,
            ["RNG001"],
        )
        assert [f.line for f in findings] == [3]

    def test_seeded_constructors_allowed(self, tmp_path):
        assert lint(
            tmp_path,
            """
            import random
            import numpy as np
            rng = np.random.default_rng(7)
            seeded = random.Random(7)
            seq = np.random.SeedSequence(7)
            bitgen = np.random.PCG64(7)
            value = rng.random()
            """,
            ["RNG001"],
        ) == []

    def test_unimported_name_not_flagged(self, tmp_path):
        # a local object that happens to be called "random" is not the
        # stdlib module; without an import the rule must stay silent
        assert lint(
            tmp_path,
            """
            class _Box:
                def random(self):
                    return 4
            random = _Box()
            x = random.random()
            """,
            ["RNG001"],
        ) == []

    def test_noqa_suppresses(self, tmp_path):
        assert lint(
            tmp_path,
            """
            import random
            x = random.random()  # repro: noqa[RNG001]
            """,
            ["RNG001"],
        ) == []


class TestNdt001:
    def test_wall_clock_and_uuid_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import os
            import time
            import uuid
            stamp = time.time()
            token = os.urandom(8)
            run_id = uuid.uuid4()
            """,
            ["NDT001"],
        )
        assert [f.line for f in findings] == [5, 6, 7]

    def test_datetime_now_flagged_via_from_import(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from datetime import datetime
            when = datetime.now()
            """,
            ["NDT001"],
        )
        assert [f.line for f in findings] == [3]

    def test_monotonic_timers_allowed(self, tmp_path):
        assert lint(
            tmp_path,
            """
            import time
            t0 = time.perf_counter()
            t1 = time.monotonic()
            """,
            ["NDT001"],
        ) == []

    def test_set_literal_iteration_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            out = []
            for item in {"a", "b"}:
                out.append(item)
            for item in sorted({"a", "b"}):
                out.append(item)
            """,
            ["NDT001"],
        )
        assert [f.line for f in findings] == [3]
        assert "hash-seed" in findings[0].message


class TestPkl001:
    def test_lambda_at_boundary_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            def drive(session, cells):
                return session.submit(lambda c: c, cells)
            """,
            ["PKL001"],
        )
        assert [f.line for f in findings] == [3]
        assert "lambda" in findings[0].message

    def test_plan_factories_are_boundaries(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.grid import ExecutionPlan
            plan = ExecutionPlan.for_cells(lambda c: c, [(1,)])
            batches = ExecutionPlan.for_batches(lambda b: b, [1, 2])
            """,
            ["PKL001"],
        )
        assert [f.line for f in findings] == [3, 4]

    def test_nested_def_capturing_lock_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import threading

            def drive(session, cells):
                lock = threading.Lock()

                def cell(value):
                    with lock:
                        return value

                return session.submit(cell, cells)
            """,
            ["PKL001"],
        )
        assert [f.line for f in findings] == [11]
        assert "threading.Lock" in findings[0].message

    def test_nested_def_capturing_open_file_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            def drive(session, cells):
                handle = open("log.txt", "w")

                def cell(value):
                    handle.write(str(value))
                    return value

                return session.submit(cell, cells)
            """,
            ["PKL001"],
        )
        assert len(findings) == 1

    def test_clean_nested_def_allowed(self, tmp_path):
        # nested but closure-clean functions stay legal: the thread
        # backend never pickles, and that is a runtime mode decision
        assert lint(
            tmp_path,
            """
            def drive(session, cells):
                offset = 3

                def cell(value):
                    return value + offset

                return session.submit(cell, cells)
            """,
            ["PKL001"],
        ) == []

    def test_module_level_function_allowed(self, tmp_path):
        assert lint(
            tmp_path,
            """
            def cell(value):
                return value

            def drive(session, cells):
                return session.submit(cell, cells)
            """,
            ["PKL001"],
        ) == []


FPR_HEADER = """
TRAJECTORY = ("population", "seed")


class Config:  # repro: fingerprinted[TRAJECTORY]
"""


class TestFpr001:
    def test_complete_declaration_passes(self, tmp_path):
        assert lint(
            tmp_path,
            FPR_HEADER
            + """
                population: int = 8
                seed: int = 0
                # repro: non-trajectory[cache location only]
                cache_dir: str = ""
            """,
            ["FPR001"],
        ) == []

    def test_added_field_without_annotation_fails(self, tmp_path):
        # the acceptance-criterion direction #1: a new knob that is
        # neither declared trajectory nor annotated must fail
        findings = lint(
            tmp_path,
            FPR_HEADER
            + """
                population: int = 8
                seed: int = 0
                mutation_rate: float = 0.2
            """,
            ["FPR001"],
        )
        assert len(findings) == 1
        assert "mutation_rate" in findings[0].message
        assert "non-trajectory" in findings[0].message

    def test_deleted_field_fails_via_stale_declaration(self, tmp_path):
        # direction #2: deleting a declared field leaves a stale name
        # in the declaration, which must fail
        findings = lint(
            tmp_path,
            FPR_HEADER
            + """
                population: int = 8
            """,
            ["FPR001"],
        )
        assert len(findings) == 1
        assert "'seed'" in findings[0].message

    def test_field_both_declared_and_annotated_fails(self, tmp_path):
        findings = lint(
            tmp_path,
            FPR_HEADER
            + """
                population: int = 8
                # repro: non-trajectory[contradiction]
                seed: int = 0
            """,
            ["FPR001"],
        )
        assert len(findings) == 1
        assert "pick one" in findings[0].message

    def test_missing_declaration_tuple_fails(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            class Config:  # repro: fingerprinted[NOWHERE]
                population: int = 8
            """,
            ["FPR001"],
        )
        assert any("NOWHERE" in f.message for f in findings)

    def test_empty_reason_fails(self, tmp_path):
        findings = lint(
            tmp_path,
            FPR_HEADER
            + """
                population: int = 8
                seed: int = 0
                cache_dir: str = ""  # repro: non-trajectory[]
            """,
            ["FPR001"],
        )
        assert len(findings) == 1
        assert "reason" in findings[0].message

    def test_private_and_classvar_fields_exempt(self, tmp_path):
        assert lint(
            tmp_path,
            """
            from typing import ClassVar

            TRAJECTORY = ("population",)


            class Config:  # repro: fingerprinted[TRAJECTORY]
                kind: ClassVar[str] = "config"
                population: int = 8
                _scratch: int = 0
            """,
            ["FPR001"],
        ) == []

    def test_unmarked_class_ignored(self, tmp_path):
        assert lint(
            tmp_path,
            """
            class Plain:
                anything: int = 1
            """,
            ["FPR001"],
        ) == []


class TestKrn001:
    def test_partial_kernel_set_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.kernels import KernelImpl

            impl = KernelImpl(name="t", version="1", lut_tile=print)
            """,
            ["KRN001"],
        )
        assert len(findings) == 1
        assert "simulate_tables" in findings[0].message

    def test_full_set_and_reference_tier_pass(self, tmp_path):
        assert lint(
            tmp_path,
            """
            from repro.engine.kernels import KernelImpl

            def simulate_tables(plan, ties):
                return ties

            def sweep_ge(plan, ties):
                return ties

            def lut_tile(table, w_index, activations, out):
                return None

            full = KernelImpl(
                name="t", version="1",
                simulate_tables=simulate_tables,
                sweep_ge=sweep_ge,
                lut_tile=lut_tile,
            )
            reference = KernelImpl(name="numpy", version="1")
            """,
            ["KRN001"],
        ) == []

    def test_unknown_kernel_field_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.kernels import KernelImpl

            impl = KernelImpl(name="t", version="1", lut_tyle=print)
            """,
            ["KRN001"],
        )
        assert any("lut_tyle" in f.message for f in findings)

    def test_wrong_arity_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.kernels import KernelImpl

            def simulate_tables(plan, ties, extra):
                return ties

            def sweep_ge(plan, ties):
                return ties

            def lut_tile(table, w_index, activations, out):
                return None

            impl = KernelImpl(
                name="t", version="1",
                simulate_tables=simulate_tables,
                sweep_ge=sweep_ge,
                lut_tile=lut_tile,
            )
            """,
            ["KRN001"],
        )
        assert len(findings) == 1
        assert "3 positional" in findings[0].message

    def test_positional_fields_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.kernels import KernelImpl

            impl = KernelImpl("t", "1")
            """,
            ["KRN001"],
        )
        assert any("by keyword" in f.message for f in findings)


class TestDep001:
    def test_map_on_constructed_runner_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            from repro.engine.grid import GridConfig, GridRunner

            runner = GridRunner(GridConfig())
            out = runner.map(print, [(1,)])
            """,
            ["DEP001"],
        )
        assert [f.line for f in findings] == [5]

    def test_map_batches_always_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            out = anything.map_batches(print, [1])
            """,
            ["DEP001"],
        )
        assert len(findings) == 1

    def test_map_on_factory_result_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            runner = settings.grid_runner()
            out = runner.map(print, [(1,)])
            """,
            ["DEP001"],
        )
        assert len(findings) == 1

    def test_unrelated_map_not_flagged(self, tmp_path):
        assert lint(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(2)
            out = list(pool.map(print, [1]))
            also = list(map(str, [1, 2]))
            """,
            ["DEP001"],
        ) == []


class TestTmo001:
    def test_bare_wait_in_engine_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import threading

            event = threading.Event()
            condition = threading.Condition()
            event.wait()
            with condition:
                condition.wait()
            """,
            ["TMO001"],
            name="engine/poller.py",
        )
        assert [f.line for f in findings] == [6, 8]
        assert "timeout" in findings[0].message

    def test_bounded_waits_pass(self, tmp_path):
        assert lint(
            tmp_path,
            """
            import threading

            event = threading.Event()
            condition = threading.Condition()
            event.wait(0.2)
            with condition:
                condition.wait(timeout=0.2)
            """,
            ["TMO001"],
            name="engine/poller.py",
        ) == []

    def test_dial_without_timeout_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import socket

            sock = socket.create_connection(("127.0.0.1", 7777))
            """,
            ["TMO001"],
            name="engine/dialer.py",
        )
        assert [f.line for f in findings] == [4]
        assert "create_connection" in findings[0].message

    def test_dial_with_timeout_passes(self, tmp_path):
        assert lint(
            tmp_path,
            """
            import socket

            a = socket.create_connection(("h", 1), timeout=10.0)
            b = socket.create_connection(("h", 1), 10.0)
            """,
            ["TMO001"],
            name="engine/dialer.py",
        ) == []

    def test_settimeout_none_flagged_and_suppressible(self, tmp_path):
        findings = lint(
            tmp_path,
            """
            import socket

            sock = socket.create_connection(("h", 1), timeout=1.0)
            sock.settimeout(None)
            ok = socket.create_connection(("h", 1), timeout=1.0)
            ok.settimeout(None)  # repro: noqa[TMO001]
            """,
            ["TMO001"],
            name="engine/dialer.py",
        )
        assert [f.line for f in findings] == [5]
        assert "settimeout(None)" in findings[0].message

    def test_outside_engine_not_flagged(self, tmp_path):
        # unbounded waits are ordinary outside the engine layer
        assert lint(
            tmp_path,
            """
            import threading

            event = threading.Event()
            event.wait()
            """,
            ["TMO001"],
            name="experiments/reporter.py",
        ) == []
