"""Framework semantics: registry, suppressions, report, CLI plumbing."""

import json

import pytest

from repro.analysis import (
    AnalysisError,
    get_rule,
    main,
    register_rule,
    rule_codes,
    run_analysis,
    unregister_rule,
)


def _nop_checker(context):
    return ()


class TestRegistry:
    def test_builtin_rules_registered(self):
        assert set(rule_codes()) >= {
            "RNG001", "NDT001", "PKL001", "FPR001",
            "KRN001", "DEP001", "SUP001",
        }

    def test_duplicate_code_raises(self):
        register_rule("ZZZ001", _nop_checker, "error", "throwaway")
        try:
            with pytest.raises(AnalysisError, match="already registered"):
                register_rule("ZZZ001", _nop_checker, "error", "again")
        finally:
            unregister_rule("ZZZ001")

    def test_unknown_severity_rejected(self):
        with pytest.raises(AnalysisError, match="unknown severity"):
            register_rule("ZZZ002", _nop_checker, "fatal")
        assert "ZZZ002" not in rule_codes()

    def test_malformed_code_rejected(self):
        for bad in ("rng001", "RNG", "RNG1", "X" * 12 + "001"):
            with pytest.raises(AnalysisError, match="malformed rule code"):
                register_rule(bad, _nop_checker)

    def test_unknown_code_lookup_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule code"):
            get_rule("NOPE999")

    def test_registered_rule_roundtrip(self):
        register_rule("ZZZ003", _nop_checker, "warning", "temp rule")
        try:
            rule = get_rule("ZZZ003")
            assert rule.severity == "warning"
            assert rule.description == "temp rule"
        finally:
            unregister_rule("ZZZ003")


def _lint(tmp_path, source, codes=None, name="snippet.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return run_analysis([str(path)], codes=codes)


class TestSuppressions:
    def test_trailing_noqa_suppresses_that_line_only(self, tmp_path):
        report = _lint(
            tmp_path,
            "import random\n"
            "a = random.random()  # repro: noqa[RNG001]\n"
            "b = random.random()\n",
            codes=["RNG001"],
        )
        assert [f.line for f in report.unsuppressed] == [3]
        suppressed = [f for f in report.findings if f.suppressed]
        assert [f.line for f in suppressed] == [2]

    def test_comment_only_line_suppresses_file_wide(self, tmp_path):
        report = _lint(
            tmp_path,
            "# repro: noqa[RNG001]\n"
            "import random\n"
            "a = random.random()\n"
            "b = random.random()\n",
            codes=["RNG001"],
        )
        assert report.unsuppressed == []
        assert len(report.findings) == 2

    def test_bare_noqa_is_a_finding(self, tmp_path):
        report = _lint(
            tmp_path, "x = 1  # repro: noqa\n", codes=["SUP001"]
        )
        assert [f.code for f in report.unsuppressed] == ["SUP001"]
        assert "bare noqa" in report.unsuppressed[0].message

    def test_unknown_code_in_noqa_is_a_finding(self, tmp_path):
        report = _lint(
            tmp_path, "x = 1  # repro: noqa[WAT123]\n", codes=["SUP001"]
        )
        assert [f.code for f in report.unsuppressed] == ["SUP001"]
        assert "WAT123" in report.unsuppressed[0].message

    def test_noqa_inside_string_is_data(self, tmp_path):
        report = _lint(
            tmp_path,
            's = "# repro: noqa"\n',
            codes=["SUP001"],
        )
        assert report.findings == []

    def test_suppressed_findings_never_gate(self, tmp_path):
        report = _lint(
            tmp_path,
            "import random\n"
            "a = random.random()  # repro: noqa[RNG001]\n",
            codes=["RNG001"],
        )
        assert report.exit_code() == 0
        assert report.counts()["suppressed"] == 1


class TestReport:
    def test_json_payload_shape(self, tmp_path):
        report = _lint(
            tmp_path,
            "import random\nx = random.random()\n",
            codes=["RNG001"],
        )
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["errors"] == 1
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RNG001"
        assert finding["line"] == 2
        assert finding["suppressed"] is False

    def test_human_rendering_has_summary(self, tmp_path):
        report = _lint(tmp_path, "x = 1\n")
        assert "0 finding(s)" in report.render_human()
        assert "1 file(s) checked" in report.render_human()

    def test_findings_sorted_and_deterministic(self, tmp_path):
        source = (
            "import random\n"
            "b = random.random()\n"
            "import time\n"
            "t = time.time()\n"
        )
        first = _lint(tmp_path, source)
        second = _lint(tmp_path, source)
        assert first.findings == second.findings
        keys = [(f.path, f.line, f.code) for f in first.findings]
        assert keys == sorted(keys)

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            run_analysis(["definitely/not/here.py"])

    def test_syntax_error_raises_with_location(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="cannot parse"):
            run_analysis([str(bad)])


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings_and_json(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert main(["--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RNG001", "FPR001", "SUP001"):
            assert code in out

    def test_rule_subset_selection(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import random\nx = random.random()\n", encoding="utf-8"
        )
        assert main(["--rules", "DEP001", str(dirty)]) == 0
        assert main(["--rules", "RNG001", str(dirty)]) == 1
