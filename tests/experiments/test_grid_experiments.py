"""Sharded-vs-serial identity for the experiment harnesses.

Every harness must produce identical outputs (values *and* ordering)
whether its grid cells run serially, threaded, or across process
shards.  Tiny search sizes keep this affordable; the determinism being
asserted is shard-count independence, which does not depend on scale.
"""

import pytest

from repro.engine.grid import GridConfig, GridRunner
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig2 import fig2_reduction_table, fig2_scatter
from repro.experiments.fig3 import fig3_comparison
from repro.experiments.pareto_sweep import pareto_sweep
from repro.experiments.sensitivity import grid_sensitivity


def tiny_settings() -> ExperimentSettings:
    """Smallest meaningful grid: 2 nodes x 1 network x 1 fps x 2 tiers."""
    return ExperimentSettings(
        nodes_nm=(7, 14),
        networks=("vgg16",),
        fps_thresholds=(30.0,),
        drop_tiers_percent=(1.0, 2.0),
        library_population=12,
        library_generations=4,
        ga_population=8,
        ga_generations=4,
    )


def serial_runner() -> GridRunner:
    return GridRunner(GridConfig(mode="serial"))


def sharded_runner(shards: int) -> GridRunner:
    return GridRunner(GridConfig(mode="thread", workers=2, shards=shards))


def point_key(point):
    return (
        point.carbon_g,
        point.fps,
        point.accuracy_drop_percent,
        point.config.describe(),
    )


@pytest.fixture(scope="module")
def settings():
    s = tiny_settings()
    s.library()  # shared across every comparison below
    return s


class TestShardedIdentity:
    def test_pareto_sweep(self, settings):
        serial = pareto_sweep(settings=settings, runner=serial_runner())
        sharded = pareto_sweep(settings=settings, runner=sharded_runner(2))
        assert list(serial.cells) == list(sharded.cells)
        for key in serial.cells:
            assert point_key(serial.cells[key]) == point_key(sharded.cells[key])

    def test_fig2_scatter_ga_points(self, settings):
        serial = fig2_scatter(settings=settings, runner=serial_runner())
        sharded = fig2_scatter(settings=settings, runner=sharded_runner(2))
        assert serial.series() == sharded.series()

    def test_fig2_table(self, settings):
        serial = fig2_reduction_table(settings=settings, runner=serial_runner())
        sharded = fig2_reduction_table(
            settings=settings, runner=sharded_runner(2)
        )
        assert serial.reductions == sharded.reductions

    def test_fig3(self, settings):
        serial = fig3_comparison(settings=settings, runner=serial_runner())
        sharded = fig3_comparison(settings=settings, runner=sharded_runner(3))
        assert list(serial.cells) == list(sharded.cells)
        for key in serial.cells:
            assert serial.cells[key].normalised == sharded.cells[key].normalised

    def test_grid_sensitivity(self, settings):
        serial = grid_sensitivity(settings=settings, runner=serial_runner())
        sharded = grid_sensitivity(settings=settings, runner=sharded_runner(2))
        assert serial.rows == sharded.rows
