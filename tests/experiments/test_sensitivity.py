"""Integration tests for the sensitivity harnesses (fast settings)."""

import pytest

from repro.carbon import act as act_module
from repro.dataflow import performance as performance_module
from repro.experiments.common import fast_settings
from repro.experiments.sensitivity import (
    bandwidth_sensitivity,
    grid_sensitivity,
    network_fps_table,
    yield_sensitivity,
)


@pytest.fixture(scope="module")
def settings():
    return fast_settings()


class TestGridSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return grid_sensitivity(settings=fast_settings())

    def test_covers_all_profiles(self, result):
        from repro.carbon.act import GRID_PROFILES

        assert len(result.rows) == len(GRID_PROFILES)

    def test_exact_carbon_monotone_in_intensity(self, result):
        exacts = [row[1] for row in result.rows]
        assert exacts == sorted(exacts)

    def test_savings_always_positive(self, result):
        assert all(s > 0 for s in result.savings())

    def test_render(self, result):
        assert "grid_gCO2_per_kWh" in result.render()


class TestYieldSensitivity:
    def test_restores_default_model(self, settings):
        original = act_module.DEFAULT_YIELD_MODEL
        yield_sensitivity(settings=settings, defect_multipliers=(1.0, 4.0))
        assert act_module.DEFAULT_YIELD_MODEL is original

    def test_worse_yield_more_carbon(self, settings):
        result = yield_sensitivity(
            settings=settings, defect_multipliers=(0.5, 4.0)
        )
        exacts = [row[1] for row in result.rows]
        assert exacts[0] < exacts[-1]


class TestBandwidthSensitivity:
    def test_restores_default_bandwidth(self, settings):
        original = performance_module.DRAM_BANDWIDTH_GB_S
        bandwidth_sensitivity(
            settings=settings, bandwidths_gb_s=(12.8, 25.6)
        )
        assert performance_module.DRAM_BANDWIDTH_GB_S == original

    def test_savings_positive(self, settings):
        result = bandwidth_sensitivity(
            settings=settings, bandwidths_gb_s=(12.8, 51.2)
        )
        assert all(s > 0 for s in result.savings())

    def test_empty_bandwidths_rejected(self, settings):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            bandwidth_sensitivity(settings=settings, bandwidths_gb_s=())


class TestFitnessCacheRejection:
    """Global-patching sweeps must not read/write the fitness disk cache.

    The yield and bandwidth sweeps patch ``DEFAULT_YIELD_MODEL`` /
    ``DRAM_BANDWIDTH_GB_S``, which change fitness without changing the
    cache's context fingerprint — cached results would be silently
    wrong here and would poison later unpatched runs.  A ``cache_dir``
    is therefore stripped with a warning before any cell runs.
    """

    def _cached_settings(self, tmp_path):
        from dataclasses import replace

        return replace(fast_settings(), cache_dir=str(tmp_path))

    def test_yield_sweep_warns_and_ignores_cache_dir(self, tmp_path):
        settings = self._cached_settings(tmp_path)
        with pytest.warns(RuntimeWarning, match="cache_dir"):
            cached = yield_sensitivity(
                settings=settings, defect_multipliers=(2.0,)
            )
        clean = yield_sensitivity(
            settings=fast_settings(), defect_multipliers=(2.0,)
        )
        assert cached.rows == clean.rows  # identical to the uncached run
        assert not list(tmp_path.glob("fitness-*.pkl"))  # nothing persisted

    def test_bandwidth_sweep_warns_and_ignores_cache_dir(self, tmp_path):
        settings = self._cached_settings(tmp_path)
        with pytest.warns(RuntimeWarning, match="cache_dir"):
            bandwidth_sensitivity(settings=settings, bandwidths_gb_s=(25.6,))
        assert not list(tmp_path.glob("fitness-*.pkl"))

    def test_grid_sweep_keeps_cache_dir(self, tmp_path, recwarn):
        """The grid sweep patches nothing — its cache stays legitimate."""
        settings = self._cached_settings(tmp_path)
        grid_sensitivity(settings=settings)
        cache_warnings = [
            w for w in recwarn.list if "cache_dir" in str(w.message)
        ]
        assert not cache_warnings


class TestFpsTable:
    def test_covers_networks_and_family(self, settings):
        table = network_fps_table(settings=settings)
        assert set(table) == set(settings.networks)
        for fps in table.values():
            assert len(fps) == 6
            assert list(fps) == sorted(fps)
