"""Integration tests for the experiment harnesses (reduced settings)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.common import ExperimentSettings, fast_settings
from repro.experiments.fig2 import fig2_reduction_table, fig2_scatter
from repro.experiments.fig3 import fig3_comparison
from repro.experiments.report import render_series, render_table


@pytest.fixture(scope="module")
def settings():
    return fast_settings()


class TestSettings:
    def test_defaults_are_paper_scale(self):
        defaults = ExperimentSettings()
        assert defaults.nodes_nm == (7, 14, 28)
        assert defaults.networks == ("vgg16", "vgg19", "resnet50", "resnet152")
        assert defaults.fps_thresholds == (30.0, 40.0, 50.0)
        assert defaults.drop_tiers_percent == (0.5, 1.0, 2.0)

    def test_empty_settings_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSettings(nodes_nm=())
        with pytest.raises(ExperimentError):
            ExperimentSettings(fps_thresholds=())

    def test_ga_config_seed_offsets(self, settings):
        assert settings.ga_config(1).seed != settings.ga_config(2).seed

    def test_library_cached(self, settings):
        assert settings.library() is settings.library()


class TestReport:
    def test_render_table_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text
        assert "2.50" in text
        assert text.count("\n") == 4

    def test_render_table_validates(self):
        with pytest.raises(ExperimentError):
            render_table([], [])
        with pytest.raises(ExperimentError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        text = render_series(
            {"s": [(1.0, 2.0)]}, x_label="fps", y_label="g", title="S"
        )
        assert "[s]" in text
        assert "1.00" in text


class TestFig2Scatter:
    @pytest.fixture(scope="class")
    def scatter(self, settings):
        # class-scoped fixture can't see module fixture value directly;
        # rebuild the cheap settings object
        return fig2_scatter(settings=fast_settings(), network="vgg16", node_nm=7)

    def test_series_present(self, scatter, settings):
        labels = set(scatter.series())
        assert "exact" in labels
        assert "ga_cdp" in labels
        assert any(label.startswith("appx_") for label in labels)

    def test_exact_carbon_monotone(self, scatter):
        exact = scatter.series()["exact"]
        carbons = [c for _, c in exact]
        assert carbons == sorted(carbons)

    def test_appx_below_exact(self, scatter):
        series = scatter.series()
        for label, points in series.items():
            if not label.startswith("appx_"):
                continue
            for (_, exact_c), (_, appx_c) in zip(series["exact"], points):
                assert appx_c <= exact_c

    def test_ga_points_meet_thresholds(self, scatter):
        thresholds = fast_settings().fps_thresholds
        for min_fps, point in zip(thresholds, scatter.points["ga_cdp"]):
            assert point.fps >= min_fps

    def test_render(self, scatter):
        text = scatter.render()
        assert "Fig. 2" in text
        assert "vgg16" in text


class TestFig2Table:
    @pytest.fixture(scope="class")
    def table(self):
        return fig2_reduction_table(settings=fast_settings(), network="vgg16")

    def test_all_cells_present(self, table):
        s = fast_settings()
        assert set(table.reductions) == {
            (node, tier)
            for node in s.nodes_nm
            for tier in s.drop_tiers_percent
        }

    def test_peak_at_least_avg(self, table):
        for avg, peak in table.reductions.values():
            assert peak >= avg >= 0.0

    def test_savings_grow_with_tier(self, table):
        s = fast_settings()
        for node in s.nodes_nm:
            tiers = sorted(s.drop_tiers_percent)
            avgs = [table.reductions[(node, t)][0] for t in tiers]
            assert avgs == sorted(avgs)

    def test_rows_shape(self, table):
        s = fast_settings()
        rows = table.rows()
        assert len(rows) == 2 * len(s.nodes_nm)
        assert rows[0][1] == "Avg"
        assert rows[1][1] == "Peak"

    def test_render(self, table):
        assert "carbon footprint reduction" in table.render()


class TestFig3:
    @pytest.fixture(scope="class")
    def bars(self):
        return fig3_comparison(settings=fast_settings())

    def test_all_cells_present(self, bars):
        s = fast_settings()
        assert set(bars.cells) == {
            (network, node)
            for network in s.networks
            for node in s.nodes_nm
        }

    def test_normalisation(self, bars):
        for cell in bars.cells.values():
            exact_n, approx_n, ga_n = cell.normalised
            assert exact_n == 1.0
            assert approx_n <= 1.0
            assert ga_n < 1.0

    def test_constraints_respected(self, bars):
        for cell in bars.cells.values():
            assert cell.exact.fps >= 30.0
            assert cell.ga_cdp.fps >= 30.0
            assert cell.ga_cdp.accuracy_drop_percent <= 2.0

    def test_ga_beats_approx_only(self, bars):
        for (network, node), cell in bars.cells.items():
            assert cell.ga_cdp.carbon_g < cell.approximate_only.carbon_g, (
                network,
                node,
            )

    def test_max_savings(self, bars):
        best = bars.max_savings_percent()
        for network, saving in best.items():
            assert saving > 10.0, network

    def test_render(self, bars):
        text = bars.render()
        assert "Fig. 3" in text
        assert "ga_cdp" in text
