"""Integration tests for the constraint-space Pareto sweep."""

import pytest

from repro.experiments.common import fast_settings
from repro.experiments.pareto_sweep import pareto_sweep


@pytest.fixture(scope="module")
def sweep():
    return pareto_sweep(settings=fast_settings(), network="vgg16", node_nm=7)


class TestParetoSweep:
    def test_grid_covered(self, sweep):
        s = fast_settings()
        assert set(sweep.cells) == {
            (fps, drop)
            for fps in s.fps_thresholds
            for drop in s.drop_tiers_percent
        }

    def test_constraints_met_everywhere(self, sweep):
        for (min_fps, max_drop), point in sweep.cells.items():
            assert point.fps >= min_fps
            assert point.accuracy_drop_percent <= max_drop

    def test_surface_shape(self, sweep):
        s = fast_settings()
        rows = sweep.carbon_surface()
        assert len(rows) == len(s.fps_thresholds)
        assert len(rows[0]) == 1 + len(s.drop_tiers_percent)

    def test_frontier_nonempty_and_subset(self, sweep):
        frontier = sweep.frontier()
        assert frontier
        cell_ids = {id(point) for point in sweep.cells.values()}
        for point in frontier:
            assert id(point) in cell_ids

    def test_frontier_mutually_nondominated(self, sweep):
        frontier = sweep.frontier()
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    a.carbon_g <= b.carbon_g
                    and a.fps >= b.fps
                    and a.accuracy_drop_percent <= b.accuracy_drop_percent
                    and (
                        a.carbon_g < b.carbon_g
                        or a.fps > b.fps
                        or a.accuracy_drop_percent < b.accuracy_drop_percent
                    )
                )
                assert not dominates

    def test_render(self, sweep):
        text = sweep.render()
        assert "Carbon surface" in text
        assert "vgg16" in text
