"""Remote-backend identity for the experiment harnesses.

The acceptance bar for the multi-node backend: every harness returns
bit-identical results whether its grid cells run serially, on the local
process pool, or through the TCP coordinator with worker daemons —
including when a worker is killed while the grid is in flight.  The
settings share an on-disk objective/fitness cache directory, which is
exactly how a multi-node deployment shares state (the cache can only
change speed, never results).
"""

import socket
import threading
import time

import pytest

from repro.engine.backends import spawn_local_worker
from repro.engine.grid import GridConfig, GridRunner
from repro.experiments.common import ExperimentSettings
from repro.experiments.fig2 import fig2_scatter
from repro.experiments.fig3 import fig3_comparison
from repro.experiments.pareto_sweep import pareto_sweep
from repro.experiments.sensitivity import grid_sensitivity


@pytest.fixture(scope="module")
def settings(tmp_path_factory):
    """Tiny searches + a shared disk cache (the multi-node store)."""
    s = ExperimentSettings(
        nodes_nm=(7, 14),
        networks=("vgg16",),
        fps_thresholds=(30.0,),
        drop_tiers_percent=(1.0, 2.0),
        library_population=12,
        library_generations=4,
        ga_population=8,
        ga_generations=4,
        cache_dir=str(tmp_path_factory.mktemp("remote-cache")),
    )
    s.library()  # warm the parent-side memo and the disk cache
    return s


def serial_runner() -> GridRunner:
    return GridRunner(GridConfig(mode="serial"))


def process_runner() -> GridRunner:
    return GridRunner(GridConfig(mode="process", workers=2, shards=2))


def remote_runner() -> GridRunner:
    return GridRunner(
        GridConfig(mode="remote", workers=2, coordinator="127.0.0.1:0")
    )


def point_key(point):
    return (
        point.carbon_g,
        point.fps,
        point.accuracy_drop_percent,
        point.config.describe(),
    )


class TestRemoteIdentity:
    def test_pareto_sweep_serial_process_remote(self, settings):
        serial = pareto_sweep(settings=settings, runner=serial_runner())
        process = pareto_sweep(settings=settings, runner=process_runner())
        remote = pareto_sweep(settings=settings, runner=remote_runner())
        assert list(serial.cells) == list(process.cells) == list(remote.cells)
        for key in serial.cells:
            assert (
                point_key(serial.cells[key])
                == point_key(process.cells[key])
                == point_key(remote.cells[key])
            )

    def test_fig2_scatter(self, settings):
        serial = fig2_scatter(settings=settings, runner=serial_runner())
        process = fig2_scatter(settings=settings, runner=process_runner())
        remote = fig2_scatter(settings=settings, runner=remote_runner())
        assert serial.series() == process.series() == remote.series()

    def test_fig3(self, settings):
        serial = fig3_comparison(settings=settings, runner=serial_runner())
        process = fig3_comparison(settings=settings, runner=process_runner())
        remote = fig3_comparison(settings=settings, runner=remote_runner())
        assert list(serial.cells) == list(process.cells) == list(remote.cells)
        for key in serial.cells:
            assert (
                serial.cells[key].normalised
                == process.cells[key].normalised
                == remote.cells[key].normalised
            )

    def test_grid_sensitivity(self, settings):
        serial = grid_sensitivity(settings=settings, runner=serial_runner())
        process = grid_sensitivity(settings=settings, runner=process_runner())
        remote = grid_sensitivity(settings=settings, runner=remote_runner())
        assert serial.rows == process.rows == remote.rows


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestRemoteFaultTolerance:
    def test_pareto_sweep_survives_worker_kill(self, settings):
        """Kill an attached worker while the sweep is in flight.

        One backend-spawned worker guarantees completion; the victim we
        attach and kill exercises mid-run connection loss at harness
        scale.  Whether the victim dies holding a cell (reassigned) or
        idle (nothing lost), the results must equal the serial
        reference.
        """
        serial = pareto_sweep(settings=settings, runner=serial_runner())

        port = _free_port()
        address = f"127.0.0.1:{port}"
        runner = GridRunner(
            GridConfig(mode="remote", workers=1, coordinator=address)
        )
        outcome = {}

        def run():
            outcome["sweep"] = pareto_sweep(settings=settings, runner=runner)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()

        # wait for the coordinator to come up, then attach the victim
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                break
            except OSError:
                time.sleep(0.05)
        victim = spawn_local_worker(address)
        time.sleep(1.0)
        victim.kill()
        victim.wait()

        thread.join(timeout=300)
        assert "sweep" in outcome, "remote sweep did not finish after kill"
        remote = outcome["sweep"]
        assert list(serial.cells) == list(remote.cells)
        for key in serial.cells:
            assert point_key(serial.cells[key]) == point_key(remote.cells[key])
