"""Tests for :class:`ExecutionProfile` and its merge into settings.

The profile groups the ten execution knobs into one value with a
parseable ``--profile`` spec.  Pinned here: the parse grammar
(``[MODE][,key=value]*`` with both-stage shorthands), every rejection
path, the merge rule (an explicitly-set legacy field beats the
profile; everything else takes the profile's values), and the
invariant that ``settings.profile`` is always a canonical
:class:`ExecutionProfile` mirroring the resolved knobs.
"""

import pytest

from repro.cli import build_parser, _settings
from repro.errors import ExperimentError
from repro.experiments.common import ExecutionProfile, ExperimentSettings


class TestParse:
    def test_bare_mode_sets_both_stages(self):
        profile = ExecutionProfile.parse("process")
        assert profile.grid_mode == "process"
        assert profile.accuracy_mode == "process"

    def test_shorthands_fan_out_to_both_stages(self):
        profile = ExecutionProfile.parse(
            "remote,workers=0,shards=4,coordinator=10.0.0.5:7777"
        )
        assert profile.grid_workers == profile.accuracy_workers == 0
        assert profile.grid_shards == profile.accuracy_shards == 4
        assert (
            profile.grid_coordinator
            == profile.accuracy_coordinator
            == "10.0.0.5:7777"
        )

    def test_stage_qualified_keys_hit_one_field(self):
        profile = ExecutionProfile.parse(
            "process,accuracy_mode=thread,grid_workers=8"
        )
        assert profile.grid_mode == "process"
        assert profile.accuracy_mode == "thread"
        assert profile.grid_workers == 8
        assert profile.accuracy_workers is None

    def test_kernel_and_stack_abbreviations(self):
        profile = ExecutionProfile.parse("kernel=numpy,stack=4")
        assert profile.kernel_tier == "numpy"
        assert profile.stack_workers == 4
        assert ExecutionProfile.parse("stack=auto").stack_workers == "auto"

    def test_rejections(self):
        with pytest.raises(ExperimentError, match="empty"):
            ExecutionProfile.parse("  ,  ")
        with pytest.raises(ExperimentError, match="key=value"):
            ExecutionProfile.parse("process,workers")
        with pytest.raises(ExperimentError, match="unknown profile key"):
            ExecutionProfile.parse("process,frobs=2")
        with pytest.raises(ExperimentError, match="integer"):
            ExecutionProfile.parse("process,workers=lots")


class TestMerge:
    def test_profile_fills_unset_fields(self):
        settings = ExperimentSettings(profile="process,workers=3")
        assert settings.grid_mode == "process"
        assert settings.accuracy_mode == "process"
        assert settings.grid_workers == 3
        assert settings.accuracy_workers == 3

    def test_explicit_legacy_field_beats_profile(self):
        settings = ExperimentSettings(
            grid_workers=5, profile="process,workers=3"
        )
        assert settings.grid_workers == 5  # explicit keyword wins
        assert settings.accuracy_workers == 3  # unset: profile applies

    def test_profile_object_accepted(self):
        profile = ExecutionProfile(grid_mode="thread", grid_workers=2)
        settings = ExperimentSettings(profile=profile)
        assert settings.grid_mode == "thread"
        assert settings.grid_workers == 2

    def test_canonical_profile_always_rebuilt(self):
        """settings.profile mirrors the resolved knobs, profile or not."""
        plain = ExperimentSettings(grid_mode="thread")
        assert isinstance(plain.profile, ExecutionProfile)
        assert plain.profile.grid_mode == "thread"
        merged = ExperimentSettings(
            grid_workers=5, profile="process,workers=3"
        )
        assert merged.profile.grid_workers == 5
        assert merged.profile.accuracy_workers == 3

    def test_invalid_profile_mode_rejected_by_validation(self):
        # like the legacy grid_mode field, the mode is validated when
        # the runner is built — which the CLI does eagerly (see
        # ``repro.cli._settings``), so ``--profile bogus`` fails fast
        with pytest.raises(ExperimentError, match="grid mode"):
            ExperimentSettings(profile="bogus").grid_runner()


class TestCliProfile:
    def _settings_for(self, argv):
        return _settings(build_parser().parse_args(argv))

    def test_profile_flag_applies_to_both_stages(self):
        settings = self._settings_for(
            ["fig3", "--fast", "--profile", "thread,workers=2"]
        )
        assert settings.grid_mode == "thread"
        assert settings.grid_workers == 2
        assert settings.accuracy_mode == "thread"
        assert settings.accuracy_workers == 2

    def test_explicit_flags_override_profile(self):
        settings = self._settings_for(
            [
                "fig3", "--fast",
                "--profile", "thread,workers=2",
                "--grid-workers", "4",
            ]
        )
        assert settings.grid_workers == 4
        assert settings.accuracy_workers == 2

    def test_profile_available_on_every_command(self):
        parser = build_parser()
        for command in ["library", "design", "accuracy", "fig3",
                        "pareto-sweep", "sensitivity"]:
            args = parser.parse_args([command, "--profile", "serial"])
            assert args.profile == "serial"
