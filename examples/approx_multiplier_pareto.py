"""Step-1 deep dive: the approximate-multiplier Pareto library.

Shows what the gate-level pruning + precision-scaling flow produces:
the area/error Pareto front, per-multiplier exhaustive error metrics,
predicted accuracy drops per workload, and a behavioural LUT-simulation
cross-check of the analytical accuracy model.

Usage::

    python examples/approx_multiplier_pareto.py
"""

from __future__ import annotations

from repro.accuracy import AccuracyPredictor, BehavioralValidator
from repro.accuracy.analytical import multiplier_relative_rmse
from repro.approx import build_library
from repro.experiments.report import render_table
from repro.nn.zoo import WORKLOAD_NAMES


def main() -> None:
    library = build_library()
    predictor = AccuracyPredictor()

    print("Area/error Pareto library (step 1 output)\n")
    rows = []
    for entry in library:
        rows.append(
            [
                entry.name[:30],
                entry.origin,
                round(entry.area_ge, 1),
                f"{entry.metrics.nmed:.2e}",
                f"{entry.metrics.mred:.2e}",
                round(entry.metrics.error_rate, 3),
                f"{multiplier_relative_rmse(entry):.4f}",
            ]
        )
    print(
        render_table(
            ["name", "origin", "area_GE", "NMED", "MRED", "ER", "rel_rmse"],
            rows,
        )
    )

    print("\nPredicted accuracy drop (%) per workload:\n")
    rows = []
    for entry in library:
        rows.append(
            [entry.name[:30]]
            + [
                round(predictor.drop_percent(net, entry), 2)
                for net in WORKLOAD_NAMES
            ]
        )
    print(render_table(["name"] + list(WORKLOAD_NAMES), rows))

    print("\nSmallest feasible multiplier per (workload, tier):\n")
    rows = []
    for net in WORKLOAD_NAMES:
        row = [net]
        for tier in (0.5, 1.0, 2.0):
            chosen = predictor.smallest_feasible(net, library, tier)
            saving = 100.0 * (1.0 - chosen.area_ge / library.exact.area_ge)
            row.append(f"{chosen.name[:22]} (-{saving:.0f}%)")
        rows.append(row)
    print(render_table(["workload", "0.5%", "1.0%", "2.0%"], rows))

    print("\nBehavioural cross-check (LUT simulation on the synthetic task):")
    validator = BehavioralValidator()
    exact_acc = validator.exact_accuracy()
    print(f"  exact-arithmetic accuracy: {exact_acc * 100:.1f}%")
    sample = [library.exact, library.multipliers[len(library) // 2], library.multipliers[-1]]
    for entry in sample:
        drop = validator.drop_percent(entry)
        print(
            f"  {entry.name[:30]:32s} measured drop {drop:+6.1f} pp "
            f"(analytical, vgg16-depth: "
            f"{predictor.drop_percent('vgg16', entry):.2f} pp)"
        )
    rho = predictor.behavioral_agreement(library)
    print(f"  analytical-vs-behavioural Spearman rank correlation: {rho:.3f}")


if __name__ == "__main__":
    main()
