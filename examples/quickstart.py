"""Quickstart: design one carbon-aware approximate DNN accelerator.

Runs the paper's full two-step methodology for a single design problem
(VGG16 at 7 nm, 30 FPS, <= 1% accuracy drop) and compares the result
against the exact NVDLA-style baseline.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.accuracy import AccuracyPredictor
from repro.approx import build_library
from repro.core import CarbonAwareDesigner, smallest_exact_meeting_fps
from repro.ga import GaConfig

NETWORK = "vgg16"
NODE_NM = 7
MIN_FPS = 30.0
MAX_DROP_PERCENT = 1.0


def main() -> None:
    print("Step 1: building the approximate-multiplier Pareto library...")
    library = build_library()
    lo, hi = library.area_range_ge()
    print(
        f"  {len(library)} multipliers, areas {lo:.0f}-{hi:.0f} GE "
        f"(exact: {library.exact.area_ge:.0f} GE)"
    )

    predictor = AccuracyPredictor()

    print("\nBaseline: smallest exact NVDLA family member meeting "
          f"{MIN_FPS:g} FPS...")
    baseline = smallest_exact_meeting_fps(
        NETWORK, library, NODE_NM, predictor, MIN_FPS
    )
    print(f"  {baseline.config.describe()}")
    print(
        f"  {baseline.fps:.1f} FPS, {baseline.carbon_g:.2f} gCO2, "
        f"CDP {baseline.cdp:.4f} g*s"
    )

    print("\nStep 2: GA-CDP search (architecture x multiplier)...")
    designer = CarbonAwareDesigner(
        network=NETWORK,
        node_nm=NODE_NM,
        min_fps=MIN_FPS,
        max_drop_percent=MAX_DROP_PERCENT,
        library=library,
        predictor=predictor,
        ga_config=GaConfig(population_size=24, generations=30, seed=0),
    )
    result = designer.run()
    best = result.best
    print(f"  evaluated {result.outcome.evaluations} distinct designs")
    print(f"  winner: {best.config.describe()}")
    print(
        f"  {best.fps:.1f} FPS, {best.carbon_g:.2f} gCO2, "
        f"accuracy drop {best.accuracy_drop_percent:.2f}%"
    )

    saving = 100.0 * (1.0 - best.carbon_g / baseline.carbon_g)
    print(
        f"\nEmbodied-carbon saving vs exact baseline: {saving:.1f}% "
        f"(paper reports up to ~50-65% for VGG16)"
    )


if __name__ == "__main__":
    main()
