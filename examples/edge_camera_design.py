"""Domain scenario: a smart-camera inference accelerator.

An edge camera runs ResNet50 person/object detection at 30 FPS — the
paper's motivating deployment.  This example sizes an accelerator for
that job at each technology node, comparing three design flows:

1. the catalogue approach — pick the smallest NVDLA family member fast
   enough;
2. approximate-only — same silicon, approximate multipliers;
3. the paper's GA-CDP flow.

It then prints a schedule digest of the winning design (bottleneck
layer, utilisation, DRAM traffic) and the operational-carbon break-even
point, connecting embodied savings to deployment reality.

Usage::

    python examples/edge_camera_design.py
"""

from __future__ import annotations

from repro.accuracy import AccuracyPredictor
from repro.approx import build_library
from repro.carbon import OperationalModel, operational_carbon
from repro.carbon.operational import break_even_inferences
from repro.core import (
    CarbonAwareDesigner,
    design_point_for,
    smallest_exact_meeting_fps,
)
from repro.dataflow import evaluate_network, schedule_network
from repro.experiments.report import render_table
from repro.ga import GaConfig
from repro.nn.zoo import workload

NETWORK = "resnet50"
MIN_FPS = 30.0
MAX_DROP_PERCENT = 1.0


def main() -> None:
    library = build_library()
    predictor = AccuracyPredictor()
    net = workload(NETWORK)

    print(
        f"Scenario: {NETWORK} at {MIN_FPS:g} FPS, "
        f"<= {MAX_DROP_PERCENT:g}% accuracy drop\n"
    )

    rows = []
    winners = {}
    for node_nm in (7, 14, 28):
        exact = smallest_exact_meeting_fps(
            NETWORK, library, node_nm, predictor, MIN_FPS
        )
        approx_mult = predictor.smallest_feasible(
            NETWORK, library, MAX_DROP_PERCENT
        )
        approx = design_point_for(
            exact.config.with_multiplier(approx_mult),
            NETWORK,
            "approx_only",
            predictor,
        )
        ga = CarbonAwareDesigner(
            network=NETWORK,
            node_nm=node_nm,
            min_fps=MIN_FPS,
            max_drop_percent=MAX_DROP_PERCENT,
            library=library,
            predictor=predictor,
            ga_config=GaConfig(population_size=24, generations=30, seed=node_nm),
        ).run().best
        winners[node_nm] = ga
        for point in (exact, approx, ga):
            rows.append(
                [
                    node_nm,
                    point.label,
                    f"{point.config.pe_rows}x{point.config.pe_cols}",
                    point.config.global_buffer_bytes // 1024,
                    point.config.multiplier.name[:22],
                    round(point.fps, 1),
                    round(point.carbon_g, 2),
                    round(point.accuracy_drop_percent, 2),
                ]
            )
    print(
        render_table(
            ["node", "flow", "array", "GB_KiB", "multiplier", "FPS",
             "gCO2", "drop_%"],
            rows,
        )
    )

    best_node = min(winners, key=lambda n: winners[n].carbon_g)
    best = winners[best_node]
    print(f"\nLowest-carbon winner: {best_node} nm — {best.config.describe()}")

    report = schedule_network(net, best.config)
    print("\nSchedule digest:")
    print(report.summary())

    perf = evaluate_network(net, best.config)
    model = OperationalModel(
        node_nm=best_node,
        macs_per_inference=net.total_macs,
        sram_bytes_per_inference=2.0 * perf.total_dram_bytes,
        dram_bytes_per_inference=perf.total_dram_bytes,
    )
    per_year_always_on = MIN_FPS * 3600 * 24 * 365
    breakeven = break_even_inferences(model, best.carbon_g)
    print("\nOperational context:")
    for duty, label in ((1.0, "always-on"), (0.05, "5% duty"), (0.01, "1% duty")):
        per_year = per_year_always_on * duty
        use_phase = operational_carbon(model, per_year)
        days = 365.0 * breakeven / per_year
        print(
            f"  {label:10s} use-phase {use_phase:8.1f} gCO2/year, "
            f"embodied amortised after {days:6.1f} days"
        )
    print(
        "  (embodied carbon dominates for duty-cycled edge deployments "
        "and at manufacturing scale,\n   which is the regime the paper "
        "targets; an always-on accelerator die is use-dominated)"
    )


if __name__ == "__main__":
    main()
