"""Taking a designed multiplier to hardware: Verilog export + context.

The reproduction flow ends with an :class:`AcceleratorConfig` whose
multiplier is a gate-level netlist.  This example shows the last mile a
hardware team would actually walk:

1. pick the multiplier the methodology selected for a design point;
2. export it (and its exact baseline) as structural Verilog;
3. compare the arithmetic-unit menu (adder families, Booth) that a
   future signed-datapath variant could draw from;
4. check whether chipletising the accelerator would ever pay at edge
   scale (it should not — and the model says why).

Usage::

    python examples/hardware_export.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.accuracy import AccuracyPredictor
from repro.approx import build_library
from repro.carbon.chiplet import best_chiplet_count, chiplet_embodied_carbon
from repro.circuits.adders import ADDER_KINDS, make_adder
from repro.circuits.area import netlist_delay_ps, netlist_ge
from repro.circuits.booth import booth_multiplier
from repro.circuits.verilog import to_verilog
from repro.core import CarbonAwareDesigner
from repro.experiments.report import render_table
from repro.ga import GaConfig


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("verilog_out")
    output_dir.mkdir(parents=True, exist_ok=True)

    library = build_library()
    predictor = AccuracyPredictor()

    print("Designing a 30-FPS VGG16 accelerator at 7 nm (<=1% drop)...")
    result = CarbonAwareDesigner(
        network="vgg16",
        node_nm=7,
        min_fps=30.0,
        max_drop_percent=1.0,
        library=library,
        predictor=predictor,
        ga_config=GaConfig(population_size=24, generations=30, seed=0),
    ).run()
    chosen = result.best.config.multiplier
    print(f"  selected multiplier: {chosen.name} ({chosen.area_ge:.0f} GE)")

    for entry in (library.exact, chosen):
        path = output_dir / f"{entry.name}.v"
        path.write_text(to_verilog(entry.circuit.netlist))
        print(f"  wrote {path} ({entry.circuit.netlist.gate_count} gates)")

    print("\nArithmetic-unit menu at 7 nm (for signed-datapath variants):\n")
    rows = []
    for kind in ADDER_KINDS:
        adder = make_adder(8, kind)
        rows.append(
            [
                f"adder/{kind}",
                round(netlist_ge(adder.netlist), 1),
                round(netlist_delay_ps(adder.netlist, 7), 1),
            ]
        )
    booth = booth_multiplier(8)
    rows.append(
        [
            "multiplier/booth_r4 (signed)",
            round(netlist_ge(booth.netlist), 1),
            round(netlist_delay_ps(booth.netlist, 7), 1),
        ]
    )
    exact = library.exact
    rows.append(
        [
            "multiplier/wallace (unsigned)",
            round(exact.area_ge, 1),
            round(exact.delay_ps(7), 1),
        ]
    )
    print(render_table(["unit", "area_GE", "delay_ps@7nm"], rows))
    booth_path = output_dir / "mul8x8_booth.v"
    booth_path.write_text(to_verilog(booth.netlist))
    print(f"  wrote {booth_path}")

    print("\nWould chipletising this accelerator pay?")
    die_mm2 = result.best.config.die_area().total_mm2
    count, carbon = best_chiplet_count(die_mm2, 7)
    mono = chiplet_embodied_carbon(die_mm2, 1, 7).total_g
    print(
        f"  die {die_mm2:.2f} mm^2 -> best split: {count} die(s), "
        f"{carbon:.2f} gCO2 (monolithic {mono:.2f} gCO2)"
    )
    if count == 1:
        print(
            "  at edge scale the yield gain cannot pay the packaging "
            "footprint — monolithic wins, as the paper assumes."
        )


if __name__ == "__main__":
    main()
