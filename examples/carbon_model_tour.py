"""Tour of the embodied-carbon substrate (Eq. 1 and Eq. 2).

Walks through every stage of the ACT-style carbon model: per-node CFPA
under different fab grids, wafer geometry and yield effects, and how an
accelerator die's carbon decomposes into PE array / SRAM / other —
the quantities behind every figure in the paper.

Usage::

    python examples/carbon_model_tour.py
"""

from __future__ import annotations

from repro.accel import nvdla_config
from repro.approx import build_library
from repro.carbon import (
    GRID_PROFILES,
    cfpa_g_per_mm2,
    embodied_carbon,
    murphy_yield,
    poisson_yield,
    technology_node,
)
from repro.experiments.report import render_table


def main() -> None:
    print("Eq. 2 — CFPA (gCO2/mm^2) per node and fab grid (yield 0.95):\n")
    rows = []
    for node_nm in (7, 14, 28):
        node = technology_node(node_nm)
        rows.append(
            [node_nm]
            + [
                round(cfpa_g_per_mm2(node, intensity, 0.95), 2)
                for intensity in GRID_PROFILES.values()
            ]
        )
    print(render_table(["node_nm"] + list(GRID_PROFILES), rows))

    print("\nYield models vs die size (7 nm, D0 = 0.20 /cm^2):\n")
    rows = []
    defect = technology_node(7).defect_density_per_cm2
    for area in (1.0, 10.0, 50.0, 100.0, 300.0):
        rows.append(
            [
                area,
                round(poisson_yield(area, defect), 4),
                round(murphy_yield(area, defect), 4),
            ]
        )
    print(render_table(["die_mm2", "poisson", "murphy"], rows))

    print("\nEq. 1 — embodied carbon of a 10 mm^2 die per node:\n")
    rows = []
    for node_nm in (7, 14, 28):
        result = embodied_carbon(10.0, node_nm)
        rows.append(
            [
                node_nm,
                round(result.cfpa_g_per_mm2, 2),
                round(result.yield_fraction, 4),
                result.dies_per_wafer,
                round(result.wasted_area_mm2, 2),
                round(result.die_carbon_g, 2),
                round(result.wasted_carbon_g, 2),
                round(result.total_g, 2),
            ]
        )
    print(
        render_table(
            ["node_nm", "CFPA", "yield", "dies/wafer", "waste_mm2",
             "die_g", "waste_g", "total_g"],
            rows,
        )
    )

    print("\nAccelerator die decomposition (NVDLA-like, exact multiplier):\n")
    library = build_library()
    rows = []
    for macs in (64, 512, 2048):
        for node_nm in (7, 28):
            config = nvdla_config(macs, library.exact, node_nm)
            carbon = config.embodied_carbon()
            areas = carbon.areas
            rows.append(
                [
                    macs,
                    node_nm,
                    round(areas.total_mm2, 3),
                    round(areas.pe_array_mm2, 3),
                    round(areas.sram_mm2, 3),
                    round(carbon.pe_array_g, 2),
                    round(carbon.sram_g, 2),
                    round(carbon.wasted_g, 2),
                    round(carbon.total_g, 2),
                ]
            )
    print(
        render_table(
            ["MACs", "node", "die_mm2", "pe_mm2", "sram_mm2",
             "pe_g", "sram_g", "waste_g", "total_g"],
            rows,
        )
    )
    print(
        "\nNote how the PE-array share grows with MAC count — that share is"
        "\nexactly the leverage approximate multipliers have on Eq. 1."
    )


if __name__ == "__main__":
    main()
