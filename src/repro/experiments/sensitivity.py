"""Sensitivity analyses (extension experiments).

The paper's results rest on fab and system parameters it does not vary;
these harnesses quantify how the headline conclusion — GA-CDP designs
cut embodied carbon substantially while meeting constraints — responds
to the big unknowns:

* **grid intensity** (:func:`grid_sensitivity`) — a fab on coal vs
  renewables rescales CFPA; does the *relative* GA saving survive?
* **defect density** (:func:`yield_sensitivity`) — yield drives Eq. 2's
  denominator; poor yield amplifies every area saving;
* **DRAM bandwidth** (:func:`bandwidth_sensitivity`) — the performance
  model's main exogenous constant moves the FPS-feasible frontier.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.carbon.act import GRID_PROFILES
from repro.core.baselines import smallest_exact_meeting_fps
from repro.core.designer import CarbonAwareDesigner
from repro.dataflow import performance as performance_module
from repro.dataflow.performance import clear_performance_cache, evaluate_network
from repro.engine.grid import ExecutionPlan, GridConfig, GridRunner
from repro.errors import ExperimentError
from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    shared_predictor,
)
from repro.experiments.report import render_table
from repro.nn.zoo import workload


@dataclass(frozen=True)
class SensitivityResult:
    """One sweep: parameter value -> (exact gCO2, GA gCO2, saving %)."""

    parameter: str
    rows: Tuple[Tuple[float, float, float, float], ...]

    def render(self) -> str:
        return render_table(
            [self.parameter, "exact_gCO2", "ga_gCO2", "saving_%"],
            [list(row) for row in self.rows],
            title=f"Sensitivity — {self.parameter}",
        )

    def savings(self) -> Tuple[float, ...]:
        return tuple(row[3] for row in self.rows)


def _ga_vs_exact(
    settings: ExperimentSettings,
    network: str,
    node_nm: int,
    grid: str | float,
    seed_offset: int,
) -> Tuple[float, float, float]:
    predictor = shared_predictor()
    library = settings.library()
    exact = smallest_exact_meeting_fps(
        network, library, node_nm, predictor, 30.0, grid=grid
    )
    ga = CarbonAwareDesigner(
        network=network,
        node_nm=node_nm,
        min_fps=30.0,
        max_drop_percent=2.0,
        library=library,
        predictor=predictor,
        ga_config=settings.ga_config(seed_offset=seed_offset),
        grid=grid,
        # no cache_dir: the yield sweep patches DEFAULT_YIELD_MODEL, which
        # changes fitness without changing the cache fingerprint
        # (checkpoint_dir is safe — _reject_fitness_cache strips it from
        # the global-patching sweeps before any cell runs, and the grid
        # value is part of the checkpoint slot identity)
        engine=settings.engine(),
        checkpoint_dir=settings.checkpoint_dir,
        resume=settings.resume,
    ).run().best
    saving = 100.0 * (1.0 - ga.carbon_g / exact.carbon_g)
    return exact.carbon_g, ga.carbon_g, saving


def _reject_fitness_cache(
    settings: ExperimentSettings, sweep: str
) -> ExperimentSettings:
    """Disable the on-disk stores for a global-patching sweep.

    The yield and bandwidth sweeps patch module globals
    (``DEFAULT_YIELD_MODEL`` / ``DRAM_BANDWIDTH_GB_S``) that neither
    the disk cache's context fingerprint nor the search-checkpoint
    fingerprint can see: fitness computed under a patched global would
    be stored — and later served — under the *unpatched* context,
    silently corrupting both this sweep and every later run sharing the
    directory; a search checkpoint taken under a patched global would
    likewise be resumed into an unpatched process.  A comment used to
    be the only guard; now ``cache_dir`` and ``checkpoint_dir`` are
    stripped with a loud warning before any cell runs.
    """
    if settings.cache_dir is None and settings.checkpoint_dir is None:
        return settings
    stripped = [
        f"{field}={value!r}"
        for field, value in (
            ("cache_dir", settings.cache_dir),
            ("checkpoint_dir", settings.checkpoint_dir),
        )
        if value is not None
    ]
    warnings.warn(
        f"{sweep} patches module globals the on-disk stores cannot "
        f"fingerprint; ignoring {', '.join(stripped)} for this sweep "
        "(persisted results would be computed under patched models and "
        "corrupt later runs)",
        RuntimeWarning,
        stacklevel=3,
    )
    return replace(settings, cache_dir=None, checkpoint_dir=None, resume=False)


def _patch_local_settings(settings: ExperimentSettings) -> ExperimentSettings:
    """Keep a global-patching cell's fitness workers in-process.

    The warm shared process pool either misses a module-global patch
    (workers forked before it) or outlives it (workers forked during
    it), so cells that patch globals must not fan fitness evaluation
    out to it; thread mode shares the patched interpreter and returns
    bit-identical results.
    """
    if settings.engine_mode == "process":
        return replace(settings, engine_mode="thread")
    return settings


def _patch_safe_runner(runner: GridRunner, n_cells: int) -> GridRunner:
    """Demote thread-mode grids to serial for global-patching cells.

    Process shards isolate a cell's module-global patch per worker and
    serial applies it one cell at a time, but concurrent threads in one
    interpreter would race on the shared global.
    """
    if runner.resolved_mode(n_cells) == "thread":
        return GridRunner(GridConfig(mode="serial"))
    return runner


def _yield_cell(
    settings: ExperimentSettings,
    network: str,
    node_nm: int,
    base_density: float,
    multiplier: float,
    seed_offset: int,
) -> Tuple[float, float, float]:
    """One yield-sweep cell: the Murphy-model swap happens *inside* the
    cell (restored under try/finally), so the patch travels with the
    cell into whichever grid worker runs it."""
    from repro.carbon import act as act_module
    from repro.carbon.wafer import murphy_yield

    settings = _patch_local_settings(settings)
    scaled_density = base_density * multiplier

    def scaled_murphy(area_mm2, _density, _d=scaled_density):
        return murphy_yield(area_mm2, _d)

    original = act_module.DEFAULT_YIELD_MODEL
    act_module.DEFAULT_YIELD_MODEL = scaled_murphy
    try:
        return _ga_vs_exact(settings, network, node_nm, "taiwan", seed_offset)
    finally:
        act_module.DEFAULT_YIELD_MODEL = original


def _bandwidth_cell(
    settings: ExperimentSettings,
    network: str,
    node_nm: int,
    bandwidth: float,
    seed_offset: int,
) -> Tuple[float, float, float]:
    """One bandwidth-sweep cell: patches DRAM bandwidth around its own
    run and clears the performance cache on both sides, leaving the
    executing process (a reusable grid worker or the parent) clean."""
    settings = _patch_local_settings(settings)
    original = performance_module.DRAM_BANDWIDTH_GB_S
    performance_module.DRAM_BANDWIDTH_GB_S = bandwidth
    clear_performance_cache()
    try:
        return _ga_vs_exact(settings, network, node_nm, "taiwan", seed_offset)
    finally:
        performance_module.DRAM_BANDWIDTH_GB_S = original
        clear_performance_cache()


def grid_sensitivity(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
    runner: Optional[GridRunner] = None,
) -> SensitivityResult:
    """GA-CDP saving across fab electricity grids."""
    settings.library()  # build before any pool forks, so workers inherit
    profiles = sorted(GRID_PROFILES.items())
    cells = [
        (settings, network, node_nm, name, 300 + index)
        for index, (name, _intensity) in enumerate(profiles)
    ]
    runner = runner if runner is not None else settings.grid_runner()
    results = runner.run(ExecutionPlan.for_cells(_ga_vs_exact, cells))

    rows = [
        (intensity, round(exact_g, 3), round(ga_g, 3), round(saving, 1))
        for (_name, intensity), (exact_g, ga_g, saving) in zip(profiles, results)
    ]
    rows.sort(key=lambda row: row[0])
    return SensitivityResult("grid_gCO2_per_kWh", tuple(rows))


def yield_sensitivity(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
    defect_multipliers: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    runner: Optional[GridRunner] = None,
) -> SensitivityResult:
    """GA-CDP saving as defect density scales around the node default.

    Implemented by swapping :data:`repro.carbon.act.DEFAULT_YIELD_MODEL`
    for a density-scaled Murphy model under try/finally — the node
    database itself stays immutable.  The swap lives inside each grid
    cell so sharded and serial execution patch identically.
    """
    from repro.carbon.nodes import technology_node

    settings = _reject_fitness_cache(settings, "yield_sensitivity")
    settings.library()  # build before any pool forks, so workers inherit
    base_density = technology_node(node_nm).defect_density_per_cm2
    cells = [
        (settings, network, node_nm, base_density, multiplier, 400 + index)
        for index, multiplier in enumerate(defect_multipliers)
    ]
    runner = runner if runner is not None else settings.grid_runner()
    results = _patch_safe_runner(runner, len(cells)).run(
        ExecutionPlan.for_cells(_yield_cell, cells)
    )

    rows = [
        (multiplier, round(exact_g, 3), round(ga_g, 3), round(saving, 1))
        for multiplier, (exact_g, ga_g, saving) in zip(
            defect_multipliers, results
        )
    ]
    return SensitivityResult("defect_density_multiplier", tuple(rows))


def bandwidth_sensitivity(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
    bandwidths_gb_s: Tuple[float, ...] = (6.4, 12.8, 25.6, 51.2),
    runner: Optional[GridRunner] = None,
) -> SensitivityResult:
    """Exact-family FPS and GA saving across DRAM bandwidths."""
    if not bandwidths_gb_s:
        raise ExperimentError("need at least one bandwidth")
    settings = _reject_fitness_cache(settings, "bandwidth_sensitivity")
    settings.library()  # build before any pool forks, so workers inherit
    cells = [
        (settings, network, node_nm, bandwidth, 500 + index)
        for index, bandwidth in enumerate(bandwidths_gb_s)
    ]
    runner = runner if runner is not None else settings.grid_runner()
    results = _patch_safe_runner(runner, len(cells)).run(
        ExecutionPlan.for_cells(_bandwidth_cell, cells)
    )

    rows = [
        (bandwidth, round(exact_g, 3), round(ga_g, 3), round(saving, 1))
        for bandwidth, (exact_g, ga_g, saving) in zip(bandwidths_gb_s, results)
    ]
    return SensitivityResult("dram_bandwidth_GB_s", tuple(rows))


def network_fps_table(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    node_nm: int = 7,
) -> Dict[str, Tuple[float, ...]]:
    """FPS of the exact NVDLA family per workload (context table)."""
    from repro.accel.nvdla import nvdla_family

    library = settings.library()
    result: Dict[str, Tuple[float, ...]] = {}
    for name in settings.networks:
        net = workload(name)
        result[name] = tuple(
            round(evaluate_network(net, config).fps, 1)
            for config in nvdla_family(library.exact, node_nm)
        )
    return result
