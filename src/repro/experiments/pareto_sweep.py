"""Constraint-space Pareto sweep (extension experiment).

The paper evaluates three accuracy tiers and three FPS thresholds
independently.  A designer shopping for an operating point wants the
whole surface: for every (min FPS, max drop) cell, what is the least
embodied carbon a GA-CDP design achieves?  This harness sweeps the
grid and reports the resulting carbon surface plus the 3-D Pareto
frontier over (carbon, -FPS, drop) — the "full trade-off map" the
paper's conclusion gestures at as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.designer import CarbonAwareDesigner
from repro.core.results import DesignPoint
from repro.engine.vectorized import pareto_front_np
from repro.errors import ExperimentError
from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    shared_predictor,
)
from repro.experiments.report import render_table


@dataclass(frozen=True)
class ParetoSweep:
    """GA-CDP designs over the (min FPS, max drop) constraint grid.

    Attributes:
        network: workload evaluated.
        node_nm: technology node.
        cells: (min_fps, max_drop) -> winning design.
    """

    network: str
    node_nm: int
    cells: Dict[Tuple[float, float], DesignPoint]

    def carbon_surface(self) -> List[List[object]]:
        """Rows of the carbon surface table (one row per FPS level)."""
        fps_levels = sorted({fps for fps, _ in self.cells})
        drop_levels = sorted({drop for _, drop in self.cells})
        rows: List[List[object]] = []
        for fps in fps_levels:
            row: List[object] = [fps]
            for drop in drop_levels:
                row.append(round(self.cells[(fps, drop)].carbon_g, 3))
            rows.append(row)
        return rows

    def render(self) -> str:
        drop_levels = sorted({drop for _, drop in self.cells})
        headers = ["min_fps \\ drop%"] + [f"{d:g}" for d in drop_levels]
        return render_table(
            headers,
            self.carbon_surface(),
            title=(
                f"Carbon surface (gCO2) — {self.network} @ {self.node_nm} nm, "
                "GA-CDP per constraint cell"
            ),
        )

    def frontier(self) -> List[DesignPoint]:
        """Non-dominated designs over (carbon, -FPS, drop)."""
        scored = [
            (
                point,
                (
                    point.carbon_g,
                    -point.fps,
                    point.accuracy_drop_percent,
                ),
            )
            for point in self.cells.values()
        ]
        return [point for point, _ in pareto_front_np(scored)]  # type: ignore[misc]


def pareto_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
) -> ParetoSweep:
    """Run GA-CDP on every (FPS, drop) constraint combination."""
    if not settings.fps_thresholds or not settings.drop_tiers_percent:
        raise ExperimentError("settings must define thresholds and tiers")
    library = settings.library()
    predictor = shared_predictor()

    cells: Dict[Tuple[float, float], DesignPoint] = {}
    for fps_index, min_fps in enumerate(settings.fps_thresholds):
        for drop_index, max_drop in enumerate(settings.drop_tiers_percent):
            designer = CarbonAwareDesigner(
                network=network,
                node_nm=node_nm,
                min_fps=min_fps,
                max_drop_percent=max_drop,
                library=library,
                predictor=predictor,
                ga_config=settings.ga_config(
                    seed_offset=600 + 10 * fps_index + drop_index
                ),
                **settings.designer_kwargs(),
            )
            cells[(min_fps, max_drop)] = designer.run().best
    return ParetoSweep(network=network, node_nm=node_nm, cells=cells)
