"""Constraint-space Pareto sweep (extension experiment).

The paper evaluates three accuracy tiers and three FPS thresholds
independently.  A designer shopping for an operating point wants the
whole surface: for every (min FPS, max drop) cell, what is the least
embodied carbon a GA-CDP design achieves?  This harness sweeps the
grid and reports the resulting carbon surface plus the 3-D Pareto
frontier over (carbon, -FPS, drop) — the "full trade-off map" the
paper's conclusion gestures at as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.results import DesignPoint
from repro.engine.grid import ExecutionPlan, GridRunner
from repro.engine.vectorized import pareto_front_np
from repro.errors import ExperimentError
from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    ga_cdp_point,
)
from repro.experiments.report import render_table


@dataclass(frozen=True)
class ParetoSweep:
    """GA-CDP designs over the (min FPS, max drop) constraint grid.

    Attributes:
        network: workload evaluated.
        node_nm: technology node.
        cells: (min_fps, max_drop) -> winning design.
    """

    network: str
    node_nm: int
    cells: Dict[Tuple[float, float], DesignPoint]

    def carbon_surface(self) -> List[List[object]]:
        """Rows of the carbon surface table (one row per FPS level)."""
        fps_levels = sorted({fps for fps, _ in self.cells})
        drop_levels = sorted({drop for _, drop in self.cells})
        rows: List[List[object]] = []
        for fps in fps_levels:
            row: List[object] = [fps]
            for drop in drop_levels:
                row.append(round(self.cells[(fps, drop)].carbon_g, 3))
            rows.append(row)
        return rows

    def render(self) -> str:
        drop_levels = sorted({drop for _, drop in self.cells})
        headers = ["min_fps \\ drop%"] + [f"{d:g}" for d in drop_levels]
        return render_table(
            headers,
            self.carbon_surface(),
            title=(
                f"Carbon surface (gCO2) — {self.network} @ {self.node_nm} nm, "
                "GA-CDP per constraint cell"
            ),
        )

    def frontier(self) -> List[DesignPoint]:
        """Non-dominated designs over (carbon, -FPS, drop)."""
        scored = [
            (
                point,
                (
                    point.carbon_g,
                    -point.fps,
                    point.accuracy_drop_percent,
                ),
            )
            for point in self.cells.values()
        ]
        return [point for point, _ in pareto_front_np(scored)]  # type: ignore[misc]


def pareto_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
    runner: Optional[GridRunner] = None,
) -> ParetoSweep:
    """Run GA-CDP on every (FPS, drop) constraint combination.

    Each constraint cell is one GA-CDP grid cell, sharded through the
    grid runner (the fab grid stays at the designer's default, as in
    the original serial harness).
    """
    if not settings.fps_thresholds or not settings.drop_tiers_percent:
        raise ExperimentError("settings must define thresholds and tiers")
    settings.library()  # build before any pool forks, so workers inherit

    keys: List[Tuple[float, float]] = []
    grid_cells = []
    for fps_index, min_fps in enumerate(settings.fps_thresholds):
        for drop_index, max_drop in enumerate(settings.drop_tiers_percent):
            keys.append((min_fps, max_drop))
            grid_cells.append(
                (
                    settings, network, node_nm, min_fps, max_drop,
                    600 + 10 * fps_index + drop_index, "taiwan",
                )
            )
    runner = runner if runner is not None else settings.grid_runner()
    results = runner.run(ExecutionPlan.for_cells(ga_cdp_point, grid_cells))
    return ParetoSweep(
        network=network, node_nm=node_nm, cells=dict(zip(keys, results))
    )
