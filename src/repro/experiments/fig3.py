"""Fig. 3 regeneration: normalised embodied carbon across workloads.

For every (network, node) cell the paper compares three designs that
all satisfy a 30 FPS threshold:

* **Exact** — smallest NVDLA family member meeting the threshold;
* **Approximate only** — the same architecture with the smallest
  multiplier within a 2% accuracy drop;
* **GA-CDP (proposed)** — the full methodology.

Carbon is normalised to the exact design per cell, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.baselines import (
    design_point_for,
    smallest_exact_meeting_fps,
)
from repro.core.designer import CarbonAwareDesigner
from repro.core.results import DesignPoint
from repro.engine.grid import ExecutionPlan, GridRunner
from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    shared_predictor,
)
from repro.experiments.report import render_table

#: Fig. 3's fixed constraints.
FIG3_MIN_FPS = 30.0
FIG3_MAX_DROP_PERCENT = 2.0


@dataclass(frozen=True)
class Fig3Cell:
    """One (network, node) comparison."""

    exact: DesignPoint
    approximate_only: DesignPoint
    ga_cdp: DesignPoint

    @property
    def normalised(self) -> Tuple[float, float, float]:
        """(exact, approx-only, ga-cdp) carbon normalised to exact."""
        base = self.exact.carbon_g
        return (
            1.0,
            self.approximate_only.carbon_g / base,
            self.ga_cdp.carbon_g / base,
        )

    @property
    def ga_savings_percent(self) -> float:
        return 100.0 * (1.0 - self.normalised[2])


@dataclass(frozen=True)
class Fig3Bars:
    """Fig. 3 data: (network, node) -> comparison cell."""

    cells: Dict[Tuple[str, int], Fig3Cell]

    def rows(self) -> List[List[object]]:
        table_rows: List[List[object]] = []
        for (network, node), cell in sorted(self.cells.items()):
            exact_n, approx_n, ga_n = cell.normalised
            table_rows.append(
                [
                    network,
                    node,
                    round(exact_n, 3),
                    round(approx_n, 3),
                    round(ga_n, 3),
                    round(cell.ga_savings_percent, 1),
                ]
            )
        return table_rows

    def render(self) -> str:
        return render_table(
            ["network", "node_nm", "exact", "approx_only", "ga_cdp", "ga_saving_%"],
            self.rows(),
            title=(
                "Fig. 3 — embodied carbon normalised to the exact "
                f"implementation (>= {FIG3_MIN_FPS:g} FPS, "
                f"<= {FIG3_MAX_DROP_PERCENT:g}% drop)"
            ),
        )

    def max_savings_percent(self) -> Dict[str, float]:
        """Best GA-CDP saving per network (the paper quotes 30-70%)."""
        best: Dict[str, float] = {}
        for (network, _node), cell in self.cells.items():
            best[network] = max(
                best.get(network, 0.0), cell.ga_savings_percent
            )
        return best


def _cell(
    network: str,
    node_nm: int,
    settings: ExperimentSettings,
    seed_offset: int,
) -> Fig3Cell:
    """One (network, node) grid cell (top-level so shards can pickle it)."""
    library = settings.library()
    predictor = shared_predictor()
    exact = smallest_exact_meeting_fps(
        network, library, node_nm, predictor, FIG3_MIN_FPS, grid=settings.grid
    )
    multiplier = predictor.smallest_feasible(
        network, library, FIG3_MAX_DROP_PERCENT
    )
    approx_only = design_point_for(
        exact.config.with_multiplier(multiplier),
        network,
        "approx_only",
        predictor,
        grid=settings.grid,
    )
    designer = CarbonAwareDesigner(
        network=network,
        node_nm=node_nm,
        min_fps=FIG3_MIN_FPS,
        max_drop_percent=FIG3_MAX_DROP_PERCENT,
        library=library,
        predictor=predictor,
        ga_config=settings.ga_config(seed_offset=seed_offset),
        grid=settings.grid,
        **settings.designer_kwargs(),
    )
    ga_best = designer.run().best
    return Fig3Cell(exact=exact, approximate_only=approx_only, ga_cdp=ga_best)


def fig3_comparison(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    runner: Optional[GridRunner] = None,
) -> Fig3Bars:
    """Regenerate Fig. 3 over the settings' networks and nodes.

    The (network, node) grid goes through the grid runner — sharded
    across the persistent process pool or serial, with identical
    results either way.
    """
    settings.library()  # build before any pool forks, so workers inherit
    keys: List[Tuple[str, int]] = []
    grid_cells: List[Tuple[str, int, ExperimentSettings, int]] = []
    for net_index, network in enumerate(settings.networks):
        for node_index, node_nm in enumerate(settings.nodes_nm):
            keys.append((network, node_nm))
            grid_cells.append(
                (network, node_nm, settings, net_index * 10 + node_index)
            )
    runner = runner if runner is not None else settings.grid_runner()
    results = runner.run(ExecutionPlan.for_cells(_cell, grid_cells))
    return Fig3Bars(cells=dict(zip(keys, results)))
