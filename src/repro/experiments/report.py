"""ASCII rendering of experiment outputs.

The benchmarks print the same rows/series the paper reports; these
helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Sequence, Tuple

from repro.errors import ExperimentError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ExperimentError("table needs headers")
    string_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in string_rows))
        if string_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in string_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Print scatter series as aligned (x, y) listings per label."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for label in series:
        lines.append(f"[{label}] ({x_label}, {y_label})")
        for x, y in series[label]:
            lines.append(f"    {x:10.2f}  {y:10.3f}")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
