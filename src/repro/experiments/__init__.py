"""Paper figure/table regeneration harnesses.

One module per paper artefact:

* :mod:`repro.experiments.fig2` — Fig. 2's carbon-vs-FPS scatter and
  its carbon-footprint-reduction table;
* :mod:`repro.experiments.fig3` — Fig. 3's normalised embodied-carbon
  comparison across networks and nodes;
* :mod:`repro.experiments.common` — shared settings and caches;
* :mod:`repro.experiments.report` — ASCII rendering of series/tables.
"""

from repro.experiments.common import ExperimentSettings, DEFAULT_SETTINGS
from repro.experiments.fig2 import (
    Fig2Scatter,
    Fig2Table,
    fig2_scatter,
    fig2_reduction_table,
)
from repro.experiments.fig3 import Fig3Bars, fig3_comparison
from repro.experiments.report import render_table, render_series

__all__ = [
    "ExperimentSettings",
    "DEFAULT_SETTINGS",
    "Fig2Scatter",
    "Fig2Table",
    "fig2_scatter",
    "fig2_reduction_table",
    "Fig3Bars",
    "fig3_comparison",
    "render_table",
    "render_series",
]
