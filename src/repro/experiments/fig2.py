"""Fig. 2 regeneration: carbon-vs-performance trade-off for VGG16.

Two artefacts:

* :func:`fig2_scatter` — the scatter: exact NVDLA sweep, approximate-
  only sweeps at each accuracy tier, and GA-CDP points at each FPS
  threshold (all carbon in gCO2, performance in FPS);
* :func:`fig2_reduction_table` — the embedded table: average and peak
  carbon-footprint reduction (%) of approximate-only designs over the
  sweep, per technology node and accuracy tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.baselines import approximate_only_sweep, exact_sweep
from repro.core.results import DesignPoint
from repro.engine.grid import ExecutionPlan, GridRunner
from repro.errors import ExperimentError
from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    ga_cdp_point,
    shared_predictor,
)
from repro.experiments.report import render_series, render_table


@dataclass(frozen=True)
class Fig2Scatter:
    """Fig. 2 scatter data.

    Attributes:
        network: workload plotted.
        node_nm: technology node.
        points: series label -> design points (exact / appx tiers /
            ga_cdp).
    """

    network: str
    node_nm: int
    points: Dict[str, Tuple[DesignPoint, ...]]

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        """(FPS, gCO2) pairs per series — the plotted quantities."""
        return {
            label: [(p.fps, p.carbon_g) for p in pts]
            for label, pts in self.points.items()
        }

    def render(self) -> str:
        return render_series(
            self.series(),
            x_label="FPS",
            y_label="gCO2",
            title=(
                f"Fig. 2 scatter — {self.network} @ {self.node_nm} nm "
                "(embodied carbon vs performance)"
            ),
        )


def fig2_scatter(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    node_nm: int = 7,
    runner: Optional[GridRunner] = None,
) -> Fig2Scatter:
    """Regenerate the Fig. 2 scatter.

    The exact series sweeps the NVDLA family; each ``appx_*`` series
    keeps those architectures and swaps in the smallest multiplier
    meeting the tier; each ``ga_cdp_<fps>`` point is a full GA-CDP run
    at that FPS threshold (with the loosest accuracy tier, as in the
    paper's GA experiments).  The GA cells go through the grid runner
    (sharded or serial — identical results either way).
    """
    library = settings.library()
    predictor = shared_predictor()

    points: Dict[str, Tuple[DesignPoint, ...]] = {
        "exact": tuple(
            exact_sweep(network, library, node_nm, predictor, grid=settings.grid)
        )
    }
    for tier in settings.drop_tiers_percent:
        points[f"appx_{tier:g}"] = tuple(
            approximate_only_sweep(
                network, library, node_nm, predictor, tier, grid=settings.grid
            )
        )

    loosest = max(settings.drop_tiers_percent)
    cells = [
        (settings, network, node_nm, min_fps, loosest, index + 1, settings.grid)
        for index, min_fps in enumerate(settings.fps_thresholds)
    ]
    runner = runner if runner is not None else settings.grid_runner()
    points["ga_cdp"] = tuple(
        runner.run(ExecutionPlan.for_cells(ga_cdp_point, cells))
    )

    return Fig2Scatter(network=network, node_nm=node_nm, points=points)


# --- the reduction table --------------------------------------------------------


@dataclass(frozen=True)
class Fig2Table:
    """Fig. 2's carbon-footprint-reduction table.

    Attributes:
        network: workload evaluated.
        reductions: (node_nm, tier) -> (avg_percent, peak_percent) over
            the NVDLA sweep.
    """

    network: str
    reductions: Dict[Tuple[int, float], Tuple[float, float]]

    def rows(self) -> List[List[object]]:
        """Table rows matching the paper's layout (Avg/Peak per node)."""
        nodes = sorted({node for node, _ in self.reductions})
        tiers = sorted({tier for _, tier in self.reductions})
        table_rows: List[List[object]] = []
        for node in nodes:
            avg_row: List[object] = [node, "Avg"]
            peak_row: List[object] = [node, "Peak"]
            for tier in tiers:
                avg, peak = self.reductions[(node, tier)]
                avg_row.append(round(avg, 2))
                peak_row.append(round(peak, 2))
            table_rows.append(avg_row)
            table_rows.append(peak_row)
        return table_rows

    def render(self) -> str:
        tiers = sorted({tier for _, tier in self.reductions})
        headers = ["node_nm", "type"] + [f"drop {t:g}%" for t in tiers]
        return render_table(
            headers,
            self.rows(),
            title=(
                f"Fig. 2 table — carbon footprint reduction (%) of "
                f"approximate-only designs, {self.network}"
            ),
        )


def _reduction_node_cell(
    settings: ExperimentSettings, network: str, node_nm: int
) -> List[Tuple[float, float, float]]:
    """Per-node grid cell for the Fig. 2 table: (tier, avg, peak) rows."""
    library = settings.library()
    predictor = shared_predictor()
    exact_points = exact_sweep(
        network, library, node_nm, predictor, grid=settings.grid
    )
    rows: List[Tuple[float, float, float]] = []
    for tier in settings.drop_tiers_percent:
        approx_points = approximate_only_sweep(
            network, library, node_nm, predictor, tier, grid=settings.grid
        )
        percent = [
            100.0 * (1.0 - a.carbon_g / e.carbon_g)
            for e, a in zip(exact_points, approx_points)
        ]
        if not percent:
            raise ExperimentError("empty sweep")
        rows.append((tier, sum(percent) / len(percent), max(percent)))
    return rows


def fig2_reduction_table(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    network: str = "vgg16",
    runner: Optional[GridRunner] = None,
) -> Fig2Table:
    """Regenerate the Fig. 2 reduction table.

    For each node and accuracy tier: swap multipliers on the NVDLA
    sweep, compute per-configuration carbon reduction vs exact, report
    the average and the peak over the family.  One grid cell per node.
    """
    settings.library()  # build before any pool forks, so workers inherit
    cells = [(settings, network, node_nm) for node_nm in settings.nodes_nm]
    runner = runner if runner is not None else settings.grid_runner()
    per_node = runner.run(ExecutionPlan.for_cells(_reduction_node_cell, cells))

    reductions: Dict[Tuple[int, float], Tuple[float, float]] = {}
    for node_nm, rows in zip(settings.nodes_nm, per_node):
        for tier, avg, peak in rows:
            reductions[(node_nm, tier)] = (avg, peak)
    return Fig2Table(network=network, reductions=reductions)
