"""Shared experiment configuration and caches.

Every experiment harness takes an :class:`ExperimentSettings`; the
default reproduces the paper's setup, while :func:`fast_settings`
shrinks the searches for unit tests and CI smoke runs.  The settings
also carry the execution policy: the population engine for individual
GA runs (``engine_mode``), the on-disk fitness cache (``cache_dir``),
and the grid-dispatch policy (``grid_mode``/``grid_workers``/
``grid_shards``/``grid_coordinator``) used by
:class:`~repro.engine.grid.GridRunner` to fan experiment cells out over
the configured execution backend — the persistent local process pool or
the multi-node remote coordinator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.accuracy.behavioral import BehavioralValidator
from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary, build_library
from repro.core.designer import CarbonAwareDesigner
from repro.core.results import DesignPoint
from repro.engine.grid import REMOTE_MODES, GridConfig, GridRunner
from repro.engine.population import EngineConfig
from repro.errors import ExperimentError
from repro.ga.engine import GaConfig
from repro.nn.inference import resolve_stack_workers
from repro.nn.synthetic import SyntheticTask


@dataclass(frozen=True)
class ExecutionProfile:
    """The execution knobs, grouped: one object instead of ten fields.

    :class:`ExperimentSettings` sprawls ten execution-policy fields
    across two dispatch stages (grid and accuracy) plus the inference
    tiling and kernel tier.  A profile carries all of them as one
    value, so call sites configure execution in one place::

        ExperimentSettings(profile=ExecutionProfile.parse(
            "process,workers=8,kernel=c"))

    Field semantics are identical to the matching
    :class:`ExperimentSettings` attributes.  A profile never overrides
    a legacy field that was set explicitly (see the merge rule on
    ``ExperimentSettings``), so existing keyword call sites keep
    working unchanged.
    """

    grid_mode: str = "auto"
    grid_workers: Optional[int] = None
    grid_shards: Optional[int] = None
    grid_coordinator: Optional[str] = None
    accuracy_mode: str = "auto"
    accuracy_workers: Optional[int] = None
    accuracy_shards: Optional[int] = None
    accuracy_coordinator: Optional[str] = None
    stack_workers: Optional[Union[int, str]] = None
    kernel_tier: Optional[str] = None
    task_deadline_s: Optional[float] = None

    #: keys accepted by :meth:`parse`; shorthands fan out to both stages
    _SHORTHANDS = {
        "workers": ("grid_workers", "accuracy_workers"),
        "shards": ("grid_shards", "accuracy_shards"),
        "coordinator": ("grid_coordinator", "accuracy_coordinator"),
        "kernel": ("kernel_tier",),
        "stack": ("stack_workers",),
        "deadline": ("task_deadline_s",),
    }
    _INT_FIELDS = (
        "grid_workers", "grid_shards", "accuracy_workers", "accuracy_shards",
    )
    _FLOAT_FIELDS = ("task_deadline_s",)

    @classmethod
    def parse(cls, spec: str) -> "ExecutionProfile":
        """Build a profile from a ``--profile`` string.

        Grammar: ``[MODE][,key=value]*``.  A leading bare ``MODE``
        token sets both ``grid_mode`` and ``accuracy_mode``; the
        shorthand keys ``workers`` / ``shards`` / ``coordinator``
        likewise apply to both stages, while stage-qualified keys
        (``grid_workers=8``, ``accuracy_mode=thread``) hit one field.
        ``kernel`` and ``stack`` abbreviate ``kernel_tier`` and
        ``stack_workers``.  Examples::

            --profile process
            --profile process,workers=8,kernel=c
            --profile remote,workers=0,coordinator=10.0.0.5:7777
            --profile process,accuracy_mode=thread,stack=4
        """
        field_names = {field.name for field in dataclasses.fields(cls)}
        values: dict = {}
        tokens = [token.strip() for token in spec.split(",") if token.strip()]
        if not tokens:
            raise ExperimentError(f"empty execution profile {spec!r}")
        if "=" not in tokens[0]:
            values["grid_mode"] = values["accuracy_mode"] = tokens[0]
            tokens = tokens[1:]
        for token in tokens:
            key, sep, raw = token.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not sep or not raw:
                raise ExperimentError(
                    f"bad profile token {token!r}; expected key=value"
                )
            targets = cls._SHORTHANDS.get(key) or (
                (key,) if key in field_names else None
            )
            if targets is None:
                raise ExperimentError(
                    f"unknown profile key {key!r}; expected one of "
                    f"{sorted(field_names | set(cls._SHORTHANDS))}"
                )
            for target in targets:
                if target in cls._INT_FIELDS or (
                    target == "stack_workers" and raw != "auto"
                ):
                    try:
                        values[target] = int(raw)
                    except ValueError as exc:
                        raise ExperimentError(
                            f"profile key {key!r} needs an integer, "
                            f"got {raw!r}"
                        ) from exc
                elif target in cls._FLOAT_FIELDS:
                    try:
                        values[target] = float(raw)
                    except ValueError as exc:
                        raise ExperimentError(
                            f"profile key {key!r} needs a number, "
                            f"got {raw!r}"
                        ) from exc
                else:
                    values[target] = raw
        return cls(**values)


#: ExperimentSettings fields an ExecutionProfile groups (merge targets).
_PROFILE_FIELDS = tuple(
    field.name for field in dataclasses.fields(ExecutionProfile)
)


#: Trajectory declaration for :class:`ExperimentSettings` (see the
#: FPR001 rule in :mod:`repro.analysis`).  These are the knobs that
#: shape *what* the searches compute; everything else is execution
#: policy (bit-identical results by the engine contract) or a
#: per-cell grid axis keyed into fingerprints individually by the
#: harnesses.
SETTINGS_TRAJECTORY_FIELDS = (
    "library_population",
    "library_generations",
    "ga_population",
    "ga_generations",
    "seed",
    "grid",
)


@dataclass(frozen=True)
class ExperimentSettings:  # repro: fingerprinted[SETTINGS_TRAJECTORY_FIELDS]
    """Knobs shared by all experiment harnesses.

    The trajectory-determining subset is declared in
    ``SETTINGS_TRAJECTORY_FIELDS`` and digested by
    :meth:`trajectory_fingerprint`; every other field is annotated
    non-trajectory in place (the ``repro.analysis`` FPR001 rule keeps
    the split complete as fields come and go).

    Attributes:
        nodes_nm: technology nodes to evaluate.
        networks: workload names.
        fps_thresholds: performance constraints (Fig. 2's 30/40/50).
        drop_tiers_percent: accuracy-drop tiers (0.5/1/2).
        library_population: NSGA-II population for the multiplier
            library.
        library_generations: NSGA-II generations.
        ga_population: architecture-GA population.
        ga_generations: architecture-GA generations.
        seed: master seed for both searches.
        grid: fab grid profile.
        engine_mode: population-evaluation mode for the GA runs
            (``auto`` resolves to the vectorized batch path; every mode
            returns bit-identical designs).
        cache_dir: optional directory for the on-disk fitness cache, so
            re-running a harness (or another harness sharing settings)
            warm-starts instead of re-simulating.  Also feeds the step-1
            library build, whose NSGA-II objectives persist per context.
        checkpoint_dir: optional directory for per-generation search
            checkpoints (library NSGA-II and every GA-CDP run); a
            killed harness keeps its finished generations.
        resume: resume killed searches from their ``checkpoint_dir``
            slots — bit-identical results to an uninterrupted run;
            requires ``checkpoint_dir``, and a slot written under
            different settings refuses with
            :class:`~repro.errors.CheckpointError`.
        grid_mode: execution backend for the experiment grids
            (``auto`` / ``serial`` / ``thread`` / ``process`` /
            ``remote``; every backend returns identical, identically
            ordered results).
        grid_workers: worker count for the sharded grid modes; in
            ``remote`` mode the number of locally spawned worker
            daemons (``0`` = external workers only).
        grid_shards: shard count override (default: one per worker;
            one per cell in ``remote`` mode).
        grid_coordinator: ``HOST:PORT`` the remote coordinator binds
            (default loopback/ephemeral); bind a routable host to let
            workers on other machines connect.
        stack_workers: thread-tiling knob for the stacked LUT inference
            (``"auto"`` / positive int / ``None`` for the process
            default); every value returns bit-identical drops.
        kernel_tier: compiled-kernel tier for the batched hot loops
            (``auto`` / ``numpy`` / ``numba`` / ``c`` / ``None`` for
            the ambient ``REPRO_KERNEL_TIER`` default; see
            :mod:`repro.engine.kernels`).  Every tier returns
            bit-identical results; an unavailable tier degrades to
            numpy with a warning, so it is not part of any cache or
            checkpoint key.
        accuracy_mode: execution backend for the behavioural accuracy
            stage (``auto`` / ``serial`` / ``thread`` / ``process`` /
            ``remote``) — library scoring shards multiplier sub-stacks
            across it, bit-identical to serial in every mode.
        accuracy_workers: worker count for the sharded accuracy modes;
            in ``remote`` mode the number of locally spawned daemons.
        accuracy_shards: sub-stack count override for the accuracy
            stage (default: one per worker).
        accuracy_coordinator: ``HOST:PORT`` for a ``remote`` accuracy
            stage (falls back to ``grid_coordinator``).
        task_deadline_s: per-task deadline in seconds for the remote
            stages (CLI ``--task-deadline``) — a shard unacked past it
            is revoked from its (presumably hung) worker and requeued;
            the late result is discarded, so results stay bit-identical
            to serial.  Ignored by the local modes; ``None`` (default)
            waits forever.
        profile: the ten execution knobs above, grouped as one
            :class:`ExecutionProfile` (e.g. from ``--profile``).  Merge
            rule: a legacy field set away from its default wins over
            the profile; fields left at their default take the
            profile's value.  After construction ``settings.profile``
            is always the *canonical* profile reflecting the effective
            execution policy, whichever spelling configured it.
    """

    # repro: non-trajectory[grid axis: harnesses key fingerprints per cell]
    nodes_nm: Tuple[int, ...] = (7, 14, 28)
    # repro: non-trajectory[grid axis: harnesses key fingerprints per cell]
    networks: Tuple[str, ...] = ("vgg16", "vgg19", "resnet50", "resnet152")
    # repro: non-trajectory[grid axis: harnesses key fingerprints per cell]
    fps_thresholds: Tuple[float, ...] = (30.0, 40.0, 50.0)
    # repro: non-trajectory[grid axis: harnesses key fingerprints per cell]
    drop_tiers_percent: Tuple[float, ...] = (0.5, 1.0, 2.0)
    library_population: int = 40
    library_generations: int = 36
    ga_population: int = 24
    ga_generations: int = 30
    seed: int = 0
    grid: str = "taiwan"
    # repro: non-trajectory[execution policy: every mode is bit-identical]
    engine_mode: str = "auto"
    # repro: non-trajectory[cache location: warm-start only, results equal]
    cache_dir: Optional[str] = None
    # repro: non-trajectory[durability location: results bit-identical]
    checkpoint_dir: Optional[str] = None
    # repro: non-trajectory[resume is bit-identical to an unkilled run]
    resume: bool = False
    # repro: non-trajectory[execution policy: every backend bit-identical]
    grid_mode: str = "auto"
    # repro: non-trajectory[execution policy: every backend bit-identical]
    grid_workers: Optional[int] = None
    # repro: non-trajectory[execution policy: every backend bit-identical]
    grid_shards: Optional[int] = None
    # repro: non-trajectory[execution policy: every backend bit-identical]
    grid_coordinator: Optional[str] = None
    # repro: non-trajectory[execution policy: tiling is bit-identical]
    stack_workers: Optional[Union[int, str]] = None
    # repro: non-trajectory[kernel tiers are bit-identical by contract]
    kernel_tier: Optional[str] = None
    # repro: non-trajectory[execution policy: every backend bit-identical]
    accuracy_mode: str = "auto"
    # repro: non-trajectory[execution policy: every backend bit-identical]
    accuracy_workers: Optional[int] = None
    # repro: non-trajectory[execution policy: every backend bit-identical]
    accuracy_shards: Optional[int] = None
    # repro: non-trajectory[execution policy: every backend bit-identical]
    accuracy_coordinator: Optional[str] = None
    # repro: non-trajectory[recovery policy: late results are discarded]
    task_deadline_s: Optional[float] = None
    # repro: non-trajectory[canonical grouping of the execution knobs]
    profile: Optional[Union[ExecutionProfile, str]] = None

    def __post_init__(self) -> None:
        # fold the profile into the legacy knobs first (explicitly set
        # legacy fields win), then re-derive the canonical profile so
        # both spellings of the same policy compare and validate alike
        if self.profile is not None:
            if isinstance(self.profile, str):
                object.__setattr__(
                    self, "profile", ExecutionProfile.parse(self.profile)
                )
            defaults = {
                field.name: field.default
                for field in dataclasses.fields(type(self))
            }
            for name in _PROFILE_FIELDS:
                if getattr(self, name) == defaults[name]:
                    object.__setattr__(
                        self, name, getattr(self.profile, name)
                    )
        object.__setattr__(
            self,
            "profile",
            ExecutionProfile(
                **{name: getattr(self, name) for name in _PROFILE_FIELDS}
            ),
        )
        if not self.nodes_nm or not self.networks:
            raise ExperimentError("settings need at least one node and network")
        if not self.fps_thresholds or not self.drop_tiers_percent:
            raise ExperimentError("settings need thresholds and tiers")
        if self.stack_workers is not None:
            resolve_stack_workers(self.stack_workers)  # fail fast on typos
        from repro.engine.kernels import validate_kernel_tier

        validate_kernel_tier(self.kernel_tier)  # fail fast on typos
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ExperimentError(
                f"task_deadline_s must be > 0, got {self.task_deadline_s}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ExperimentError(
                "resume=True needs checkpoint_dir: there is nowhere to "
                "resume from"
            )

    def trajectory_fingerprint(self) -> str:
        """Digest of every trajectory-determining setting.

        Built from exactly ``SETTINGS_TRAJECTORY_FIELDS`` via
        :func:`repro.engine.checkpoint.trajectory_parts`, so two
        settings objects share a fingerprint iff they run the same
        searches — execution policy (backends, workers, kernel tiers,
        cache/checkpoint locations) never perturbs it.  This is the
        stable job key for anything persisting results across runs.
        """
        from repro.engine.checkpoint import (
            checkpoint_fingerprint,
            trajectory_parts,
        )

        return checkpoint_fingerprint(
            "experiment-settings",
            trajectory_parts(self, SETTINGS_TRAJECTORY_FIELDS),
        )

    def library(self) -> ApproxLibrary:
        """The (cached) step-1 multiplier library for these settings.

        Routed through the population engine and the on-disk objective
        cache, so the NSGA-II library search benefits from the same
        execution policy as the architecture GA.
        """
        return build_library(
            population=self.library_population,
            generations=self.library_generations,
            seed=self.seed,
            engine=self.engine(),
            cache_dir=self.cache_dir,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
        )

    def ga_config(self, seed_offset: int = 0) -> GaConfig:
        """Architecture-GA configuration (offset decorrelates runs)."""
        return GaConfig(
            population_size=self.ga_population,
            generations=self.ga_generations,
            seed=self.seed + seed_offset,
        )

    def engine(self) -> EngineConfig:
        """Population-evaluation policy for the GA runs."""
        return EngineConfig(mode=self.engine_mode, kernel_tier=self.kernel_tier)

    def designer_kwargs(self) -> dict:
        """Engine/cache/checkpoint kwargs shared by every GA-CDP run."""
        return {
            "engine": self.engine(),
            "cache_dir": self.cache_dir,
            "checkpoint_dir": self.checkpoint_dir,
            "resume": self.resume,
        }

    def grid_runner(self) -> GridRunner:
        """Cell-dispatch policy for the experiment grids."""
        return GridRunner(
            GridConfig(
                mode=self.grid_mode,
                workers=self.grid_workers,
                shards=self.grid_shards,
                coordinator=self.grid_coordinator,
                # a deadline only makes sense where work can hang on a
                # remote worker; local modes ignore it
                task_deadline_s=(
                    self.task_deadline_s
                    if self.grid_mode in REMOTE_MODES
                    else None
                ),
            )
        )

    def accuracy_runner(self) -> GridRunner:
        """Sub-stack dispatch policy for the behavioural accuracy stage."""
        if self.accuracy_coordinator is not None and self.accuracy_mode != "remote":
            # mirror GridConfig's check: an explicitly configured
            # coordinator must not be silently ignored while the user's
            # worker fleet waits on a stage that runs locally
            raise ExperimentError(
                "accuracy_coordinator is only meaningful with "
                f"accuracy_mode='remote', got accuracy_mode={self.accuracy_mode!r}"
            )
        # grid_coordinator doubles as the fallback bind address, but only
        # once the accuracy stage itself opted into remote dispatch
        coordinator = self.accuracy_coordinator or self.grid_coordinator
        return GridRunner(
            GridConfig(
                mode=self.accuracy_mode,
                workers=self.accuracy_workers,
                shards=self.accuracy_shards,
                coordinator=(
                    coordinator if self.accuracy_mode == "remote" else None
                ),
                task_deadline_s=(
                    self.task_deadline_s
                    if self.accuracy_mode in REMOTE_MODES
                    else None
                ),
            )
        )

    def validator(
        self, task: Optional[SyntheticTask] = None
    ) -> BehavioralValidator:
        """A behavioural validator wired to these settings' execution policy.

        The returned validator tiles the stacked inference across
        ``stack_workers`` threads and shards library-wide queries over
        the ``accuracy_mode`` backend; drops are bit-identical to the
        plain in-process validator for every configuration.
        """
        return BehavioralValidator(
            task=task,
            stack_workers=self.stack_workers,
            kernel_tier=self.kernel_tier,
            runner=self.accuracy_runner(),
        )


DEFAULT_SETTINGS = ExperimentSettings()

#: One predictor shared process-wide so accuracy lookups stay memoised.
_SHARED_PREDICTOR = AccuracyPredictor()


def shared_predictor() -> AccuracyPredictor:
    """Process-wide accuracy predictor (cache reuse across harnesses)."""
    return _SHARED_PREDICTOR


def fast_settings(seed: int = 0) -> ExperimentSettings:
    """Reduced settings for tests: small searches, two workloads."""
    return ExperimentSettings(
        nodes_nm=(7, 14),
        networks=("vgg16", "resnet50"),
        fps_thresholds=(30.0,),
        drop_tiers_percent=(1.0, 2.0),
        library_population=12,
        library_generations=5,
        ga_population=12,
        ga_generations=8,
        seed=seed,
    )


def ga_cdp_point(
    settings: ExperimentSettings,
    network: str,
    node_nm: int,
    min_fps: float,
    max_drop_percent: float,
    seed_offset: int,
    grid: Union[str, float],
) -> DesignPoint:
    """One GA-CDP grid cell: the winning design for one constraint set.

    Module-level (and argument-closed) so :class:`GridRunner` process
    shards can pickle it; the library and predictor come from the
    process-wide memo caches, which forked workers inherit warm.
    """
    designer = CarbonAwareDesigner(
        network=network,
        node_nm=node_nm,
        min_fps=min_fps,
        max_drop_percent=max_drop_percent,
        library=settings.library(),
        predictor=shared_predictor(),
        ga_config=settings.ga_config(seed_offset=seed_offset),
        grid=grid,
        **settings.designer_kwargs(),
    )
    return designer.run().best
