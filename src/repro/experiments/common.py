"""Shared experiment configuration and caches.

Every experiment harness takes an :class:`ExperimentSettings`; the
default reproduces the paper's setup, while :func:`fast_settings`
shrinks the searches for unit tests and CI smoke runs.  The settings
also carry the execution policy: the population engine for individual
GA runs (``engine_mode``), the on-disk fitness cache (``cache_dir``),
and the grid-dispatch policy (``grid_mode``/``grid_workers``/
``grid_shards``/``grid_coordinator``) used by
:class:`~repro.engine.grid.GridRunner` to fan experiment cells out over
the configured execution backend — the persistent local process pool or
the multi-node remote coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary, build_library
from repro.core.designer import CarbonAwareDesigner
from repro.core.results import DesignPoint
from repro.engine.grid import GridConfig, GridRunner
from repro.engine.population import EngineConfig
from repro.errors import ExperimentError
from repro.ga.engine import GaConfig


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment harnesses.

    Attributes:
        nodes_nm: technology nodes to evaluate.
        networks: workload names.
        fps_thresholds: performance constraints (Fig. 2's 30/40/50).
        drop_tiers_percent: accuracy-drop tiers (0.5/1/2).
        library_population: NSGA-II population for the multiplier
            library.
        library_generations: NSGA-II generations.
        ga_population: architecture-GA population.
        ga_generations: architecture-GA generations.
        seed: master seed for both searches.
        grid: fab grid profile.
        engine_mode: population-evaluation mode for the GA runs
            (``auto`` resolves to the vectorized batch path; every mode
            returns bit-identical designs).
        cache_dir: optional directory for the on-disk fitness cache, so
            re-running a harness (or another harness sharing settings)
            warm-starts instead of re-simulating.  Also feeds the step-1
            library build, whose NSGA-II objectives persist per context.
        grid_mode: execution backend for the experiment grids
            (``auto`` / ``serial`` / ``thread`` / ``process`` /
            ``remote``; every backend returns identical, identically
            ordered results).
        grid_workers: worker count for the sharded grid modes; in
            ``remote`` mode the number of locally spawned worker
            daemons (``0`` = external workers only).
        grid_shards: shard count override (default: one per worker;
            one per cell in ``remote`` mode).
        grid_coordinator: ``HOST:PORT`` the remote coordinator binds
            (default loopback/ephemeral); bind a routable host to let
            workers on other machines connect.
    """

    nodes_nm: Tuple[int, ...] = (7, 14, 28)
    networks: Tuple[str, ...] = ("vgg16", "vgg19", "resnet50", "resnet152")
    fps_thresholds: Tuple[float, ...] = (30.0, 40.0, 50.0)
    drop_tiers_percent: Tuple[float, ...] = (0.5, 1.0, 2.0)
    library_population: int = 40
    library_generations: int = 36
    ga_population: int = 24
    ga_generations: int = 30
    seed: int = 0
    grid: str = "taiwan"
    engine_mode: str = "auto"
    cache_dir: Optional[str] = None
    grid_mode: str = "auto"
    grid_workers: Optional[int] = None
    grid_shards: Optional[int] = None
    grid_coordinator: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.nodes_nm or not self.networks:
            raise ExperimentError("settings need at least one node and network")
        if not self.fps_thresholds or not self.drop_tiers_percent:
            raise ExperimentError("settings need thresholds and tiers")

    def library(self) -> ApproxLibrary:
        """The (cached) step-1 multiplier library for these settings.

        Routed through the population engine and the on-disk objective
        cache, so the NSGA-II library search benefits from the same
        execution policy as the architecture GA.
        """
        return build_library(
            population=self.library_population,
            generations=self.library_generations,
            seed=self.seed,
            engine=self.engine(),
            cache_dir=self.cache_dir,
        )

    def ga_config(self, seed_offset: int = 0) -> GaConfig:
        """Architecture-GA configuration (offset decorrelates runs)."""
        return GaConfig(
            population_size=self.ga_population,
            generations=self.ga_generations,
            seed=self.seed + seed_offset,
        )

    def engine(self) -> EngineConfig:
        """Population-evaluation policy for the GA runs."""
        return EngineConfig(mode=self.engine_mode)

    def designer_kwargs(self) -> dict:
        """Engine/cache keyword arguments shared by every GA-CDP run."""
        return {"engine": self.engine(), "cache_dir": self.cache_dir}

    def grid_runner(self) -> GridRunner:
        """Cell-dispatch policy for the experiment grids."""
        return GridRunner(
            GridConfig(
                mode=self.grid_mode,
                workers=self.grid_workers,
                shards=self.grid_shards,
                coordinator=self.grid_coordinator,
            )
        )


DEFAULT_SETTINGS = ExperimentSettings()

#: One predictor shared process-wide so accuracy lookups stay memoised.
_SHARED_PREDICTOR = AccuracyPredictor()


def shared_predictor() -> AccuracyPredictor:
    """Process-wide accuracy predictor (cache reuse across harnesses)."""
    return _SHARED_PREDICTOR


def fast_settings(seed: int = 0) -> ExperimentSettings:
    """Reduced settings for tests: small searches, two workloads."""
    return ExperimentSettings(
        nodes_nm=(7, 14),
        networks=("vgg16", "resnet50"),
        fps_thresholds=(30.0,),
        drop_tiers_percent=(1.0, 2.0),
        library_population=12,
        library_generations=5,
        ga_population=12,
        ga_generations=8,
        seed=seed,
    )


def ga_cdp_point(
    settings: ExperimentSettings,
    network: str,
    node_nm: int,
    min_fps: float,
    max_drop_percent: float,
    seed_offset: int,
    grid: Union[str, float],
) -> DesignPoint:
    """One GA-CDP grid cell: the winning design for one constraint set.

    Module-level (and argument-closed) so :class:`GridRunner` process
    shards can pickle it; the library and predictor come from the
    process-wide memo caches, which forked workers inherit warm.
    """
    designer = CarbonAwareDesigner(
        network=network,
        node_nm=node_nm,
        min_fps=min_fps,
        max_drop_percent=max_drop_percent,
        library=settings.library(),
        predictor=shared_predictor(),
        ga_config=settings.ga_config(seed_offset=seed_offset),
        grid=grid,
        **settings.designer_kwargs(),
    )
    return designer.run().best
