"""Embodied-carbon equations (the paper's Eq. 1 and Eq. 2).

.. math::

    CFPA = (CI_{fab} \\cdot EPA + C_{gas} + C_{material}) / Y

    C_{embodied} = CFPA \\cdot A_{die} + CFPA_{Si} \\cdot A_{wasted}

``CFPA_Si`` covers the wasted wafer area: that silicon is fully
processed (it consumes fab energy and gases like any other area) but is
never tested or binned, so no yield division applies to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.carbon.nodes import TechnologyNode, technology_node
from repro.carbon.wafer import (
    DEFAULT_WAFER,
    WaferSpec,
    dies_per_wafer,
    murphy_yield,
    wasted_area_per_die_mm2,
)
from repro.errors import CarbonModelError
from repro.units import kg_per_cm2_to_g_per_mm2

#: Grid carbon intensity profiles in gCO2 per kWh.
GRID_PROFILES: Dict[str, float] = {
    "coal": 820.0,
    "world_average": 475.0,
    "taiwan": 560.0,
    "south_korea": 415.0,
    "renewable": 50.0,
}

DEFAULT_GRID = "taiwan"

YieldModel = Callable[[float, float], float]

#: Yield model used when callers do not pass one explicitly.  A module
#: attribute (not a function default) so sensitivity sweeps can swap it
#: under try/finally without touching every call site.
DEFAULT_YIELD_MODEL: YieldModel = murphy_yield


@dataclass(frozen=True)
class CarbonBreakdown:
    """Embodied carbon of one die with all intermediate quantities.

    Attributes:
        node_nm: technology node.
        die_area_mm2: logic+memory die area.
        cfpa_g_per_mm2: yielded carbon footprint per die area (Eq. 2).
        cfpa_si_g_per_mm2: un-yielded footprint of wasted wafer area.
        yield_fraction: die yield used in Eq. 2.
        dies_per_wafer: gross dies on the wafer.
        wasted_area_mm2: wafer waste amortised to this die.
        die_carbon_g: ``CFPA * A_die``.
        wasted_carbon_g: ``CFPA_Si * A_wasted``.
    """

    node_nm: int
    die_area_mm2: float
    cfpa_g_per_mm2: float
    cfpa_si_g_per_mm2: float
    yield_fraction: float
    dies_per_wafer: int
    wasted_area_mm2: float
    die_carbon_g: float
    wasted_carbon_g: float

    @property
    def total_g(self) -> float:
        """Total embodied carbon in gCO2 (Eq. 1)."""
        return self.die_carbon_g + self.wasted_carbon_g


def cfpa_g_per_mm2(
    node: TechnologyNode,
    grid_gco2_per_kwh: float,
    yield_fraction: float,
) -> float:
    """Eq. 2: carbon footprint per unit die area, in gCO2/mm^2.

    Args:
        node: fab parameter set.
        grid_gco2_per_kwh: carbon intensity of the fab's electricity.
        yield_fraction: die yield in (0, 1].
    """
    if grid_gco2_per_kwh <= 0:
        raise CarbonModelError(
            f"grid carbon intensity must be positive, got {grid_gco2_per_kwh}"
        )
    if not 0.0 < yield_fraction <= 1.0:
        raise CarbonModelError(
            f"yield must be in (0, 1], got {yield_fraction}"
        )
    energy_kg_per_cm2 = grid_gco2_per_kwh * node.epa_kwh_per_cm2 / 1000.0
    unyielded_kg_per_cm2 = (
        energy_kg_per_cm2 + node.gpa_kg_per_cm2 + node.mpa_kg_per_cm2
    )
    return kg_per_cm2_to_g_per_mm2(unyielded_kg_per_cm2) / yield_fraction


def _cfpa_si_g_per_mm2(node: TechnologyNode, grid_gco2_per_kwh: float) -> float:
    """Footprint of processed-but-wasted wafer area (no yield division)."""
    energy_kg_per_cm2 = grid_gco2_per_kwh * node.epa_kwh_per_cm2 / 1000.0
    return kg_per_cm2_to_g_per_mm2(
        energy_kg_per_cm2 + node.gpa_kg_per_cm2 + node.mpa_kg_per_cm2
    )


def embodied_carbon(
    die_area_mm2: float,
    node_nm: int,
    grid: str | float = DEFAULT_GRID,
    wafer: WaferSpec = DEFAULT_WAFER,
    yield_model: YieldModel | None = None,
) -> CarbonBreakdown:
    """Eq. 1 for a monolithic die.

    Args:
        die_area_mm2: total die area.
        node_nm: technology node (7/14/28).
        grid: profile name from :data:`GRID_PROFILES` or a numeric
            gCO2/kWh intensity.
        wafer: wafer geometry.
        yield_model: die-yield model ``f(area_mm2, defect_density)``;
            defaults to :data:`DEFAULT_YIELD_MODEL` (Murphy).

    Returns:
        Full carbon breakdown; ``total_g`` is Eq. 1's left-hand side.
    """
    if die_area_mm2 <= 0:
        raise CarbonModelError(f"die area must be positive, got {die_area_mm2}")
    node = technology_node(node_nm)
    intensity = _resolve_grid(grid)

    if yield_model is None:
        yield_model = DEFAULT_YIELD_MODEL
    yield_fraction = yield_model(die_area_mm2, node.defect_density_per_cm2)
    if not 0.0 < yield_fraction <= 1.0:
        raise CarbonModelError(
            f"yield model returned {yield_fraction}; expected (0, 1]"
        )

    cfpa = cfpa_g_per_mm2(node, intensity, yield_fraction)
    cfpa_si = _cfpa_si_g_per_mm2(node, intensity)
    wasted = wasted_area_per_die_mm2(die_area_mm2, wafer)

    return CarbonBreakdown(
        node_nm=node_nm,
        die_area_mm2=die_area_mm2,
        cfpa_g_per_mm2=cfpa,
        cfpa_si_g_per_mm2=cfpa_si,
        yield_fraction=yield_fraction,
        dies_per_wafer=dies_per_wafer(die_area_mm2, wafer),
        wasted_area_mm2=wasted,
        die_carbon_g=cfpa * die_area_mm2,
        wasted_carbon_g=cfpa_si * wasted,
    )


def _resolve_grid(grid: str | float) -> float:
    if isinstance(grid, str):
        try:
            return GRID_PROFILES[grid]
        except KeyError:
            raise CarbonModelError(
                f"unknown grid profile {grid!r}; "
                f"known: {sorted(GRID_PROFILES)}"
            ) from None
    return float(grid)
