"""Embodied-carbon substrate (ACT / ECO-CHIP style).

Implements the paper's Eq. 1 and Eq. 2:

.. math::

    C_{embodied} = CFPA \\cdot A_{die} + CFPA_{Si} \\cdot A_{wasted}

    CFPA = \\frac{CI_{fab} \\cdot EPA + C_{gas} + C_{material}}{Y}

with a per-node fab parameter database (:mod:`repro.carbon.nodes`),
wafer geometry and yield models (:mod:`repro.carbon.wafer`), the carbon
equations themselves (:mod:`repro.carbon.act`), an accelerator-level
aggregator (:mod:`repro.carbon.accelerator_carbon`) and an operational
carbon extension (:mod:`repro.carbon.operational`).
"""

from repro.carbon.nodes import TechnologyNode, technology_node, SUPPORTED_NODES
from repro.carbon.wafer import (
    WaferSpec,
    dies_per_wafer,
    poisson_yield,
    murphy_yield,
    wasted_area_per_die_mm2,
)
from repro.carbon.act import (
    CarbonBreakdown,
    GRID_PROFILES,
    cfpa_g_per_mm2,
    embodied_carbon,
)
from repro.carbon.accelerator_carbon import (
    DieAreaBreakdown,
    AcceleratorCarbon,
    accelerator_embodied_carbon,
)
from repro.carbon.operational import OperationalModel, operational_carbon

__all__ = [
    "TechnologyNode",
    "technology_node",
    "SUPPORTED_NODES",
    "WaferSpec",
    "dies_per_wafer",
    "poisson_yield",
    "murphy_yield",
    "wasted_area_per_die_mm2",
    "CarbonBreakdown",
    "GRID_PROFILES",
    "cfpa_g_per_mm2",
    "embodied_carbon",
    "DieAreaBreakdown",
    "AcceleratorCarbon",
    "accelerator_embodied_carbon",
    "OperationalModel",
    "operational_carbon",
]
