"""Operational (use-phase) carbon model.

The paper optimises *embodied* carbon — its motivation is that embodied
emissions dominate for edge inference [Gupta et al., HPCA'21].  This
module provides the complementary use-phase model so the ablation
benchmarks can test that claim inside our reproduction: given a design's
energy per inference and a deployment scenario, how many inferences does
it take before operational carbon catches up with embodied carbon?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.nodes import TechnologyNode, technology_node
from repro.errors import CarbonModelError

#: Energy per 8-bit MAC operation, in picojoules, per node.  Representative
#: of published accelerator surveys (Horowitz-style scaling).
_MAC_ENERGY_PJ = {7: 0.20, 14: 0.45, 28: 1.10}

#: Energy per byte of on-chip SRAM access (pJ/byte).
_SRAM_ENERGY_PJ_PER_BYTE = {7: 0.8, 14: 1.5, 28: 2.8}

#: Energy per byte of off-chip DRAM access (pJ/byte); node independent
#: to first order (dominated by the interface, not the core).
_DRAM_ENERGY_PJ_PER_BYTE = 20.0


@dataclass(frozen=True)
class OperationalModel:
    """Per-inference energy accounting for one accelerator design.

    Attributes:
        node_nm: technology node.
        macs_per_inference: MAC operations executed per inference.
        sram_bytes_per_inference: on-chip buffer traffic per inference.
        dram_bytes_per_inference: off-chip traffic per inference.
        static_power_w: leakage + clocking power while active.
        latency_s: time per inference (for static energy integration).
    """

    node_nm: int
    macs_per_inference: float
    sram_bytes_per_inference: float
    dram_bytes_per_inference: float
    static_power_w: float = 0.0
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "macs_per_inference",
            "sram_bytes_per_inference",
            "dram_bytes_per_inference",
            "static_power_w",
            "latency_s",
        ):
            if getattr(self, name) < 0:
                raise CarbonModelError(f"{name} cannot be negative")

    @property
    def node(self) -> TechnologyNode:
        return technology_node(self.node_nm)

    def energy_per_inference_j(self) -> float:
        """Dynamic + static energy per inference in joules."""
        if self.node_nm not in _MAC_ENERGY_PJ:
            raise CarbonModelError(
                f"no energy data for node {self.node_nm} nm"
            )
        dynamic_pj = (
            self.macs_per_inference * _MAC_ENERGY_PJ[self.node_nm]
            + self.sram_bytes_per_inference
            * _SRAM_ENERGY_PJ_PER_BYTE[self.node_nm]
            + self.dram_bytes_per_inference * _DRAM_ENERGY_PJ_PER_BYTE
        )
        static_j = self.static_power_w * self.latency_s
        return dynamic_pj * 1e-12 + static_j


def operational_carbon(
    model: OperationalModel,
    inferences: float,
    grid_gco2_per_kwh: float = 475.0,
) -> float:
    """Use-phase carbon (gCO2) of running ``inferences`` inferences.

    Args:
        model: per-inference energy model.
        inferences: lifetime inference count.
        grid_gco2_per_kwh: deployment-site grid intensity.
    """
    if inferences < 0:
        raise CarbonModelError(f"inference count cannot be negative: {inferences}")
    if grid_gco2_per_kwh <= 0:
        raise CarbonModelError("grid intensity must be positive")
    energy_kwh = model.energy_per_inference_j() * inferences / 3.6e6
    return energy_kwh * grid_gco2_per_kwh


def break_even_inferences(
    model: OperationalModel,
    embodied_g: float,
    grid_gco2_per_kwh: float = 475.0,
) -> float:
    """Inferences needed for use-phase carbon to equal embodied carbon."""
    if embodied_g < 0:
        raise CarbonModelError("embodied carbon cannot be negative")
    per_inference_g = operational_carbon(model, 1.0, grid_gco2_per_kwh)
    if per_inference_g == 0.0:
        return float("inf")
    return embodied_g / per_inference_g
