"""Accelerator-level embodied-carbon aggregation.

Bridges the architecture model (which knows die areas per component)
and the ACT equations (which turn area into gCO2).  Kept separate from
:mod:`repro.accel` so the carbon package stays usable for any die, not
just DNN accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.act import DEFAULT_GRID, CarbonBreakdown, embodied_carbon
from repro.carbon.wafer import DEFAULT_WAFER, WaferSpec
from repro.errors import CarbonModelError


@dataclass(frozen=True)
class DieAreaBreakdown:
    """Die area split by component class.

    Attributes:
        pe_array_mm2: MAC/PE array logic area.
        sram_mm2: on-chip buffer macros (local + global).
        other_mm2: NoC, control, IO ring, PLLs — everything else.
    """

    pe_array_mm2: float
    sram_mm2: float
    other_mm2: float

    def __post_init__(self) -> None:
        for name in ("pe_array_mm2", "sram_mm2", "other_mm2"):
            if getattr(self, name) < 0:
                raise CarbonModelError(f"{name} cannot be negative")
        if self.total_mm2 <= 0:
            raise CarbonModelError("die area must be positive")

    @property
    def total_mm2(self) -> float:
        return self.pe_array_mm2 + self.sram_mm2 + self.other_mm2


@dataclass(frozen=True)
class AcceleratorCarbon:
    """Embodied carbon of an accelerator die, with per-component split.

    The per-component figures allocate the *die* term of Eq. 1
    proportionally to area; the wasted-wafer term is reported once
    (it is a property of the die outline, not of any one component).
    """

    areas: DieAreaBreakdown
    breakdown: CarbonBreakdown
    pe_array_g: float
    sram_g: float
    other_g: float

    @property
    def total_g(self) -> float:
        return self.breakdown.total_g

    @property
    def wasted_g(self) -> float:
        return self.breakdown.wasted_carbon_g


def accelerator_embodied_carbon(
    areas: DieAreaBreakdown,
    node_nm: int,
    grid: str | float = DEFAULT_GRID,
    wafer: WaferSpec = DEFAULT_WAFER,
) -> AcceleratorCarbon:
    """Eq. 1 applied to an accelerator die area breakdown."""
    breakdown = embodied_carbon(areas.total_mm2, node_nm, grid=grid, wafer=wafer)
    die_g = breakdown.die_carbon_g
    total_area = areas.total_mm2
    return AcceleratorCarbon(
        areas=areas,
        breakdown=breakdown,
        pe_array_g=die_g * areas.pe_array_mm2 / total_area,
        sram_g=die_g * areas.sram_mm2 / total_area,
        other_g=die_g * areas.other_mm2 / total_area,
    )
