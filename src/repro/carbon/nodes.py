"""Technology-node fab parameter database.

Values are representative of the published ACT (Gupta et al., ISCA'22)
and imec sustainable-semiconductor datasets.  Each parameter is
documented with its role in Eq. 2; absolute gCO2 results depend on these
assumptions, but the cross-node *trends* the paper reports (carbon per
area rising steeply towards advanced nodes, yield dropping, SRAM density
improving more slowly than logic density) are all encoded here.

==================  =======================================================
``epa_kwh_per_cm2`` fab energy consumed per processed wafer area (EPA)
``gpa_kg_per_cm2``  direct greenhouse-gas emissions per area (C_gas)
``mpa_kg_per_cm2``  upstream material procurement footprint (C_material)
``defect_density``  defects per cm^2, drives die yield
``logic_density``   NAND2-equivalent gates per mm^2 (layout density)
``sram_bitcell``    6T SRAM bit-cell area in um^2
==================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import CarbonModelError


@dataclass(frozen=True)
class TechnologyNode:
    """Fab and layout parameters of one technology node.

    Attributes:
        node_nm: feature size label in nanometres.
        epa_kwh_per_cm2: manufacturing energy per unit processed area.
        gpa_kg_per_cm2: direct process greenhouse-gas footprint per area.
        mpa_kg_per_cm2: raw-material procurement footprint per area.
        defect_density_per_cm2: random defect density for yield models.
        sram_bitcell_um2: 6T SRAM bit-cell layout area.
        sram_array_efficiency: useful-bit fraction of an SRAM macro
            (periphery, sense amps, redundancy take the rest).
        clock_ghz: nominal accelerator clock at this node (used by the
            performance model).
    """

    node_nm: int
    epa_kwh_per_cm2: float
    gpa_kg_per_cm2: float
    mpa_kg_per_cm2: float
    defect_density_per_cm2: float
    sram_bitcell_um2: float
    sram_array_efficiency: float
    clock_ghz: float

    def __post_init__(self) -> None:
        positive = {
            "epa_kwh_per_cm2": self.epa_kwh_per_cm2,
            "gpa_kg_per_cm2": self.gpa_kg_per_cm2,
            "mpa_kg_per_cm2": self.mpa_kg_per_cm2,
            "sram_bitcell_um2": self.sram_bitcell_um2,
            "clock_ghz": self.clock_ghz,
        }
        for name, value in positive.items():
            if value <= 0:
                raise CarbonModelError(
                    f"{name} must be positive for {self.node_nm} nm, got {value}"
                )
        if self.defect_density_per_cm2 < 0:
            raise CarbonModelError("defect density cannot be negative")
        if not 0.0 < self.sram_array_efficiency <= 1.0:
            raise CarbonModelError(
                "sram_array_efficiency must be in (0, 1], got "
                f"{self.sram_array_efficiency}"
            )


# Representative parameters per node.  EPA rises sharply towards advanced
# nodes (more EUV/multi-patterning passes); defect density is higher for
# younger processes; SRAM bit cells shrink slower than logic.
_NODES: Dict[int, TechnologyNode] = {
    7: TechnologyNode(
        node_nm=7,
        epa_kwh_per_cm2=1.52,
        gpa_kg_per_cm2=0.28,
        mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.20,
        sram_bitcell_um2=0.027,
        sram_array_efficiency=0.60,
        clock_ghz=1.2,
    ),
    14: TechnologyNode(
        node_nm=14,
        epa_kwh_per_cm2=1.20,
        gpa_kg_per_cm2=0.20,
        mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.10,
        sram_bitcell_um2=0.064,
        sram_array_efficiency=0.65,
        clock_ghz=1.0,
    ),
    28: TechnologyNode(
        node_nm=28,
        epa_kwh_per_cm2=0.90,
        gpa_kg_per_cm2=0.14,
        mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.05,
        sram_bitcell_um2=0.120,
        sram_array_efficiency=0.70,
        clock_ghz=0.8,
    ),
}

SUPPORTED_NODES: Tuple[int, ...] = tuple(sorted(_NODES))


def technology_node(node_nm: int) -> TechnologyNode:
    """Look up the parameter set of a supported node.

    Raises:
        CarbonModelError: for nodes outside the paper's 7/14/28 nm set.
    """
    try:
        return _NODES[node_nm]
    except KeyError:
        raise CarbonModelError(
            f"unsupported technology node {node_nm} nm; "
            f"supported: {list(SUPPORTED_NODES)}"
        ) from None
