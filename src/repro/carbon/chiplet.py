"""Chiplet (multi-die) embodied-carbon model, after ECO-CHIP.

The paper cites ECO-CHIP [Sudarshan et al., HPCA'24], which shows that
disaggregating a large die into chiplets changes embodied carbon in two
opposing ways:

* **yield gain** — smaller dies yield better, cutting the per-die CFPA
  denominator (Eq. 2);
* **packaging cost** — dies must be reassembled on an interposer or
  substrate, whose manufacturing adds its own footprint, plus a die
  area overhead for die-to-die PHYs.

This module extends the monolithic Eq. 1 model to that trade-off so
the ablation benchmarks can ask: *at what accelerator size does
chipletisation pay off in carbon?* — a natural "future work" direction
for the paper's methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.carbon.act import DEFAULT_GRID, CarbonBreakdown, embodied_carbon
from repro.carbon.wafer import DEFAULT_WAFER, WaferSpec
from repro.errors import CarbonModelError


@dataclass(frozen=True)
class PackagingModel:
    """Packaging/assembly carbon parameters.

    Attributes:
        interposer_g_per_mm2: footprint of interposer/substrate area
            (organic substrates ~0.3, silicon interposers ~1.5 gCO2/mm2
            — far below an active die's CFPA but not free).
        interposer_area_factor: interposer area relative to the summed
            chiplet area (routing margin between dies).
        d2d_phy_overhead: active-area overhead per chiplet for
            die-to-die links (fraction of chiplet area).
        bonding_g_per_chiplet: per-die assembly/bonding footprint.
        assembly_yield: probability the multi-die assembly survives
            packaging (known-good-die testing keeps this high).
    """

    interposer_g_per_mm2: float = 0.8
    interposer_area_factor: float = 1.3
    d2d_phy_overhead: float = 0.08
    bonding_g_per_chiplet: float = 0.5
    assembly_yield: float = 0.98

    def __post_init__(self) -> None:
        if self.interposer_g_per_mm2 < 0 or self.bonding_g_per_chiplet < 0:
            raise CarbonModelError("packaging footprints cannot be negative")
        if self.interposer_area_factor < 1.0:
            raise CarbonModelError(
                "interposer must at least cover the chiplets"
            )
        if not 0.0 <= self.d2d_phy_overhead < 1.0:
            raise CarbonModelError("d2d_phy_overhead must be in [0, 1)")
        if not 0.0 < self.assembly_yield <= 1.0:
            raise CarbonModelError("assembly_yield must be in (0, 1]")


DEFAULT_PACKAGING = PackagingModel()


@dataclass(frozen=True)
class ChipletCarbon:
    """Embodied carbon of a chipletised system.

    Attributes:
        n_chiplets: number of equal-area dies.
        per_chiplet: Eq. 1 breakdown of one chiplet.
        silicon_g: all chiplet dies together (yield included).
        packaging_g: interposer + bonding + assembly-yield surcharge.
    """

    n_chiplets: int
    per_chiplet: CarbonBreakdown
    silicon_g: float
    packaging_g: float

    @property
    def total_g(self) -> float:
        return self.silicon_g + self.packaging_g


def chiplet_embodied_carbon(
    total_active_mm2: float,
    n_chiplets: int,
    node_nm: int,
    grid: str | float = DEFAULT_GRID,
    wafer: WaferSpec = DEFAULT_WAFER,
    packaging: PackagingModel = DEFAULT_PACKAGING,
) -> ChipletCarbon:
    """Embodied carbon of splitting a design into equal chiplets.

    Args:
        total_active_mm2: active logic+memory area before splitting.
        n_chiplets: number of equal dies (1 = monolithic + packaging-free).
        node_nm: technology node for every chiplet.
        grid: fab grid profile.
        wafer: wafer geometry.
        packaging: assembly model.
    """
    if total_active_mm2 <= 0:
        raise CarbonModelError("active area must be positive")
    if n_chiplets < 1:
        raise CarbonModelError(f"need at least one chiplet, got {n_chiplets}")

    if n_chiplets == 1:
        breakdown = embodied_carbon(total_active_mm2, node_nm, grid, wafer)
        return ChipletCarbon(
            n_chiplets=1,
            per_chiplet=breakdown,
            silicon_g=breakdown.total_g,
            packaging_g=0.0,
        )

    per_die_mm2 = (
        total_active_mm2 / n_chiplets
    ) * (1.0 + packaging.d2d_phy_overhead)
    breakdown = embodied_carbon(per_die_mm2, node_nm, grid, wafer)
    silicon = breakdown.total_g * n_chiplets

    interposer_mm2 = (
        per_die_mm2 * n_chiplets * packaging.interposer_area_factor
    )
    packaging_g = (
        interposer_mm2 * packaging.interposer_g_per_mm2
        + n_chiplets * packaging.bonding_g_per_chiplet
    )
    total_before_assembly = silicon + packaging_g
    # assembly loss surcharge: 1/Y_assembly - 1 extra systems' worth
    surcharge = total_before_assembly * (1.0 / packaging.assembly_yield - 1.0)

    return ChipletCarbon(
        n_chiplets=n_chiplets,
        per_chiplet=breakdown,
        silicon_g=silicon,
        packaging_g=packaging_g + surcharge,
    )


def best_chiplet_count(
    total_active_mm2: float,
    node_nm: int,
    max_chiplets: int = 8,
    grid: str | float = DEFAULT_GRID,
    packaging: PackagingModel = DEFAULT_PACKAGING,
) -> Tuple[int, float]:
    """(carbon-optimal chiplet count, its total gCO2) for a design."""
    if max_chiplets < 1:
        raise CarbonModelError("max_chiplets must be >= 1")
    best_count = 1
    best_carbon = math.inf
    for count in range(1, max_chiplets + 1):
        total = chiplet_embodied_carbon(
            total_active_mm2, count, node_nm, grid=grid, packaging=packaging
        ).total_g
        if total < best_carbon:
            best_count, best_carbon = count, total
    return best_count, best_carbon
