"""Wafer geometry, dies-per-wafer and yield models.

The wasted-area term of Eq. 1 comes from here: a 300 mm wafer cannot be
tiled perfectly by rectangular dies, and the unusable edge area is
amortised over the good dies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CarbonModelError


@dataclass(frozen=True)
class WaferSpec:
    """Physical wafer parameters.

    Attributes:
        diameter_mm: wafer diameter (industry standard: 300 mm).
        edge_exclusion_mm: unusable ring at the wafer edge.
        saw_street_mm: kerf between adjacent dies.
    """

    diameter_mm: float = 300.0
    edge_exclusion_mm: float = 3.0
    saw_street_mm: float = 0.1

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0:
            raise CarbonModelError("wafer diameter must be positive")
        if self.edge_exclusion_mm < 0 or self.saw_street_mm < 0:
            raise CarbonModelError("wafer margins cannot be negative")
        if 2 * self.edge_exclusion_mm >= self.diameter_mm:
            raise CarbonModelError("edge exclusion consumes the whole wafer")

    @property
    def usable_radius_mm(self) -> float:
        return self.diameter_mm / 2.0 - self.edge_exclusion_mm

    @property
    def usable_area_mm2(self) -> float:
        return math.pi * self.usable_radius_mm**2


DEFAULT_WAFER = WaferSpec()


def dies_per_wafer(die_area_mm2: float, wafer: WaferSpec = DEFAULT_WAFER) -> int:
    """Gross dies per wafer (standard industry estimate).

    Uses the familiar correction ``pi*r^2/A - pi*d / sqrt(2*A)`` that
    subtracts partial dies on the wafer rim.
    """
    if die_area_mm2 <= 0:
        raise CarbonModelError(f"die area must be positive, got {die_area_mm2}")
    street = wafer.saw_street_mm
    effective_area = (math.sqrt(die_area_mm2) + street) ** 2
    diameter = 2.0 * wafer.usable_radius_mm
    wafer_area = math.pi * (diameter / 2.0) ** 2
    count = wafer_area / effective_area - (
        math.pi * diameter / math.sqrt(2.0 * effective_area)
    )
    if count < 1.0:
        raise CarbonModelError(
            f"die of {die_area_mm2:.1f} mm^2 does not fit the usable wafer"
        )
    return int(count)


def wasted_area_per_die_mm2(
    die_area_mm2: float, wafer: WaferSpec = DEFAULT_WAFER
) -> float:
    """Unusable wafer area amortised per gross die (Eq. 1's A_wasted)."""
    count = dies_per_wafer(die_area_mm2, wafer)
    total_die_area = count * die_area_mm2
    full_wafer_area = math.pi * (wafer.diameter_mm / 2.0) ** 2
    return max(full_wafer_area - total_die_area, 0.0) / count


def poisson_yield(die_area_mm2: float, defect_density_per_cm2: float) -> float:
    """Poisson die-yield model: ``Y = exp(-D * A)``."""
    _check_yield_inputs(die_area_mm2, defect_density_per_cm2)
    area_cm2 = die_area_mm2 / 100.0
    return math.exp(-defect_density_per_cm2 * area_cm2)


def murphy_yield(die_area_mm2: float, defect_density_per_cm2: float) -> float:
    """Murphy die-yield model: ``Y = ((1 - exp(-D*A)) / (D*A))^2``.

    Less pessimistic than Poisson for large dies; the default in ACT.
    """
    _check_yield_inputs(die_area_mm2, defect_density_per_cm2)
    d_times_a = defect_density_per_cm2 * die_area_mm2 / 100.0
    if d_times_a == 0.0:
        return 1.0
    return ((1.0 - math.exp(-d_times_a)) / d_times_a) ** 2


def _check_yield_inputs(die_area_mm2: float, defect_density: float) -> None:
    if die_area_mm2 <= 0:
        raise CarbonModelError(f"die area must be positive, got {die_area_mm2}")
    if defect_density < 0:
        raise CarbonModelError(
            f"defect density cannot be negative, got {defect_density}"
        )
