"""Accelerator architecture model (NVDLA-style).

Turns an architectural configuration — PE array dimensions, buffer
sizes, multiplier choice — into die areas the carbon model can price:

* :mod:`repro.accel.pe` — processing-element area model;
* :mod:`repro.accel.memory` — SRAM macro area model;
* :mod:`repro.accel.arch` — :class:`AcceleratorConfig` and die-area
  aggregation;
* :mod:`repro.accel.nvdla` — the NVDLA-like baseline family (64..2048
  MACs, buffers scaled with array dimension).
"""

from repro.accel.pe import PEAreaModel, pe_area_ge, pe_area_um2
from repro.accel.memory import sram_area_mm2, sram_bits_for_bytes
from repro.accel.arch import AcceleratorConfig
from repro.accel.nvdla import nvdla_family, nvdla_config, NVDLA_MAC_COUNTS

__all__ = [
    "PEAreaModel",
    "pe_area_ge",
    "pe_area_um2",
    "sram_area_mm2",
    "sram_bits_for_bytes",
    "AcceleratorConfig",
    "nvdla_family",
    "nvdla_config",
    "NVDLA_MAC_COUNTS",
]
