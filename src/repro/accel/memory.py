"""On-chip SRAM macro area model.

Buffer capacity -> silicon area, per technology node.  Bit-cell sizes
and array efficiencies live in :mod:`repro.carbon.nodes` so carbon and
architecture stay consistent; this module adds ECC overhead and macro
granularity.
"""

from __future__ import annotations

from repro.carbon.nodes import technology_node
from repro.errors import ArchitectureError
from repro.units import um2_to_mm2

#: Extra bits stored per data byte (8 data bits + parity/ECC share).
ECC_BITS_PER_BYTE = 1.0


def sram_bits_for_bytes(capacity_bytes: int) -> float:
    """Physical bits required for a logical byte capacity (with ECC)."""
    if capacity_bytes < 0:
        raise ArchitectureError(
            f"SRAM capacity cannot be negative: {capacity_bytes}"
        )
    return capacity_bytes * (8.0 + ECC_BITS_PER_BYTE)


def sram_area_mm2(capacity_bytes: int, node_nm: int) -> float:
    """Macro area of an SRAM of ``capacity_bytes`` at ``node_nm``.

    Bit-cell area divided by array efficiency accounts for periphery
    (decoders, sense amplifiers, redundancy).
    """
    if capacity_bytes == 0:
        return 0.0
    node = technology_node(node_nm)
    bits = sram_bits_for_bytes(capacity_bytes)
    raw_um2 = bits * node.sram_bitcell_um2 / node.sram_array_efficiency
    return um2_to_mm2(raw_um2)
