"""NVDLA-like baseline family.

The paper's baseline sweep: "MAC arrays ranging from 64 to 2048 PEs in
powers of 2.  The sizes of the local and global convolution buffers
scale proportionally with the dimensions of the MAC arrays, as specified
by NVIDIA."

We anchor the nv_full corner (2048 MACs, 512 KiB CBUF) and scale the
global convolution buffer *linearly with the MAC count* (512 KiB x
MACs / 2048, floored at 16 KiB), matching NVIDIA's published
configuration spreadsheet where CBUF banks scale with the MAC
resources.  The per-PE operand staging registers are fixed at 32 B —
in real NVDLA the per-MAC storage does not grow with the array.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.accel.arch import AcceleratorConfig
from repro.approx.library import ApproxMultiplier
from repro.errors import ArchitectureError

#: The paper's baseline MAC-array sizes.
NVDLA_MAC_COUNTS: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048)

#: nv_full corner: 2048 MACs, 512 KiB convolution buffer.
_FULL_MACS = 2048
_FULL_GLOBAL_KIB = 512.0
_MIN_GLOBAL_KIB = 16.0

#: Per-PE operand staging registers (bytes).
_LOCAL_BYTES = 32


def nvdla_dimensions(macs: int) -> Tuple[int, int]:
    """Near-square power-of-two array shape for a MAC count."""
    if macs < 1 or macs & (macs - 1):
        raise ArchitectureError(
            f"NVDLA MAC count must be a power of two, got {macs}"
        )
    log2 = macs.bit_length() - 1
    rows = 1 << (log2 // 2)
    cols = 1 << (log2 - log2 // 2)
    return rows, cols


def nvdla_buffer_bytes(macs: int) -> Tuple[int, int]:
    """(local_bytes_per_pe, global_bytes) per NVIDIA's scaling rule."""
    global_kib = max(_FULL_GLOBAL_KIB * macs / _FULL_MACS, _MIN_GLOBAL_KIB)
    return _LOCAL_BYTES, int(round(global_kib)) * 1024


def nvdla_config(
    macs: int,
    multiplier: ApproxMultiplier,
    node_nm: int,
    clock_ghz_override: Optional[float] = None,
) -> AcceleratorConfig:
    """One member of the NVDLA-like family."""
    rows, cols = nvdla_dimensions(macs)
    local_bytes, global_bytes = nvdla_buffer_bytes(macs)
    return AcceleratorConfig(
        pe_rows=rows,
        pe_cols=cols,
        local_buffer_bytes=local_bytes,
        global_buffer_bytes=global_bytes,
        multiplier=multiplier,
        node_nm=node_nm,
        clock_ghz_override=clock_ghz_override,
    )


def nvdla_family(
    multiplier: ApproxMultiplier,
    node_nm: int,
    mac_counts: Tuple[int, ...] = NVDLA_MAC_COUNTS,
) -> List[AcceleratorConfig]:
    """The full baseline sweep used in Fig. 2."""
    return [nvdla_config(macs, multiplier, node_nm) for macs in mac_counts]
