"""Accelerator configuration and die-area aggregation.

:class:`AcceleratorConfig` is the central design-point type: the GA
mutates it, the performance model simulates it, the carbon model prices
it.  It mirrors the paper's chromosome exactly — PE-array width and
height, local (per-PE) buffer size, global buffer size — plus the
selected multiplier and the technology node.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.accel.memory import sram_area_mm2
from repro.accel.pe import DEFAULT_PE_MODEL, PEAreaModel, pe_area_um2
from repro.approx.library import ApproxMultiplier
from repro.carbon.accelerator_carbon import (
    AcceleratorCarbon,
    DieAreaBreakdown,
    accelerator_embodied_carbon,
)
from repro.carbon.nodes import technology_node
from repro.errors import ArchitectureError
from repro.units import ghz_to_hz

#: Wiring overhead of stitching PEs into a 2-D array.
PE_ARRAY_WIRING_OVERHEAD = 1.10

#: NoC, sequencers, DMA engines, IO as a fraction of core area.
OTHER_LOGIC_FRACTION = 0.12

#: Fixed area floor: pads, PLL, test logic (mm^2).
FIXED_OTHER_MM2 = 0.02

#: Sanity bounds on the searchable space.
MAX_ARRAY_DIM = 256
MAX_LOCAL_BUFFER_BYTES = 4096
MIN_GLOBAL_BUFFER_BYTES = 4 * 1024
MAX_GLOBAL_BUFFER_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator design point.

    Attributes:
        pe_rows: PE-array height (the paper's ``#PE height``).
        pe_cols: PE-array width (the paper's ``#PE width``).
        local_buffer_bytes: per-PE register-file capacity.
        global_buffer_bytes: shared convolution buffer capacity.
        multiplier: the (possibly approximate) multiplier in every PE.
        node_nm: technology node (7/14/28).
        pe_model: non-multiplier PE composition.
        clock_ghz_override: clock frequency override; defaults to the
            node's nominal accelerator clock.
    """

    pe_rows: int
    pe_cols: int
    local_buffer_bytes: int
    global_buffer_bytes: int
    multiplier: ApproxMultiplier
    node_nm: int
    pe_model: PEAreaModel = field(default=DEFAULT_PE_MODEL)
    clock_ghz_override: Optional[float] = None

    def __post_init__(self) -> None:
        if not 1 <= self.pe_rows <= MAX_ARRAY_DIM:
            raise ArchitectureError(
                f"pe_rows must be in [1, {MAX_ARRAY_DIM}], got {self.pe_rows}"
            )
        if not 1 <= self.pe_cols <= MAX_ARRAY_DIM:
            raise ArchitectureError(
                f"pe_cols must be in [1, {MAX_ARRAY_DIM}], got {self.pe_cols}"
            )
        if not 0 <= self.local_buffer_bytes <= MAX_LOCAL_BUFFER_BYTES:
            raise ArchitectureError(
                "local_buffer_bytes must be in "
                f"[0, {MAX_LOCAL_BUFFER_BYTES}], got {self.local_buffer_bytes}"
            )
        if not (
            MIN_GLOBAL_BUFFER_BYTES
            <= self.global_buffer_bytes
            <= MAX_GLOBAL_BUFFER_BYTES
        ):
            raise ArchitectureError(
                "global_buffer_bytes must be in "
                f"[{MIN_GLOBAL_BUFFER_BYTES}, {MAX_GLOBAL_BUFFER_BYTES}], "
                f"got {self.global_buffer_bytes}"
            )
        technology_node(self.node_nm)  # validates the node
        if self.clock_ghz_override is not None and self.clock_ghz_override <= 0:
            raise ArchitectureError("clock override must be positive")

    # --- basic properties ---------------------------------------------

    @property
    def n_pes(self) -> int:
        """Total MAC units in the array."""
        return self.pe_rows * self.pe_cols

    @property
    def clock_hz(self) -> float:
        """Operating clock frequency in Hz."""
        ghz = (
            self.clock_ghz_override
            if self.clock_ghz_override is not None
            else technology_node(self.node_nm).clock_ghz
        )
        return ghz_to_hz(ghz)

    @property
    def total_local_buffer_bytes(self) -> int:
        return self.n_pes * self.local_buffer_bytes

    def geometry_key(self) -> Tuple[int, int, int, int, int, float]:
        """Performance-relevant identity (multiplier excluded).

        Two configs with the same geometry have identical timing, so
        per-layer latencies are cached under this key.
        """
        return (
            self.pe_rows,
            self.pe_cols,
            self.local_buffer_bytes,
            self.global_buffer_bytes,
            self.node_nm,
            self.clock_hz,
        )

    # --- area / carbon ---------------------------------------------------

    def pe_array_area_mm2(self) -> float:
        """Placed area of the MAC array (multiplier-dependent)."""
        single_pe_um2 = pe_area_um2(
            self.multiplier.area_ge, self.node_nm, self.pe_model
        )
        return self.n_pes * single_pe_um2 * PE_ARRAY_WIRING_OVERHEAD / 1e6

    def sram_area_mm2(self) -> float:
        """Placed area of all on-chip buffers."""
        local = sram_area_mm2(self.total_local_buffer_bytes, self.node_nm)
        global_ = sram_area_mm2(self.global_buffer_bytes, self.node_nm)
        return local + global_

    def die_area(self) -> DieAreaBreakdown:
        """Full-die area breakdown for the carbon model."""
        pe_mm2 = self.pe_array_area_mm2()
        sram_mm2 = self.sram_area_mm2()
        other = OTHER_LOGIC_FRACTION * (pe_mm2 + sram_mm2) + FIXED_OTHER_MM2
        return DieAreaBreakdown(
            pe_array_mm2=pe_mm2, sram_mm2=sram_mm2, other_mm2=other
        )

    def embodied_carbon(self, grid: str | float = "taiwan") -> AcceleratorCarbon:
        """Embodied carbon of this design (Eq. 1)."""
        return accelerator_embodied_carbon(
            self.die_area(), self.node_nm, grid=grid
        )

    # --- derivation -------------------------------------------------------

    def with_multiplier(self, multiplier: ApproxMultiplier) -> "AcceleratorConfig":
        """Same geometry, different multiplier."""
        return replace(self, multiplier=multiplier)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return (
            f"{self.pe_rows}x{self.pe_cols} PEs, "
            f"LB {self.local_buffer_bytes} B/PE, "
            f"GB {self.global_buffer_bytes // 1024} KiB, "
            f"mult {self.multiplier.name}, {self.node_nm} nm"
        )
