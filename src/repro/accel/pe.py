"""Processing-element (MAC unit) area model.

A PE in the NVDLA-style array contains:

* the 8x8 multiplier — **the part the paper approximates**;
* a wide accumulator adder (products are summed over many MACs);
* operand / accumulator / pipeline registers;
* a slice of local control.

Everything except the multiplier is fixed overhead, which is why
multiplier-area savings translate sub-linearly into PE savings and the
paper's approximate-only carbon gains sit in the single-digit-percent
range: the model makes that dilution explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.area import gate_area_model
from repro.errors import ArchitectureError

#: NAND2-equivalents of one D flip-flop (approx. 22 transistors).
DFF_GE = 5.5

#: NAND2-equivalents of one full-adder bit (approx. 26 transistors).
FA_GE = 6.5


@dataclass(frozen=True)
class PEAreaModel:
    """Fixed (non-multiplier) PE composition.

    Attributes:
        accumulator_bits: accumulator adder and register width.  24 bits
            is enough for 8x8 products summed over the deepest VGG/ResNet
            reduction (16-bit product + 8 guard bits).
        operand_register_bits: input operand staging registers.
        pipeline_register_bits: inter-stage pipeline registers.
        control_ge: per-PE control / multiplexing logic.
    """

    accumulator_bits: int = 24
    operand_register_bits: int = 8
    pipeline_register_bits: int = 8
    control_ge: float = 30.0

    def __post_init__(self) -> None:
        if self.accumulator_bits < 16:
            raise ArchitectureError(
                "accumulator must be at least 16 bits for 8x8 products, "
                f"got {self.accumulator_bits}"
            )
        if self.operand_register_bits < 0 or self.pipeline_register_bits < 0:
            raise ArchitectureError("register widths cannot be negative")
        if self.control_ge < 0:
            raise ArchitectureError("control area cannot be negative")

    @property
    def overhead_ge(self) -> float:
        """Non-multiplier PE area in NAND2-equivalents."""
        adder = self.accumulator_bits * FA_GE
        registers = (
            self.accumulator_bits
            + self.operand_register_bits
            + self.pipeline_register_bits
        ) * DFF_GE
        return adder + registers + self.control_ge


DEFAULT_PE_MODEL = PEAreaModel()


def pe_area_ge(
    multiplier_area_ge: float, model: PEAreaModel = DEFAULT_PE_MODEL
) -> float:
    """Total PE area in NAND2-equivalents for a given multiplier."""
    if multiplier_area_ge <= 0:
        raise ArchitectureError(
            f"multiplier area must be positive, got {multiplier_area_ge}"
        )
    return multiplier_area_ge + model.overhead_ge


def pe_area_um2(
    multiplier_area_ge: float,
    node_nm: int,
    model: PEAreaModel = DEFAULT_PE_MODEL,
) -> float:
    """Placed PE area in um^2 at a technology node."""
    gate_model = gate_area_model(node_nm)
    return (
        pe_area_ge(multiplier_area_ge, model)
        * gate_model.nand2_area_um2
        * gate_model.routing_overhead
    )
