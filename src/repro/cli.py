"""Command-line interface.

Exposes the headline flows without writing Python::

    python -m repro library                      # step-1 Pareto library
    python -m repro design --network vgg16 --node 7 --fps 30 --drop 1
    python -m repro accuracy     [--fast] [--json out.json]
    python -m repro fig2-scatter [--fast]
    python -m repro fig2-table   [--fast] [--json out.json]
    python -m repro fig3         [--fast] [--json out.json]
    python -m repro pareto-sweep [--fast]
    python -m repro sensitivity --which grid

``--fast`` shrinks every search for smoke runs; omit it for the
paper-scale settings used in EXPERIMENTS.md.  The experiment commands
accept ``--grid-mode {auto,serial,thread,process,remote}``,
``--grid-workers`` and ``--shards`` to control which execution backend
runs the harness's cells and how they are sharded (every backend prints
identical results).  ``--profile SPEC`` sets every execution knob in
one flag (``--profile process,workers=8``); explicit per-knob flags
still win over the profile.

Multi-node runs use the ``remote`` backend: the harness process becomes
a TCP coordinator and worker daemons pull cells from it::

    # single machine, 2 locally spawned worker daemons
    python -m repro pareto-sweep --fast --grid-mode remote \
        --coordinator 127.0.0.1:0 --grid-workers 2

    # multi-node: bind a routable address, spawn no local workers ...
    python -m repro fig3 --grid-mode remote \
        --coordinator 0.0.0.0:7777 --grid-workers 0

    # ... and attach workers from any machine that shares the code
    python -m repro.engine.worker --connect COORDINATOR_HOST:7777

Workers may join mid-run; a worker that dies mid-cell has its cell
reassigned.  Results are bit-identical to ``--grid-mode serial`` in
every case.

The ``accuracy`` command runs the behavioural accuracy study (measured
drop per library multiplier plus the analytical-vs-behavioural rank
agreement) and exposes the accuracy-stage execution knobs:
``--stack-workers`` tiles the stacked LUT inference across threads, and
``--accuracy-mode/--accuracy-workers/--accuracy-shards`` shard the
library into multiplier sub-stacks dispatched over the same execution
backends as the grids (``remote`` via ``--coordinator``).  Every
combination prints bit-identical drops.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _settings(args: argparse.Namespace):
    from dataclasses import replace

    from repro.experiments.common import DEFAULT_SETTINGS, fast_settings

    settings = fast_settings() if args.fast else DEFAULT_SETTINGS
    if getattr(args, "kernel_tier", None) is not None:
        import os

        from repro.engine.kernels import KERNEL_TIER_ENV

        # validated by replace() via __post_init__; exported so spawned
        # pool/remote workers inherit the same tier
        settings = replace(settings, kernel_tier=args.kernel_tier)
        os.environ[KERNEL_TIER_ENV] = args.kernel_tier
    checkpoint_overrides = {}
    if getattr(args, "checkpoint_dir", None) is not None:
        checkpoint_overrides["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "resume", False):
        checkpoint_overrides["resume"] = True
    if checkpoint_overrides:
        # replace() re-runs __post_init__, which rejects --resume
        # without --checkpoint-dir before any search starts
        settings = replace(settings, **checkpoint_overrides)
    profile_overrides = {}
    if getattr(args, "profile", None) is not None:
        profile_overrides["profile"] = args.profile
    grid_overrides = {}
    if getattr(args, "grid_mode", None) is not None:
        grid_overrides["grid_mode"] = args.grid_mode
    if getattr(args, "grid_workers", None) is not None:
        grid_overrides["grid_workers"] = args.grid_workers
    if getattr(args, "shards", None) is not None:
        grid_overrides["grid_shards"] = args.shards
    if getattr(args, "coordinator", None) is not None:
        grid_overrides["grid_coordinator"] = args.coordinator
    accuracy_overrides = {}
    if getattr(args, "stack_workers", None) is not None:
        accuracy_overrides["stack_workers"] = args.stack_workers
    if getattr(args, "accuracy_mode", None) is not None:
        accuracy_overrides["accuracy_mode"] = args.accuracy_mode
    if getattr(args, "accuracy_workers", None) is not None:
        accuracy_overrides["accuracy_workers"] = args.accuracy_workers
    if getattr(args, "accuracy_shards", None) is not None:
        accuracy_overrides["accuracy_shards"] = args.accuracy_shards
    if getattr(args, "accuracy_coordinator", None) is not None:
        accuracy_overrides["accuracy_coordinator"] = args.accuracy_coordinator
    if getattr(args, "task_deadline", None) is not None:
        grid_overrides["task_deadline_s"] = args.task_deadline
    if profile_overrides or grid_overrides or accuracy_overrides:
        # profile and explicit flags merge in one replace():
        # __post_init__ lets any legacy field set away from its default
        # (i.e. an explicit --grid-*/--accuracy-* flag) win over the
        # profile, while unset knobs take the profile's values
        settings = replace(
            settings, **profile_overrides, **grid_overrides, **accuracy_overrides
        )
        # surface invalid options (e.g. --coordinator without
        # --grid-mode remote) now, not after the minutes-long library
        # build that every harness runs first
        if grid_overrides or profile_overrides:
            settings.grid_runner()
        if accuracy_overrides or profile_overrides:
            settings.accuracy_runner()
    return settings


def _write(path: Optional[str], text: str) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"[written to {path}]")


def _cmd_library(args: argparse.Namespace) -> int:
    from repro.accuracy import AccuracyPredictor
    from repro.experiments.report import render_table

    settings = _settings(args)
    library = settings.library()
    predictor = AccuracyPredictor()
    rows = [
        [
            entry.name[:30],
            entry.origin,
            round(entry.area_ge, 1),
            f"{entry.metrics.nmed:.2e}",
            round(predictor.drop_percent("vgg16", entry), 2),
        ]
        for entry in library
    ]
    print(
        render_table(
            ["name", "origin", "area_GE", "NMED", "vgg16_drop_%"],
            rows,
            title=f"Approximate-multiplier library ({len(library)} entries)",
        )
    )
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.accuracy import AccuracyPredictor
    from repro.core import CarbonAwareDesigner, smallest_exact_meeting_fps
    from repro.core.io import design_points_to_json
    from repro.ga import GaConfig

    settings = _settings(args)
    library = settings.library()
    predictor = AccuracyPredictor()

    baseline = smallest_exact_meeting_fps(
        args.network, library, args.node, predictor, args.fps
    )
    designer = CarbonAwareDesigner(
        network=args.network,
        node_nm=args.node,
        min_fps=args.fps,
        max_drop_percent=args.drop,
        library=library,
        predictor=predictor,
        ga_config=GaConfig(
            population_size=settings.ga_population,
            generations=settings.ga_generations,
            seed=args.seed,
        ),
        **settings.designer_kwargs(),
    )
    best = designer.run().best
    saving = 100.0 * (1.0 - best.carbon_g / baseline.carbon_g)

    print(f"baseline: {baseline.config.describe()}")
    print(f"          {baseline.fps:.1f} FPS, {baseline.carbon_g:.2f} gCO2")
    print(f"GA-CDP:   {best.config.describe()}")
    print(
        f"          {best.fps:.1f} FPS, {best.carbon_g:.2f} gCO2, "
        f"drop {best.accuracy_drop_percent:.2f}%"
    )
    print(f"embodied-carbon saving: {saving:.1f}%")
    _write(args.json, design_points_to_json([baseline, best]))
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.accuracy import AccuracyPredictor
    from repro.experiments.report import render_table

    settings = _settings(args)
    library = settings.library()
    validator = settings.validator()
    predictor = AccuracyPredictor(validator=validator)

    multipliers = list(library)
    measured = validator.drop_percents(multipliers)
    analytical = [predictor.drop_percent("vgg16", m) for m in multipliers]
    rho = predictor.behavioral_agreement(library)

    rows = [
        [
            entry.name[:30],
            entry.origin,
            round(analytical[index], 3),
            round(measured[index], 3),
        ]
        for index, entry in enumerate(multipliers)
    ]
    print(
        render_table(
            ["name", "origin", "analytical_drop_%", "behavioral_drop_%"],
            rows,
            # no execution knobs in the output: every mode/worker
            # combination must print byte-identical results (CI diffs it)
            title=f"Behavioural accuracy study ({len(multipliers)} multipliers)",
        )
    )
    print(f"analytical-vs-behavioural Spearman rho: {rho:.4f}")
    if args.json:
        import json

        payload = {
            "multipliers": [
                {
                    "name": entry.name,
                    "origin": entry.origin,
                    "analytical_drop_percent": analytical[index],
                    "behavioral_drop_percent": measured[index],
                }
                for index, entry in enumerate(multipliers)
            ],
            "spearman_rho": rho,
        }
        _write(args.json, json.dumps(payload, indent=2) + "\n")
    return 0


def _cmd_fig2_scatter(args: argparse.Namespace) -> int:
    from repro.experiments.fig2 import fig2_scatter

    result = fig2_scatter(settings=_settings(args))
    print(result.render())
    if args.json:
        from repro.core.io import design_points_to_json

        points = [p for pts in result.points.values() for p in pts]
        _write(args.json, design_points_to_json(points))
    return 0


def _cmd_fig2_table(args: argparse.Namespace) -> int:
    from repro.core.io import fig2_table_to_json
    from repro.experiments.fig2 import fig2_reduction_table

    result = fig2_reduction_table(settings=_settings(args))
    print(result.render())
    _write(args.json, fig2_table_to_json(result.reductions, result.network))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.core.io import fig3_cells_to_json
    from repro.experiments.fig3 import fig3_comparison

    result = fig3_comparison(settings=_settings(args))
    print(result.render())
    _write(args.json, fig3_cells_to_json(result.cells))
    return 0


def _cmd_pareto_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.pareto_sweep import pareto_sweep

    result = pareto_sweep(
        settings=_settings(args), network=args.network, node_nm=args.node
    )
    print(result.render())
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments import sensitivity

    runners = {
        "grid": sensitivity.grid_sensitivity,
        "yield": sensitivity.yield_sensitivity,
        "bandwidth": sensitivity.bandwidth_sensitivity,
    }
    result = runners[args.which](settings=_settings(args))
    print(result.render())
    return 0


def _cmd_lint_invariants(args: argparse.Namespace) -> int:
    from repro.analysis import main as analysis_main

    return analysis_main(args.analysis_argv)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Carbon-aware approximate DNN accelerator DSE "
        "(DATE 2025 LBR reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(
        p: argparse.ArgumentParser,
        json_out: bool = True,
        grid_opts: bool = False,
        accuracy_opts: bool = False,
    ) -> None:
        p.add_argument(
            "--fast", action="store_true",
            help="reduced search sizes for smoke runs",
        )
        p.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="snapshot every search generation under DIR (atomic "
            "writes; a killed run keeps its finished generations)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="resume killed searches from --checkpoint-dir; results "
            "are bit-identical to an uninterrupted run, and a "
            "checkpoint written under different settings is refused",
        )
        p.add_argument(
            "--kernel-tier", default=None, metavar="TIER",
            help="compiled-kernel tier for the batched hot loops "
            "(auto/numpy/numba/c; default: $REPRO_KERNEL_TIER or "
            "auto = fastest available; every tier is bit-identical, "
            "and an unavailable tier degrades to numpy with a warning)",
        )
        p.add_argument(
            "--profile", default=None, metavar="SPEC",
            help="execution profile setting every engine knob at once: "
            "'[MODE][,key=value]*', e.g. 'process,workers=8' or "
            "'remote,coordinator=0.0.0.0:7777,workers=0,kernel=c'. "
            "A bare MODE sets both the grid and accuracy stages; "
            "workers/shards/coordinator apply to both stages, "
            "grid_*/accuracy_* keys target one, and kernel/stack set "
            "kernel_tier/stack_workers.  Explicit --grid-*/--accuracy-* "
            "flags override the profile",
        )
        p.add_argument(
            "--task-deadline", type=float, default=None, metavar="SECONDS",
            help="per-task deadline for the remote modes: a shard "
            "unacked past this is revoked from its (presumably hung) "
            "worker and requeued, the late result discarded "
            "(default: $REPRO_TASK_DEADLINE_S or wait forever)",
        )
        if json_out:
            p.add_argument("--json", default=None, help="write results JSON")
        if accuracy_opts:
            from repro.engine.grid import grid_modes

            p.add_argument(
                "--stack-workers", type=int, default=None, metavar="N",
                help="threads tiling the stacked LUT inference "
                "(default: auto = one per CPU; 1 = the serial "
                "reference; results identical for every value)",
            )
            p.add_argument(
                "--accuracy-mode", default=None,
                choices=list(grid_modes()),
                help="execution backend that scores the multiplier "
                "library as sharded sub-stacks (drops identical for "
                "every choice)",
            )
            p.add_argument(
                "--accuracy-workers", type=int, default=None,
                help="worker count for the sharded accuracy modes; "
                "with --accuracy-mode remote, the number of locally "
                "spawned worker daemons (0 = external workers only)",
            )
            p.add_argument(
                "--accuracy-shards", type=int, default=None,
                help="multiplier sub-stack count override "
                "(default: one per worker)",
            )
            p.add_argument(
                "--coordinator", dest="accuracy_coordinator",
                default=None, metavar="HOST:PORT",
                help="remote accuracy-mode bind address (default "
                "127.0.0.1:0); attach workers with 'python -m "
                "repro.engine.worker --connect HOST:PORT'",
            )
        if grid_opts:
            from repro.engine.grid import grid_modes

            p.add_argument(
                "--grid-mode", default=None,
                choices=list(grid_modes()),
                help="execution backend for the experiment cells "
                "(results identical for every choice)",
            )
            p.add_argument(
                "--grid-workers", type=int, default=None,
                help="worker count for the sharded grid modes; with "
                "--grid-mode remote, the number of locally spawned "
                "worker daemons (0 = external workers only)",
            )
            p.add_argument(
                "--shards", type=int, default=None,
                help="shard count override (default: one per worker, "
                "or one per cell in remote mode)",
            )
            p.add_argument(
                "--coordinator", default=None, metavar="HOST:PORT",
                help="remote-mode bind address (default 127.0.0.1:0); "
                "bind a routable host and attach workers with "
                "'python -m repro.engine.worker --connect HOST:PORT'",
            )

    p = sub.add_parser("library", help="print the step-1 multiplier library")
    common(p, json_out=False)
    p.set_defaults(handler=_cmd_library)

    p = sub.add_parser("design", help="run GA-CDP for one design problem")
    common(p)
    p.add_argument("--network", default="vgg16",
                   choices=["vgg16", "vgg19", "resnet50", "resnet152"])
    p.add_argument("--node", type=int, default=7, choices=[7, 14, 28])
    p.add_argument("--fps", type=float, default=30.0)
    p.add_argument("--drop", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_design)

    p = sub.add_parser(
        "accuracy",
        help="behavioural accuracy study over the engine-backed stage",
    )
    common(p, accuracy_opts=True)
    p.set_defaults(handler=_cmd_accuracy)

    p = sub.add_parser("fig2-scatter", help="regenerate Fig. 2 scatter")
    common(p, grid_opts=True)
    p.set_defaults(handler=_cmd_fig2_scatter)

    p = sub.add_parser("fig2-table", help="regenerate Fig. 2 table")
    common(p, grid_opts=True)
    p.set_defaults(handler=_cmd_fig2_table)

    p = sub.add_parser("fig3", help="regenerate Fig. 3 comparison")
    common(p, grid_opts=True)
    p.set_defaults(handler=_cmd_fig3)

    p = sub.add_parser(
        "pareto-sweep", help="GA-CDP over the (FPS, drop) constraint grid"
    )
    common(p, json_out=False, grid_opts=True)
    p.add_argument("--network", default="vgg16",
                   choices=["vgg16", "vgg19", "resnet50", "resnet152"])
    p.add_argument("--node", type=int, default=7, choices=[7, 14, 28])
    p.set_defaults(handler=_cmd_pareto_sweep)

    p = sub.add_parser("sensitivity", help="extension sensitivity sweeps")
    common(p, json_out=False, grid_opts=True)
    p.add_argument("--which", default="grid",
                   choices=["grid", "yield", "bandwidth"])
    p.set_defaults(handler=_cmd_sensitivity)

    # passthrough (add_help=False): every flag after the subcommand,
    # --help included, goes to the repro.analysis parser, so this stays
    # one checker with two spellings (`repro lint-invariants` here,
    # `python -m repro.analysis` on numpy-free interpreters)
    p = sub.add_parser(
        "lint-invariants",
        help="statically check determinism/picklability/fingerprint "
        "invariants (see repro.analysis)",
        add_help=False,
    )
    p.add_argument("analysis_argv", nargs=argparse.REMAINDER)
    p.set_defaults(handler=_cmd_lint_invariants)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["lint-invariants"]:
        # dispatch before argparse: REMAINDER would swallow trailing
        # paths but misparse leading flags like --list-rules
        from repro.analysis import main as analysis_main

        return analysis_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
