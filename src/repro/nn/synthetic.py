"""Deterministic synthetic classification task + prototype classifier.

We cannot ship ImageNet or pretrained weights offline, so the
behavioural accuracy study runs on a synthetic stand-in designed to
behave like a real vision task under arithmetic noise:

* **data** — 10 classes of 16x16 single-channel images.  Each class has
  a smooth random template; samples are the template plus band-limited
  noise, so class boundaries have realistic margins (some samples are
  easy, some borderline).
* **model** — a small CNN with fixed Gabor-like first-layer filters, a
  random-projection second conv, and a dense head whose weights are the
  class means of the penultimate features over the training set (a
  prototype / nearest-class-mean classifier).  This closed-form
  "training" is deterministic, fast, and — crucially — its accuracy
  degrades *gradually* as multiplier error grows, which is the property
  the accuracy model needs to validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import AccuracyModelError
from repro.nn.inference import ConvSpec, DenseSpec, PoolSpec, QuantCNN

IMAGE_SIZE = 16
N_CLASSES = 10


@dataclass(frozen=True)
class SyntheticTask:
    """A ready-to-evaluate behavioural accuracy task.

    Attributes:
        model: calibrated quantised CNN (prototype classifier head).
        train_x: training images (used to build the head; kept for
            inspection).
        train_y: training labels.
        test_x: held-out evaluation images.
        test_y: held-out labels.
    """

    model: QuantCNN
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    def accuracy(self, multiply=None) -> float:
        """Top-1 accuracy on the held-out set.

        Args:
            multiply: optional multiplier function (defaults to exact).
        """
        from repro.nn.inference import exact_multiply

        fn = multiply if multiply is not None else exact_multiply
        predictions = self.model.predict(self.test_x, fn)
        return float(np.mean(predictions == self.test_y))

    def accuracy_batch(
        self, multipliers, stack_workers=None, kernel_tier=None
    ) -> np.ndarray:
        """Top-1 accuracy under a stack of LUT multipliers, one pass.

        Args:
            multipliers: :class:`~repro.approx.lut.LutMultiplier`
                sequence sharing one operand geometry.
            stack_workers: thread-tiling knob forwarded to
                :meth:`~repro.nn.inference.QuantCNN.predict_stack`
                (``"auto"``, a positive integer, or ``None`` for the
                process default; every value is bit-identical).
            kernel_tier: compiled-kernel tier for the gather loop
                (``None`` = ambient default; every tier is
                bit-identical, see :mod:`repro.engine.kernels`).

        Returns:
            Float accuracies (M,); entry ``i`` equals
            ``accuracy(multipliers[i])`` bit for bit.
        """
        predictions = self.model.predict_stack(
            self.test_x,
            multipliers,
            stack_workers=stack_workers,
            kernel_tier=kernel_tier,
        )
        return np.mean(predictions == self.test_y[np.newaxis, :], axis=1)


def _smooth_noise(
    rng: np.random.Generator, shape: Tuple[int, ...], smoothing: int = 3
) -> np.ndarray:
    """Band-limited noise: white noise box-filtered ``smoothing`` times."""
    noise = rng.standard_normal(shape)
    for _ in range(smoothing):
        noise = (
            noise
            + np.roll(noise, 1, axis=-1)
            + np.roll(noise, -1, axis=-1)
            + np.roll(noise, 1, axis=-2)
            + np.roll(noise, -1, axis=-2)
        ) / 5.0
    return noise


def _make_images(
    rng: np.random.Generator,
    templates: np.ndarray,
    n_per_class: int,
    noise_level: float,
) -> Tuple[np.ndarray, np.ndarray]:
    images = []
    labels = []
    for class_index in range(templates.shape[0]):
        noise = _smooth_noise(
            rng, (n_per_class, IMAGE_SIZE, IMAGE_SIZE), smoothing=2
        )
        batch = templates[class_index][np.newaxis] + noise_level * noise
        images.append(batch)
        labels.append(np.full(n_per_class, class_index))
    x = np.concatenate(images)[:, np.newaxis, :, :]
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def _gabor_bank(n_filters: int, kernel: int, rng: np.random.Generator) -> np.ndarray:
    """Oriented edge/blob filters for the fixed first conv layer."""
    filters = np.empty((n_filters, 1, kernel, kernel))
    coords = np.linspace(-1.0, 1.0, kernel)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    for i in range(n_filters):
        theta = np.pi * i / n_filters
        rotated = xx * np.cos(theta) + yy * np.sin(theta)
        envelope = np.exp(-(xx**2 + yy**2) / 0.8)
        filters[i, 0] = envelope * np.cos(3.0 * rotated + rng.uniform(0, np.pi))
        filters[i, 0] -= filters[i, 0].mean()
    return filters


def _feature_extractor(rng: np.random.Generator) -> QuantCNN:
    conv1 = ConvSpec(weights=_gabor_bank(8, 3, rng), padding=1, relu=True)
    conv2_weights = rng.standard_normal((16, 8, 3, 3)) / np.sqrt(8 * 9)
    conv2 = ConvSpec(weights=conv2_weights, padding=1, relu=True)
    return QuantCNN(layers=[conv1, PoolSpec(2), conv2, PoolSpec(2)])


def make_task(
    seed: int = 0,
    n_train_per_class: int = 30,
    n_test_per_class: int = 20,
    noise_level: float = 1.1,
    template_similarity: float = 0.85,
) -> SyntheticTask:
    """Build the deterministic behavioural accuracy task.

    Args:
        seed: controls templates, noise, and random projections.
        n_train_per_class: prototype-estimation samples per class.
        n_test_per_class: held-out samples per class.
        noise_level: sample noise relative to unit-variance templates.
        template_similarity: fraction of template energy shared between
            classes.  High similarity narrows class margins so accuracy
            degrades *gradually* with multiplier error — the defaults
            put exact-arithmetic accuracy around 90%, leaving visible
            head-room for approximation-induced drops.
    """
    if n_train_per_class < 1 or n_test_per_class < 1:
        raise AccuracyModelError("need at least one sample per class")
    if not 0.0 <= template_similarity < 1.0:
        raise AccuracyModelError(
            f"template_similarity must be in [0, 1), got {template_similarity}"
        )
    rng = np.random.default_rng(seed)

    common = _smooth_noise(rng, (1, IMAGE_SIZE, IMAGE_SIZE), smoothing=4)
    unique = _smooth_noise(rng, (N_CLASSES, IMAGE_SIZE, IMAGE_SIZE), smoothing=4)
    templates = (
        np.sqrt(template_similarity) * common
        + np.sqrt(1.0 - template_similarity) * unique
    )
    templates /= templates.std(axis=(1, 2), keepdims=True)

    train_x, train_y = _make_images(rng, templates, n_train_per_class, noise_level)
    test_x, test_y = _make_images(rng, templates, n_test_per_class, noise_level)

    extractor = _feature_extractor(rng)
    extractor.calibrate(train_x)

    features = extractor.forward(train_x)  # (N, 16, 4, 4) -> logits path
    flat = features.reshape(len(train_y), -1)
    prototypes = np.stack(
        [flat[train_y == c].mean(axis=0) for c in range(N_CLASSES)]
    )
    # nearest-class-mean as a linear layer: w = 2*mu, b = -|mu|^2
    head = DenseSpec(
        weights=prototypes * 2.0,
        bias=-np.sum(prototypes**2, axis=1),
        relu=False,
    )

    model = QuantCNN(layers=list(extractor.layers) + [head])
    model.calibrate(train_x)
    return SyntheticTask(
        model=model,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
    )
