"""Quantised CNN inference with a pluggable multiplier.

This is our ApproxTrain substitute's execution engine: a small numpy
CNN whose every multiplication goes through a supplied multiplier
function — either exact integer multiply or an approximate
:class:`~repro.approx.lut.LutMultiplier`.  Convolution is im2col-based,
so the multiplier sees plain operand arrays and the approximate LUT is
exercised on exactly the products the hardware would compute.

The engine deliberately supports only what the behavioural accuracy
study needs (conv + ReLU + max-pool + dense on small images); the big
zoo networks are never executed here — see DESIGN.md for why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import AccuracyModelError
from repro.nn.quantize import QuantParams, calibrate_scale, quantize_tensor

#: A multiplier: signed int operand arrays -> elementwise products.
MultiplyFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def exact_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference integer multiplier."""
    return a.astype(np.int64) * b.astype(np.int64)


@dataclass(frozen=True)
class ConvSpec:
    """A quantised 3x3/1x1 convolution layer (float master weights).

    Attributes:
        weights: float array (out_c, in_c, k, k).
        bias: optional float bias (out_c,).
        stride: convolution stride.
        padding: symmetric zero padding.
        relu: apply ReLU after requantisation.
    """

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    stride: int = 1
    padding: int = 1
    relu: bool = True

    def __post_init__(self) -> None:
        if self.weights.ndim != 4:
            raise AccuracyModelError(
                f"conv weights must be 4-D, got shape {self.weights.shape}"
            )


@dataclass(frozen=True)
class PoolSpec:
    """2x2 max pooling."""

    kernel: int = 2


@dataclass(frozen=True)
class DenseSpec:
    """A quantised dense layer.

    Attributes:
        weights: float array (out_features, in_features).
        bias: optional float bias (out_features,).
        relu: apply ReLU after requantisation.
    """

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    relu: bool = False

    def __post_init__(self) -> None:
        if self.weights.ndim != 2:
            raise AccuracyModelError(
                f"dense weights must be 2-D, got shape {self.weights.shape}"
            )


LayerSpec = Union[ConvSpec, PoolSpec, DenseSpec]


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N, out_h*out_w, C*k*k) patch matrix."""
    n, c, h, w = x.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise AccuracyModelError(
            f"conv kernel {kernel} does not fit input {h}x{w}"
        )
    cols = np.empty((n, out_h * out_w, c * kernel * kernel), dtype=x.dtype)
    index = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = x[
                :, :, i * stride : i * stride + kernel, j * stride : j * stride + kernel
            ]
            cols[:, index, :] = patch.reshape(n, -1)
            index += 1
    return cols, out_h, out_w


def _lut_matmul(
    activations: np.ndarray, weights: np.ndarray, multiply: MultiplyFn
) -> np.ndarray:
    """Matrix product through an elementwise multiplier function.

    activations: (rows, k) int8 codes; weights: (k, cols) int8 codes.
    Broadcasting keeps the peak temporary at rows*k*cols int64 — fine
    for the small behavioural network.
    """
    products = multiply(
        activations[:, :, np.newaxis], weights[np.newaxis, :, :]
    )
    return products.sum(axis=1)


@dataclass
class QuantCNN:
    """A quantised CNN executed through a pluggable multiplier.

    Attributes:
        layers: layer specifications in order.
        input_params: quantisation of the (float) input tensor.
    """

    layers: List[LayerSpec] = field(default_factory=list)
    input_params: Optional[QuantParams] = None

    def calibrate(self, sample_inputs: np.ndarray) -> None:
        """Fix the input quantisation scale from a calibration batch."""
        self.input_params = calibrate_scale(sample_inputs)

    # ------------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        multiply: MultiplyFn = exact_multiply,
    ) -> np.ndarray:
        """Run a float batch through the quantised network.

        Args:
            x: inputs shaped (N, C, H, W).
            multiply: elementwise integer multiplier (exact or LUT).

        Returns:
            Float logits (N, classes).
        """
        if self.input_params is None:
            raise AccuracyModelError(
                "QuantCNN.calibrate must run before forward"
            )
        if x.ndim != 4:
            raise AccuracyModelError(
                f"input must be (N, C, H, W), got shape {x.shape}"
            )

        codes = quantize_tensor(x, self.input_params)
        scale = self.input_params.scale
        value = codes.astype(np.int64)

        for layer in self.layers:
            if isinstance(layer, ConvSpec):
                value, scale = self._conv(value, scale, layer, multiply)
            elif isinstance(layer, PoolSpec):
                value = self._pool(value, layer)
            elif isinstance(layer, DenseSpec):
                value, scale = self._dense(value, scale, layer, multiply)
            else:  # pragma: no cover - exhaustive over LayerSpec
                raise AccuracyModelError(f"unknown layer spec {layer!r}")
        return value.astype(np.float64) * scale

    def predict(
        self, x: np.ndarray, multiply: MultiplyFn = exact_multiply
    ) -> np.ndarray:
        """Argmax class predictions for a float batch."""
        return np.argmax(self.forward(x, multiply), axis=1)

    # --- layer implementations ------------------------------------------

    @staticmethod
    def _requantize(
        accum: np.ndarray, in_scale: float, w_scale: float
    ) -> Tuple[np.ndarray, float]:
        """Rescale int32 accumulators back to int8 codes.

        Chooses the output scale from the accumulator range, mimicking a
        calibrated requantisation stage.
        """
        real = accum.astype(np.float64) * (in_scale * w_scale)
        params = calibrate_scale(real)
        return quantize_tensor(real, params).astype(np.int64), params.scale

    def _conv(
        self,
        value: np.ndarray,
        scale: float,
        layer: ConvSpec,
        multiply: MultiplyFn,
    ) -> Tuple[np.ndarray, float]:
        out_c, in_c, k, _ = layer.weights.shape
        if value.shape[1] != in_c:
            raise AccuracyModelError(
                f"conv expects {in_c} input channels, got {value.shape[1]}"
            )
        w_params = calibrate_scale(layer.weights)
        w_codes = quantize_tensor(layer.weights, w_params).astype(np.int64)

        cols, out_h, out_w = _im2col(value, k, layer.stride, layer.padding)
        w_matrix = w_codes.reshape(out_c, -1).T  # (in_c*k*k, out_c)

        n = value.shape[0]
        accum = np.empty((n, out_h * out_w, out_c), dtype=np.int64)
        for image in range(n):
            accum[image] = _lut_matmul(cols[image], w_matrix, multiply)

        if layer.bias is not None:
            bias_codes = np.round(
                layer.bias / (scale * w_params.scale)
            ).astype(np.int64)
            accum += bias_codes[np.newaxis, np.newaxis, :]

        accum = accum.transpose(0, 2, 1).reshape(n, out_c, out_h, out_w)
        codes, new_scale = self._requantize(accum, scale, w_params.scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scale

    @staticmethod
    def _pool(value: np.ndarray, layer: PoolSpec) -> np.ndarray:
        n, c, h, w = value.shape
        k = layer.kernel
        if h % k or w % k:
            raise AccuracyModelError(
                f"pool kernel {k} does not tile input {h}x{w}"
            )
        reshaped = value.reshape(n, c, h // k, k, w // k, k)
        return reshaped.max(axis=(3, 5))

    def _dense(
        self,
        value: np.ndarray,
        scale: float,
        layer: DenseSpec,
        multiply: MultiplyFn,
    ) -> Tuple[np.ndarray, float]:
        n = value.shape[0]
        flat = value.reshape(n, -1)
        out_f, in_f = layer.weights.shape
        if flat.shape[1] != in_f:
            raise AccuracyModelError(
                f"dense expects {in_f} features, got {flat.shape[1]}"
            )
        w_params = calibrate_scale(layer.weights)
        w_codes = quantize_tensor(layer.weights, w_params).astype(np.int64)

        accum = _lut_matmul(flat, w_codes.T, multiply)
        if layer.bias is not None:
            accum = accum + np.round(
                layer.bias / (scale * w_params.scale)
            ).astype(np.int64)

        codes, new_scale = self._requantize(accum, scale, w_params.scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scale
