"""Quantised CNN inference with a pluggable multiplier.

This is our ApproxTrain substitute's execution engine: a small numpy
CNN whose every multiplication goes through a supplied multiplier
function — either exact integer multiply or an approximate
:class:`~repro.approx.lut.LutMultiplier`.  Convolution is im2col-based,
so the multiplier sees plain operand arrays and the approximate LUT is
exercised on exactly the products the hardware would compute.

Two execution paths share the same prepared (pre-quantised) layers:

* :meth:`QuantCNN.forward` — the scalar reference: one multiplier per
  pass, kept in-tree as the bit-exact baseline;
* :meth:`QuantCNN.forward_stack` — the batched engine: a *stack* of M
  LUT multipliers evaluated in a single pass.  The gathered products
  carry one extra leading axis (the multiplier index); per-multiplier
  requantisation is performed with broadcast numpy ops that mirror the
  scalar code operation for operation, so ``forward_stack(x, luts)[i]``
  equals ``forward(x, luts[i])`` bit for bit.  This is what lets the
  behavioural accuracy study score a whole multiplier library in one
  inference instead of ~library-size full inferences.

The stacked hot loop additionally fans out across cores: the
``stack_workers`` knob (default ``"auto"`` — one thread per CPU, serial
inside shared-pool workers) tiles the gather/accumulate work over the
multiplier and row-block axes into a preallocated output slab.  Integer
gather+add is exact in any order, so the parallel tiling is
bit-identical to the serial reference by construction; ``1`` selects
the serial loop, which stays in-tree as that reference.

The engine deliberately supports only what the behavioural accuracy
study needs (conv + ReLU + max-pool + dense on small images); the big
zoo networks are never executed here — see DESIGN.md for why.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.approx.lut import LutMultiplier
from repro.engine import kernels as _kernels
from repro.errors import AccuracyModelError
from repro.nn.quantize import (
    INT8_MAX,
    QuantParams,
    calibrate_scale,
    quantize_tensor,
)

#: A multiplier: signed int operand arrays -> elementwise products.
MultiplyFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

def exact_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference integer multiplier."""
    return a.astype(np.int64) * b.astype(np.int64)


@dataclass(frozen=True)
class ConvSpec:
    """A quantised 3x3/1x1 convolution layer (float master weights).

    Attributes:
        weights: float array (out_c, in_c, k, k).
        bias: optional float bias (out_c,).
        stride: convolution stride.
        padding: symmetric zero padding.
        relu: apply ReLU after requantisation.
    """

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    stride: int = 1
    padding: int = 1
    relu: bool = True

    def __post_init__(self) -> None:
        if self.weights.ndim != 4:
            raise AccuracyModelError(
                f"conv weights must be 4-D, got shape {self.weights.shape}"
            )


@dataclass(frozen=True)
class PoolSpec:
    """2x2 max pooling."""

    kernel: int = 2


@dataclass(frozen=True)
class DenseSpec:
    """A quantised dense layer.

    Attributes:
        weights: float array (out_features, in_features).
        bias: optional float bias (out_features,).
        relu: apply ReLU after requantisation.
    """

    weights: np.ndarray
    bias: Optional[np.ndarray] = None
    relu: bool = False

    def __post_init__(self) -> None:
        if self.weights.ndim != 2:
            raise AccuracyModelError(
                f"dense weights must be 2-D, got shape {self.weights.shape}"
            )


LayerSpec = Union[ConvSpec, PoolSpec, DenseSpec]


# --- prepared layers ----------------------------------------------------------
#
# Weight quantisation (calibrate_scale + quantize_tensor of *static*
# weights) is a pure function of the layer spec, so it is hoisted out of
# forward() into a prepared representation computed once per layer and
# reused by every subsequent pass — scalar and stacked alike.


@dataclass(frozen=True)
class _PreparedConv:
    """Pre-quantised convolution weights plus layout constants."""

    out_c: int
    in_c: int
    kernel: int
    stride: int
    padding: int
    relu: bool
    bias: Optional[np.ndarray]
    w_scale: float
    w_matrix: np.ndarray  # (in_c*k*k, out_c) int64 weight codes
    w_index: np.ndarray  # (in_c*k*k, out_c) pre-shifted table indices


@dataclass(frozen=True)
class _PreparedDense:
    """Pre-quantised dense weights plus layout constants."""

    out_f: int
    in_f: int
    relu: bool
    bias: Optional[np.ndarray]
    w_scale: float
    w_matrix: np.ndarray  # (in_f, out_f) int64 weight codes
    w_index: np.ndarray  # (in_f, out_f) pre-shifted table indices


PreparedLayer = Union[_PreparedConv, PoolSpec, _PreparedDense]


def _prepare_conv(layer: ConvSpec) -> _PreparedConv:
    out_c, in_c, k, _ = layer.weights.shape
    w_params = calibrate_scale(layer.weights)
    w_codes = quantize_tensor(layer.weights, w_params).astype(np.int64)
    w_matrix = w_codes.reshape(out_c, -1).T  # (in_c*k*k, out_c)
    return _PreparedConv(
        out_c=out_c,
        in_c=in_c,
        kernel=k,
        stride=layer.stride,
        padding=layer.padding,
        relu=layer.relu,
        bias=layer.bias,
        w_scale=w_params.scale,
        w_matrix=w_matrix,
        w_index=(w_matrix & 0xFF) << 8,
    )


def _prepare_dense(layer: DenseSpec) -> _PreparedDense:
    out_f, in_f = layer.weights.shape
    w_params = calibrate_scale(layer.weights)
    w_codes = quantize_tensor(layer.weights, w_params).astype(np.int64)
    w_matrix = w_codes.T  # (in_f, out_f)
    return _PreparedDense(
        out_f=out_f,
        in_f=in_f,
        relu=layer.relu,
        bias=layer.bias,
        w_scale=w_params.scale,
        w_matrix=w_matrix,
        w_index=(w_matrix & 0xFF) << 8,
    )


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N, out_h*out_w, C*k*k) patch matrix.

    Stride-tricks windowing instead of a Python double loop over output
    positions; row ordering (i*out_w + j) and feature ordering (c, ki,
    kj) are identical to the loop formulation.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise AccuracyModelError(
            f"conv kernel {kernel} does not fit input {h}x{w}"
        )
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kernel, kernel), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, out_h * out_w, c * kernel * kernel
    )
    return cols, out_h, out_w


def _lut_matmul(
    activations: np.ndarray, weights: np.ndarray, multiply: MultiplyFn
) -> np.ndarray:
    """Matrix product through an elementwise multiplier function.

    activations: (rows, k) int8 codes; weights: (k, cols) int8 codes.
    Broadcasting keeps the peak temporary at rows*k*cols int64 — fine
    for the small behavioural network.
    """
    products = multiply(
        activations[:, :, np.newaxis], weights[np.newaxis, :, :]
    )
    return products.sum(axis=1)


class _LutStack:
    """M LUT multipliers folded into signed-product gather tables.

    :meth:`LutMultiplier.signed_product` applies saturation, magnitude
    lookup, and sign recombination per operand pair.  For int8 codes all
    of that is a pure function of the two operand *bytes*, so each
    multiplier folds into one 256x256 signed-product table indexed by
    ``(a & 0xFF) + ((b & 0xFF) << 8)`` — the hot loop then needs only an
    integer add and a gather per MAC, with the extra leading axis
    selecting the multiplier.
    """

    #: Distinct two's-complement operand bytes.
    BYTE_SPAN = 1 << 8

    def __init__(self, multipliers: Sequence[LutMultiplier]):
        luts = list(multipliers)
        if not luts:
            raise AccuracyModelError("multiplier stack cannot be empty")
        a_width, b_width = luts[0].a_width, luts[0].b_width
        if any(
            lut.a_width != a_width or lut.b_width != b_width for lut in luts
        ):
            raise AccuracyModelError(
                "multiplier stack requires uniform operand widths"
            )
        tables = np.stack([self._signed_table(lut) for lut in luts])
        # int32 gathers halve memory traffic; fall back to int64 only
        # for (synthetic) tables whose products exceed the int32 range.
        self.max_abs_product = int(np.abs(tables).max(initial=0))
        if self.max_abs_product < np.iinfo(np.int32).max:
            tables = tables.astype(np.int32)
        self.count = len(luts)
        self.tables = tables  # (M, 65536)

    def accum_dtype(self, k: int) -> type:
        """Narrowest exact accumulator for a k-term product sum."""
        if (
            self.tables.dtype == np.int32
            and k * self.max_abs_product < np.iinfo(np.int32).max
        ):
            return np.int32
        return np.int64

    @staticmethod
    def _signed_table(lut: LutMultiplier) -> np.ndarray:
        """Signed-product table over two's-complement operand bytes.

        Entry ``u_a + (u_b << 8)`` equals
        ``lut.signed_product(s_a, s_b)`` where ``s`` is the signed value
        of byte ``u`` — saturation and sign handling included, so the
        gather is bit-identical to the scalar multiplier call.
        """
        unsigned = np.arange(256, dtype=np.int64)
        signed = np.where(unsigned < 128, unsigned, unsigned - 256)
        mag_a = np.minimum(np.abs(signed), (1 << (lut.a_width - 1)) - 1)
        mag_b = np.minimum(np.abs(signed), (1 << (lut.b_width - 1)) - 1)
        sign = np.sign(signed)
        table = np.asarray(lut.table, dtype=np.int64)
        products = table[
            mag_a[np.newaxis, :] + (mag_b[:, np.newaxis] << lut.a_width)
        ]
        # grid is [u_b, u_a]; flattening makes entry u_a + (u_b << 8)
        return (
            (sign[np.newaxis, :] * sign[:, np.newaxis]) * products
        ).reshape(-1)


#: Process-wide default for the ``stack_workers`` knob.  ``"auto"``
#: resolves to one thread per CPU (and degrades to serial inside
#: shared-pool workers, which must not oversubscribe their machine);
#: the ``REPRO_STACK_WORKERS`` environment variable overrides it.
DEFAULT_STACK_WORKERS: Union[int, str] = "auto"

#: Minimum rows per parallel tile — smaller blocks are dominated by
#: thread dispatch and per-tile sub-table regathering.
_MIN_TILE_ROWS = 2048


def resolve_stack_workers(value: Optional[Union[int, str]] = None) -> int:
    """Resolve a ``stack_workers`` knob value to a concrete count.

    ``None`` defers to ``REPRO_STACK_WORKERS`` (when set) and then to
    :data:`DEFAULT_STACK_WORKERS`; ``"auto"`` resolves to the CPU count
    — except inside a shared-pool worker process, where it degrades to
    the serial reference so process fan-out and thread tiling do not
    multiply.  Every resolution returns bit-identical results; only
    throughput changes.
    """
    if value is None:
        value = os.environ.get("REPRO_STACK_WORKERS") or DEFAULT_STACK_WORKERS
    if isinstance(value, str):
        if value == "auto":
            from repro.engine.backends import in_pool_worker

            return 1 if in_pool_worker() else (os.cpu_count() or 1)
        if not value.isdigit():
            raise AccuracyModelError(
                f"stack_workers must be 'auto' or a positive integer, "
                f"got {value!r}"
            )
        value = int(value)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise AccuracyModelError(
            f"stack_workers must be 'auto' or a positive integer, "
            f"got {value!r}"
        )
    return value


def _stack_tiles(
    m_count: int, rows: int, workers: int
) -> List[Tuple[int, int, int]]:
    """(multiplier, row_start, row_stop) tiles for the parallel matmul.

    The multiplier axis is tiled first (each multiplier's sub-table
    gather happens exactly once); the row axis is split only when there
    are fewer multipliers than workers, and never below
    :data:`_MIN_TILE_ROWS` rows per tile so the per-tile sub-table
    regather stays amortised.
    """
    if m_count < 1 or rows < 1:
        return []
    row_blocks = 1
    if m_count < workers:
        row_blocks = min(
            -(-workers // m_count),  # ceil: enough tiles for every worker
            max(1, rows // _MIN_TILE_ROWS),
        )
    bounds = np.linspace(0, rows, row_blocks + 1).astype(int)
    return [
        (m, int(bounds[block]), int(bounds[block + 1]))
        for m in range(m_count)
        for block in range(row_blocks)
        if bounds[block + 1] > bounds[block]
    ]


class _SlabPool(threading.local):
    """Per-thread pool of reusable scratch slabs, keyed (tag, shape, dtype).

    ``forward_stack`` reallocates the same per-tile gather scratch
    (``sub_tables``) and accumulator slabs on every layer of every
    call; pooling them per thread removes that churn without any
    locking.  Only slabs that never escape their tile are pooled — the
    returned ``out`` arrays are always fresh.  The pool is bounded: an
    unfamiliar key set (e.g. a sweep over many network shapes) clears
    it rather than growing without bound.
    """

    MAX_SLABS = 16

    def __init__(self) -> None:
        self.slabs: dict = {}

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tag, shape, np.dtype(dtype))
        slab = self.slabs.get(key)
        if slab is None:
            if len(self.slabs) >= self.MAX_SLABS:
                self.slabs.clear()
            slab = np.empty(shape, dtype=dtype)
            self.slabs[key] = slab
        return slab


_SLAB_POOL = _SlabPool()


def clear_slab_pool() -> None:
    """Drop the calling thread's pooled scratch slabs (test hook)."""
    _SLAB_POOL.slabs.clear()


def _lut_matmul_stack(
    activations: np.ndarray,
    w_index: np.ndarray,
    stack: _LutStack,
    workers: int = 1,
    kernel_tier: Optional[str] = None,
) -> np.ndarray:
    """Matrix product of M LUT multipliers in one pass.

    Args:
        activations: (Ma, rows, k) signed int16 codes, where Ma is
            either 1 (all multipliers still see identical activations —
            the first layer) or M (diverged activations per multiplier).
        w_index: (k, cols) pre-shifted weight-byte indices.
        stack: the stacked signed-product tables.
        workers: resolved thread count for the tiled fan-out; ``1``
            keeps the serial reference loop.
        kernel_tier: compiled-kernel tier request for the tile loop
            (``None`` = ambient default); see
            :mod:`repro.engine.kernels`.  Every tier returns
            bit-identical accumulators.

    Returns:
        (M, rows, cols) int64 accumulators; slice ``[i]`` is identical
        to ``_lut_matmul(activations[i or 0], w_matrix, luts[i])``.

    The per-MAC lookup is reorganised around the weights being fixed
    per layer: for every kernel position k the reachable products form
    a (256, cols) sub-table, so one row-gather per position fetches a
    whole cols-vector of products from an L1-resident table and
    accumulates it in place — per-MAC work collapses to one gathered
    add instead of index arithmetic plus a scalar gather from the full
    64 K-entry LUT.  The extra leading axis selects the multiplier.
    Integer accumulation is exact, so neither the iteration order, the
    (narrowest-exact) accumulator dtype, the thread tiling, nor a
    compiled kernel tier can change the result: every variant computes
    the same per-element gather+add chains into disjoint slabs of one
    preallocated output.
    """
    m_count = stack.count
    ma, rows, k = activations.shape
    cols = w_index.shape[1]
    if ma not in (1, m_count):
        raise AccuracyModelError(
            f"activation stack of {ma} does not match {m_count} multipliers"
        )

    out = np.empty((m_count, rows, cols), dtype=np.int64)
    tiles = _stack_tiles(m_count, rows, workers) if workers > 1 else []

    impl = _kernels.get_kernel(kernel_tier)
    if impl.lut_tile is not None:
        # compiled tile kernel: gathers straight from the full table,
        # no (k, 256, cols) sub-table materialisation
        acts = np.ascontiguousarray(activations, dtype=np.int16)
        w_idx = np.ascontiguousarray(w_index, dtype=np.int64)
        lut_tile = impl.lut_tile

        def run_kernel_tile(tile: Tuple[int, int, int]) -> None:
            m, start, stop = tile
            src = acts[0] if ma == 1 else acts[m]
            lut_tile(
                stack.tables[m], w_idx, src[start:stop], out[m, start:stop]
            )

        if len(tiles) > 1:
            # ctypes/numba calls release the GIL, so the existing
            # thread tiling composes with the compiled kernel
            with ThreadPoolExecutor(
                max_workers=min(workers, len(tiles))
            ) as pool:
                list(pool.map(run_kernel_tile, tiles))
        else:
            for m in range(m_count):
                run_kernel_tile((m, 0, rows))
        return out

    # (k, 256, cols) product sub-tables: entry [kk, byte, c] is the
    # product of activation `byte` with weight position (kk, c)
    gather_index = (
        np.arange(_LutStack.BYTE_SPAN)[np.newaxis, :, np.newaxis]
        + w_index[:, np.newaxis, :]
    )
    sum_dtype = stack.accum_dtype(k)
    sub_shape = (k, _LutStack.BYTE_SPAN, cols)
    table_dtype = stack.tables.dtype

    if len(tiles) > 1:
        # hoisted once when all multipliers share activations — tiles
        # slice it read-only instead of re-deriving it per multiplier
        shared_tile_bytes = (
            (activations[0] & 0xFF).astype(np.intp) if ma == 1 else None
        )

        def run_tile(tile: Tuple[int, int, int]) -> None:
            m, start, stop = tile
            sub_tables = _SLAB_POOL.get("lut_sub", sub_shape, table_dtype)
            np.take(stack.tables[m], gather_index, out=sub_tables)
            if shared_tile_bytes is not None:
                a_bytes = shared_tile_bytes[start:stop]
            else:
                a_bytes = (activations[m][start:stop] & 0xFF).astype(np.intp)
            accum = _SLAB_POOL.get(
                "lut_accum", (stop - start, cols), sum_dtype
            )
            accum.fill(0)
            for position in range(k):
                accum += sub_tables[position][a_bytes[:, position]]
            out[m, start:stop] = accum

        # numpy's gather and in-place add release the GIL, so thread
        # tiling scales without pickling the (large) activation stacks
        with ThreadPoolExecutor(
            max_workers=min(workers, len(tiles))
        ) as pool:
            # list() drains the iterator so worker exceptions propagate
            list(pool.map(run_tile, tiles))
        return out

    shared_bytes = (
        (activations[0] & 0xFF).astype(np.intp) if ma == 1 else None
    )
    for m in range(m_count):
        sub_tables = _SLAB_POOL.get("lut_sub", sub_shape, table_dtype)
        np.take(stack.tables[m], gather_index, out=sub_tables)
        a_bytes = (
            shared_bytes
            if shared_bytes is not None
            else (activations[m] & 0xFF).astype(np.intp)
        )
        accum = _SLAB_POOL.get("lut_accum", (rows, cols), sum_dtype)
        accum.fill(0)
        for position in range(k):
            accum += sub_tables[position][a_bytes[:, position]]
        out[m] = accum
    return out


def _requantize_stack(
    accum: np.ndarray, in_scales: np.ndarray, w_scale: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-multiplier requantisation of stacked int accumulators.

    Mirrors the scalar ``_requantize`` (calibrate from the accumulator
    range, then round/saturate) with one broadcast op per scalar op, so
    every slice along the leading axis is bit-identical to the scalar
    path run on that multiplier alone.
    """
    m_count = accum.shape[0]
    tail = (m_count,) + (1,) * (accum.ndim - 1)
    factors = in_scales * w_scale
    real = accum.astype(np.float64)
    np.multiply(real, factors.reshape(tail), out=real)
    # max|x| as max(max, -min): same floats, no |x| temporary
    flat = real.reshape(m_count, -1)
    max_abs = np.maximum(flat.max(axis=1), -flat.min(axis=1))
    scales = np.where(max_abs == 0.0, 1.0 / INT8_MAX, max_abs / INT8_MAX)
    np.divide(real, scales.reshape(tail), out=real)
    np.round(real, out=real)
    np.clip(real, -INT8_MAX, INT8_MAX, out=real)
    # int16 holds every int8-range code exactly; the narrower dtype
    # keeps the stacked activations' transpose/pool copies cheap
    return real.astype(np.int16), scales


@dataclass
class QuantCNN:
    """A quantised CNN executed through a pluggable multiplier.

    Attributes:
        layers: layer specifications in order.
        input_params: quantisation of the (float) input tensor.
    """

    layers: List[LayerSpec] = field(default_factory=list)
    input_params: Optional[QuantParams] = None
    _prepared: Optional[List[PreparedLayer]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _prepared_signature: Optional[Tuple[int, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def calibrate(self, sample_inputs: np.ndarray) -> None:
        """Fix the input quantisation scale from a calibration batch."""
        self.input_params = calibrate_scale(sample_inputs)

    def _layer_signature(self) -> Tuple:
        """Identity *and* content fingerprint of the layer list.

        Layer weights are semantically static, but nothing stops a
        caller from mutating an array in place (the specs are frozen,
        their ndarrays are not) — so the memo key hashes the weight
        bytes too.  The behavioural networks are tiny, making the hash
        negligible next to one forward pass.
        """
        parts = []
        for layer in self.layers:
            if isinstance(layer, PoolSpec):
                parts.append((id(layer), layer.kernel))
            elif isinstance(layer, ConvSpec):
                bias = b"" if layer.bias is None else layer.bias.tobytes()
                parts.append(
                    (
                        id(layer), "conv", layer.stride, layer.padding,
                        layer.relu, hash(layer.weights.tobytes()), hash(bias),
                    )
                )
            else:
                bias = b"" if layer.bias is None else layer.bias.tobytes()
                parts.append(
                    (
                        id(layer), "dense", layer.relu,
                        hash(layer.weights.tobytes()), hash(bias),
                    )
                )
        return tuple(parts)

    def prepared_layers(self) -> List[PreparedLayer]:
        """Layers with weight quantisation hoisted out of forward().

        Static weights are quantised once and memoised; the cache is
        invalidated when the layer list changes — by identity or by
        in-place weight mutation.
        """
        signature = self._layer_signature()
        if self._prepared is None or self._prepared_signature != signature:
            prepared: List[PreparedLayer] = []
            for layer in self.layers:
                if isinstance(layer, ConvSpec):
                    prepared.append(_prepare_conv(layer))
                elif isinstance(layer, PoolSpec):
                    prepared.append(layer)
                elif isinstance(layer, DenseSpec):
                    prepared.append(_prepare_dense(layer))
                else:  # pragma: no cover - exhaustive over LayerSpec
                    raise AccuracyModelError(f"unknown layer spec {layer!r}")
            self._prepared = prepared
            self._prepared_signature = signature
        return self._prepared

    def _check_input(self, x: np.ndarray) -> None:
        if self.input_params is None:
            raise AccuracyModelError(
                "QuantCNN.calibrate must run before forward"
            )
        if x.ndim != 4:
            raise AccuracyModelError(
                f"input must be (N, C, H, W), got shape {x.shape}"
            )

    # ------------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        multiply: MultiplyFn = exact_multiply,
    ) -> np.ndarray:
        """Run a float batch through the quantised network.

        Args:
            x: inputs shaped (N, C, H, W).
            multiply: elementwise integer multiplier (exact or LUT).

        Returns:
            Float logits (N, classes).
        """
        self._check_input(x)
        codes = quantize_tensor(x, self.input_params)
        scale = self.input_params.scale
        value = codes.astype(np.int64)

        for layer in self.prepared_layers():
            if isinstance(layer, _PreparedConv):
                value, scale = self._conv(value, scale, layer, multiply)
            elif isinstance(layer, PoolSpec):
                value = self._pool(value, layer)
            else:
                value, scale = self._dense(value, scale, layer, multiply)
        return value.astype(np.float64) * scale

    def predict(
        self, x: np.ndarray, multiply: MultiplyFn = exact_multiply
    ) -> np.ndarray:
        """Argmax class predictions for a float batch."""
        return np.argmax(self.forward(x, multiply), axis=1)

    # --- stacked (library-batched) path ---------------------------------

    def forward_stack(
        self,
        x: np.ndarray,
        multipliers: Sequence[LutMultiplier],
        stack_workers: Optional[Union[int, str]] = None,
        kernel_tier: Optional[str] = None,
    ) -> np.ndarray:
        """Run a float batch under a stack of M LUT multipliers at once.

        Args:
            x: inputs shaped (N, C, H, W).
            multipliers: LUT multipliers sharing one operand geometry.
            stack_workers: thread count for the tiled gather fan-out —
                ``"auto"`` (one per CPU), a positive integer, or
                ``None`` to defer to :data:`DEFAULT_STACK_WORKERS` /
                ``REPRO_STACK_WORKERS``.  ``1`` is the serial
                reference; every value returns bit-identical logits.
            kernel_tier: compiled-kernel tier for the gather loop
                (``None`` = ambient default, ``REPRO_KERNEL_TIER`` then
                ``auto``); every tier returns bit-identical logits.

        Returns:
            Float logits (M, N, classes); slice ``[i]`` is bit-identical
            to ``forward(x, multipliers[i])``.

        Raises:
            AccuracyModelError: on empty stacks or mixed operand widths
                (mixed-width stacks have no shared index space; fall
                back to the scalar path for those).
        """
        self._check_input(x)
        stack = _LutStack(multipliers)
        workers = resolve_stack_workers(stack_workers)

        codes = quantize_tensor(x, self.input_params)
        # int16 activations: lossless for int8-range codes, and byte
        # masking (& 0xFF) still yields the two's-complement byte
        value = codes.astype(np.int16)[np.newaxis]  # (1, N, C, H, W)
        scales = np.full(stack.count, self.input_params.scale, dtype=np.float64)

        for layer in self.prepared_layers():
            if isinstance(layer, _PreparedConv):
                value, scales = self._conv_stack(
                    value, scales, layer, stack, workers, kernel_tier
                )
            elif isinstance(layer, PoolSpec):
                value = self._pool_stack(value, layer)
            else:
                value, scales = self._dense_stack(
                    value, scales, layer, stack, workers, kernel_tier
                )
        tail = (scales.shape[0],) + (1,) * (value.ndim - 1)
        return value.astype(np.float64) * scales.reshape(tail)

    def predict_stack(
        self,
        x: np.ndarray,
        multipliers: Sequence[LutMultiplier],
        stack_workers: Optional[Union[int, str]] = None,
        kernel_tier: Optional[str] = None,
    ) -> np.ndarray:
        """Argmax predictions (M, N) under a stack of LUT multipliers."""
        return np.argmax(
            self.forward_stack(
                x,
                multipliers,
                stack_workers=stack_workers,
                kernel_tier=kernel_tier,
            ),
            axis=2,
        )

    # --- layer implementations ------------------------------------------

    @staticmethod
    def _requantize(
        accum: np.ndarray, in_scale: float, w_scale: float
    ) -> Tuple[np.ndarray, float]:
        """Rescale int32 accumulators back to int8 codes.

        Chooses the output scale from the accumulator range, mimicking a
        calibrated requantisation stage.
        """
        real = accum.astype(np.float64) * (in_scale * w_scale)
        params = calibrate_scale(real)
        return quantize_tensor(real, params).astype(np.int64), params.scale

    def _conv(
        self,
        value: np.ndarray,
        scale: float,
        layer: _PreparedConv,
        multiply: MultiplyFn,
    ) -> Tuple[np.ndarray, float]:
        if value.shape[1] != layer.in_c:
            raise AccuracyModelError(
                f"conv expects {layer.in_c} input channels, got {value.shape[1]}"
            )
        cols, out_h, out_w = _im2col(
            value, layer.kernel, layer.stride, layer.padding
        )

        n = value.shape[0]
        accum = np.empty((n, out_h * out_w, layer.out_c), dtype=np.int64)
        for image in range(n):
            accum[image] = _lut_matmul(cols[image], layer.w_matrix, multiply)

        if layer.bias is not None:
            bias_codes = np.round(
                layer.bias / (scale * layer.w_scale)
            ).astype(np.int64)
            accum += bias_codes[np.newaxis, np.newaxis, :]

        accum = accum.transpose(0, 2, 1).reshape(n, layer.out_c, out_h, out_w)
        codes, new_scale = self._requantize(accum, scale, layer.w_scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scale

    def _conv_stack(
        self,
        value: np.ndarray,
        scales: np.ndarray,
        layer: _PreparedConv,
        stack: _LutStack,
        workers: int = 1,
        kernel_tier: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        ma, n = value.shape[0], value.shape[1]
        if value.shape[2] != layer.in_c:
            raise AccuracyModelError(
                f"conv expects {layer.in_c} input channels, got {value.shape[2]}"
            )
        flat = value.reshape((ma * n,) + value.shape[2:])
        cols, out_h, out_w = _im2col(
            flat, layer.kernel, layer.stride, layer.padding
        )
        cols = cols.reshape(ma, n * out_h * out_w, cols.shape[2])

        accum = _lut_matmul_stack(
            cols, layer.w_index, stack, workers, kernel_tier
        )
        m_count = stack.count
        accum = accum.reshape(m_count, n, out_h * out_w, layer.out_c)

        if layer.bias is not None:
            factors = scales * layer.w_scale
            bias_codes = np.round(
                layer.bias[np.newaxis, :] / factors[:, np.newaxis]
            ).astype(np.int64)
            accum += bias_codes[:, np.newaxis, np.newaxis, :]

        accum = accum.transpose(0, 1, 3, 2).reshape(
            m_count, n, layer.out_c, out_h, out_w
        )
        codes, new_scales = _requantize_stack(accum, scales, layer.w_scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scales

    @staticmethod
    def _pool(value: np.ndarray, layer: PoolSpec) -> np.ndarray:
        n, c, h, w = value.shape
        k = layer.kernel
        if h % k or w % k:
            raise AccuracyModelError(
                f"pool kernel {k} does not tile input {h}x{w}"
            )
        reshaped = value.reshape(n, c, h // k, k, w // k, k)
        return reshaped.max(axis=(3, 5))

    @staticmethod
    def _pool_stack(value: np.ndarray, layer: PoolSpec) -> np.ndarray:
        ma, n, c, h, w = value.shape
        k = layer.kernel
        if h % k or w % k:
            raise AccuracyModelError(
                f"pool kernel {k} does not tile input {h}x{w}"
            )
        reshaped = value.reshape(ma, n, c, h // k, k, w // k, k)
        return reshaped.max(axis=(4, 6))

    def _dense(
        self,
        value: np.ndarray,
        scale: float,
        layer: _PreparedDense,
        multiply: MultiplyFn,
    ) -> Tuple[np.ndarray, float]:
        n = value.shape[0]
        flat = value.reshape(n, -1)
        if flat.shape[1] != layer.in_f:
            raise AccuracyModelError(
                f"dense expects {layer.in_f} features, got {flat.shape[1]}"
            )
        accum = _lut_matmul(flat, layer.w_matrix, multiply)
        if layer.bias is not None:
            accum = accum + np.round(
                layer.bias / (scale * layer.w_scale)
            ).astype(np.int64)

        codes, new_scale = self._requantize(accum, scale, layer.w_scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scale

    def _dense_stack(
        self,
        value: np.ndarray,
        scales: np.ndarray,
        layer: _PreparedDense,
        stack: _LutStack,
        workers: int = 1,
        kernel_tier: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        ma, n = value.shape[0], value.shape[1]
        flat = value.reshape(ma, n, -1)
        if flat.shape[2] != layer.in_f:
            raise AccuracyModelError(
                f"dense expects {layer.in_f} features, got {flat.shape[2]}"
            )
        accum = _lut_matmul_stack(
            flat, layer.w_index, stack, workers, kernel_tier
        )
        if layer.bias is not None:
            factors = scales * layer.w_scale
            bias_codes = np.round(
                layer.bias[np.newaxis, :] / factors[:, np.newaxis]
            ).astype(np.int64)
            accum = accum + bias_codes[:, np.newaxis, :]

        codes, new_scales = _requantize_stack(accum, scales, layer.w_scale)
        if layer.relu:
            codes = np.maximum(codes, 0)
        return codes, new_scales
