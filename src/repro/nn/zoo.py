"""Layer tables of the paper's evaluation workloads.

All four networks are described at the standard ImageNet input
resolution (224x224x3).  Only shape information is stored — weights are
irrelevant to the performance and carbon models, and the accuracy model
works from layer statistics (see :mod:`repro.accuracy`).

MAC budgets (useful sanity anchors, verified by the test suite):

=========== ============ ==============
network     GMACs (int8)  weights (MB)
=========== ============ ==============
VGG16        ~15.5        ~138
VGG19        ~19.6        ~144
ResNet50     ~4.1         ~25.5
ResNet152    ~11.6        ~60
=========== ============ ==============

Residual element-wise additions are not modelled (they are vector adds,
not MAC-array work, and contribute <1% of traffic).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.dataflow.layers import ConvLayer, FCLayer, Layer, PoolLayer
from repro.dataflow.network import Network
from repro.errors import WorkloadError

WORKLOAD_NAMES: Tuple[str, ...] = ("vgg16", "vgg19", "resnet50", "resnet152")


# --- VGG family ---------------------------------------------------------------

_VGG16_STAGES = ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512))
_VGG19_STAGES = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def _vgg(name: str, stages: Tuple[Tuple[int, int], ...]) -> Network:
    layers: List[Layer] = []
    channels = 3
    size = 224
    for stage_index, (n_convs, width) in enumerate(stages, start=1):
        for conv_index in range(1, n_convs + 1):
            layers.append(
                ConvLayer(
                    name=f"conv{stage_index}_{conv_index}",
                    in_channels=channels,
                    out_channels=width,
                    in_height=size,
                    in_width=size,
                    kernel=3,
                    stride=1,
                    padding=1,
                )
            )
            channels = width
        layers.append(
            PoolLayer(
                name=f"pool{stage_index}",
                channels=channels,
                in_height=size,
                in_width=size,
                kernel=2,
            )
        )
        size //= 2
    layers.append(FCLayer("fc6", channels * size * size, 4096))
    layers.append(FCLayer("fc7", 4096, 4096))
    layers.append(FCLayer("fc8", 4096, 1000))
    return Network(name, tuple(layers))


def vgg16() -> Network:
    """VGG-16 at 224x224 (13 convs + 3 FC)."""
    return _vgg("vgg16", _VGG16_STAGES)


def vgg19() -> Network:
    """VGG-19 at 224x224 (16 convs + 3 FC)."""
    return _vgg("vgg19", _VGG19_STAGES)


# --- ResNet family --------------------------------------------------------------

_RESNET_STAGE_WIDTHS = (64, 128, 256, 512)
_RESNET50_BLOCKS = (3, 4, 6, 3)
_RESNET152_BLOCKS = (3, 8, 36, 3)


def _bottleneck(
    layers: List[Layer],
    prefix: str,
    in_channels: int,
    mid_channels: int,
    size: int,
    stride: int,
    downsample: bool,
) -> Tuple[int, int]:
    """Append one bottleneck block; returns (out_channels, out_size)."""
    out_channels = 4 * mid_channels
    layers.append(
        ConvLayer(
            name=f"{prefix}_conv1",
            in_channels=in_channels,
            out_channels=mid_channels,
            in_height=size,
            in_width=size,
            kernel=1,
        )
    )
    layers.append(
        ConvLayer(
            name=f"{prefix}_conv2",
            in_channels=mid_channels,
            out_channels=mid_channels,
            in_height=size,
            in_width=size,
            kernel=3,
            stride=stride,
            padding=1,
        )
    )
    out_size = size // stride
    layers.append(
        ConvLayer(
            name=f"{prefix}_conv3",
            in_channels=mid_channels,
            out_channels=out_channels,
            in_height=out_size,
            in_width=out_size,
            kernel=1,
        )
    )
    if downsample:
        layers.append(
            ConvLayer(
                name=f"{prefix}_down",
                in_channels=in_channels,
                out_channels=out_channels,
                in_height=size,
                in_width=size,
                kernel=1,
                stride=stride,
            )
        )
    return out_channels, out_size


def _resnet(name: str, blocks_per_stage: Tuple[int, ...]) -> Network:
    layers: List[Layer] = [
        ConvLayer(
            name="conv1",
            in_channels=3,
            out_channels=64,
            in_height=224,
            in_width=224,
            kernel=7,
            stride=2,
            padding=3,
        ),
        PoolLayer(
            name="pool1", channels=64, in_height=112, in_width=112,
            kernel=3, stride=2, padding=1,
        ),
    ]
    channels = 64
    size = 56
    for stage_index, (n_blocks, mid) in enumerate(
        zip(blocks_per_stage, _RESNET_STAGE_WIDTHS), start=2
    ):
        for block_index in range(1, n_blocks + 1):
            first = block_index == 1
            stride = 2 if (first and stage_index > 2) else 1
            channels, size = _bottleneck(
                layers,
                prefix=f"s{stage_index}b{block_index}",
                in_channels=channels,
                mid_channels=mid,
                size=size,
                stride=stride,
                downsample=first,
            )
    layers.append(
        PoolLayer(
            name="global_pool", channels=channels,
            in_height=size, in_width=size, kernel=size,
        )
    )
    layers.append(FCLayer("fc", channels, 1000))
    return Network(name, tuple(layers))


def resnet50() -> Network:
    """ResNet-50 at 224x224 (bottleneck blocks 3-4-6-3)."""
    return _resnet("resnet50", _RESNET50_BLOCKS)


def resnet152() -> Network:
    """ResNet-152 at 224x224 (bottleneck blocks 3-8-36-3)."""
    return _resnet("resnet152", _RESNET152_BLOCKS)


# --- lookup --------------------------------------------------------------------

_BUILDERS = {
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet50": resnet50,
    "resnet152": resnet152,
}


@lru_cache(maxsize=None)
def workload(name: str) -> Network:
    """Look up a workload by name (cached; networks are immutable)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {list(WORKLOAD_NAMES)}"
        ) from None
    return builder()


def workload_depths() -> Dict[str, int]:
    """Number of MAC-executing layers per workload (accuracy model input)."""
    return {
        name: len(workload(name).compute_layers()) for name in WORKLOAD_NAMES
    }
