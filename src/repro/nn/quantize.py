"""Symmetric int8 quantisation helpers.

The behavioural accuracy path quantises activations and weights to
signed int8 with per-tensor symmetric scales — the scheme the
approximate 8x8 magnitude multipliers (plus external sign handling)
implement in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AccuracyModelError

INT8_MAX = 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor symmetric quantisation parameters.

    Attributes:
        scale: float step size; real value = scale * int8 code.
    """

    scale: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise AccuracyModelError(
                f"quantisation scale must be positive and finite, got {self.scale}"
            )


def calibrate_scale(tensor: np.ndarray) -> QuantParams:
    """Choose the symmetric scale that covers a tensor's max magnitude."""
    max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
    if max_abs == 0.0:
        return QuantParams(scale=1.0 / INT8_MAX)
    return QuantParams(scale=max_abs / INT8_MAX)


def quantize_tensor(tensor: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantise to int8 codes with round-to-nearest and saturation."""
    codes = np.round(np.asarray(tensor, dtype=np.float64) / params.scale)
    return np.clip(codes, -INT8_MAX, INT8_MAX).astype(np.int8)


def dequantize_tensor(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Reconstruct real values from int8 codes."""
    return codes.astype(np.float64) * params.scale
