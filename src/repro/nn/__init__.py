"""DNN workloads and a LUT-pluggable quantised inference engine.

* :mod:`repro.nn.zoo` — layer tables of the paper's four workloads
  (VGG16, VGG19, ResNet50, ResNet152) at 224x224;
* :mod:`repro.nn.quantize` — symmetric int8 quantisation helpers;
* :mod:`repro.nn.inference` — a numpy conv/fc engine whose inner
  multiply is pluggable (exact or an approximate LUT) — the same
  mechanism ApproxTrain uses;
* :mod:`repro.nn.synthetic` — deterministic synthetic classification
  task + prototype-classifier weights (the offline stand-in for an
  ImageNet subset; see DESIGN.md).
"""

from repro.nn.zoo import (
    vgg16,
    vgg19,
    resnet50,
    resnet152,
    workload,
    WORKLOAD_NAMES,
)
from repro.nn.quantize import QuantParams, quantize_tensor, dequantize_tensor
from repro.nn.inference import QuantCNN, ConvSpec, DenseSpec, PoolSpec
from repro.nn.synthetic import SyntheticTask, make_task

__all__ = [
    "vgg16",
    "vgg19",
    "resnet50",
    "resnet152",
    "workload",
    "WORKLOAD_NAMES",
    "QuantParams",
    "quantize_tensor",
    "dequantize_tensor",
    "QuantCNN",
    "ConvSpec",
    "DenseSpec",
    "PoolSpec",
    "SyntheticTask",
    "make_task",
]
