"""Numpy-vectorized NSGA-II internals.

Drop-in replacements for the O(n^2)-in-Python helpers in
:mod:`repro.approx.nsga2`.  Exactness matters more than elegance here:
the optimisers tie-break on front membership *order*, so each function
reproduces the reference implementation's output — including the order
of indices within every front — bit for bit.  The property tests in
``tests/engine/test_vectorized.py`` enforce this against the reference
on random objective sets.

All objectives are minimised, matching the reference.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

Objectives = Tuple[float, ...]


def dominance_matrix(objectives: np.ndarray) -> np.ndarray:
    """Boolean matrix ``D[i, j]`` = row ``i`` Pareto-dominates row ``j``.

    Args:
        objectives: ``(n, m)`` float array, one row per individual.
    """
    less_equal = (objectives[:, None, :] <= objectives[None, :, :]).all(axis=2)
    strictly_less = (objectives[:, None, :] < objectives[None, :, :]).any(axis=2)
    return less_equal & strictly_less


def fast_non_dominated_sort_np(
    objectives: Sequence[Objectives],
) -> List[List[int]]:
    """Vectorized front partition, equal to the reference ordering.

    The reference peels fronts by walking each member's dominated list
    and appending an index the moment its domination count reaches
    zero; within a new front that ordering is (position in the current
    front of the index's *last* dominator, then the index itself).
    Replicating it keeps seeded NSGA-II runs bit-identical, because
    survivor selection and crowding tie-break on front order.
    """
    n = len(objectives)
    if n == 0:
        return []
    objs = np.asarray(objectives, dtype=np.float64)
    dom = dominance_matrix(objs)
    count = dom.sum(axis=0)
    assigned = np.zeros(n, dtype=bool)

    fronts: List[List[int]] = []
    front = np.flatnonzero(count == 0)  # ascending, like the reference
    while front.size:
        fronts.append([int(i) for i in front])
        assigned[front] = True
        dominated = dom[front, :]  # (|front|, n)
        count = count - dominated.sum(axis=0)
        newly = np.flatnonzero((count == 0) & ~assigned)
        if newly.size == 0:
            break
        last_dominator = np.where(
            dominated[:, newly], np.arange(front.size)[:, None], -1
        ).max(axis=0)
        front = newly[np.lexsort((newly, last_dominator))]
    return fronts


def crowding_distance_np(
    objectives: Sequence[Objectives], front: Sequence[int]
) -> Dict[int, float]:
    """Argsort-based crowding distance, equal to the reference values.

    Stable argsort reproduces the reference's ``sorted`` tie handling,
    and objectives are accumulated in the same order so the floating-
    point sums agree exactly.
    """
    members = [int(i) for i in front]
    if len(members) <= 2:
        return {i: float("inf") for i in members}
    objs = np.asarray(objectives, dtype=np.float64)[members]
    distance = np.zeros(len(members))
    for m in range(objs.shape[1]):
        values = objs[:, m]
        order = np.argsort(values, kind="stable")
        lo = values[order[0]]
        hi = values[order[-1]]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if hi == lo:
            continue
        gaps = (values[order[2:]] - values[order[:-2]]) / (hi - lo)
        distance[order[1:-1]] += gaps
    return {members[i]: float(distance[i]) for i in range(len(members))}


def pareto_front_np(
    points: Sequence[Tuple[Hashable, Objectives]],
) -> List[Tuple[Hashable, Objectives]]:
    """Vectorized non-dominated filter over (item, objectives) pairs.

    One broadcast dominance matrix replaces the reference's rescan of
    all points per point; the survivor order and the first-occurrence
    tie rule are unchanged.
    """
    if not points:
        return []
    objs = np.asarray([obj for _, obj in points], dtype=np.float64)
    dominated = dominance_matrix(objs).any(axis=0)
    seen: set = set()
    result: List[Tuple[Hashable, Objectives]] = []
    for index, (item, obj) in enumerate(points):
        if obj in seen:
            continue
        if dominated[index]:
            continue
        seen.add(obj)
        result.append((item, obj))
    return result


def uniform_crossover(
    a: Sequence[int], b: Sequence[int], rng: np.random.Generator
) -> Tuple[int, ...]:
    """Uniform crossover, vectorized.

    Draws one ``rng.random(len(a))`` vector — the same single draw the
    scalar implementations made — so seeded runs are unchanged.  Shared
    by the GA chromosome space and the NSGA-II default operator.
    """
    take_a = rng.random(len(a)) < 0.5
    return tuple(
        int(g)
        for g in np.where(
            take_a, np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
        )
    )


def ranks_and_crowding(
    objectives: Sequence[Objectives],
) -> Tuple[List[List[int]], Dict[int, int], Dict[int, float]]:
    """Front partition plus per-index rank and crowding in one pass.

    Convenience for the NSGA-II offspring loop, which needs all three.
    """
    fronts = fast_non_dominated_sort_np(objectives)
    rank: Dict[int, int] = {}
    crowd: Dict[int, float] = {}
    for depth, front in enumerate(fronts):
        for i in front:
            rank[i] = depth
        crowd.update(crowding_distance_np(objectives, front))
    return fronts, rank, crowd
