"""Pluggable compiled-kernel tiers for the two hot inner loops.

The engine's hottest loops — the packed uint64 circuit slabs of
:mod:`repro.circuits.batched` (exhaustive population simulation, table
packing, and the constant-propagation/liveness area sweep) and the LUT
gather+accumulate of :mod:`repro.nn.inference` — are numpy-bound
Python.  This module puts optional native implementations of those
loops behind a small registry mirroring the
:func:`repro.engine.backends.register_backend` pattern:

* ``numpy``  — the in-tree reference (no compiled ops; callers keep
  their vectorized numpy path).  Always available.
* ``c``      — a tiny C library compiled at import time with the host
  toolchain (``cc``/``gcc``/``clang``) and called through ctypes
  (:mod:`repro.engine.kernels_c`).  Skipped when no compiler exists.
* ``numba``  — ``@njit(nopython)`` transcriptions of the same loops
  (:mod:`repro.engine.kernels_numba`).  Skipped when numba is not
  installed.

Selection goes through :func:`resolve_kernel_tier`: an explicit tier
name, the ``REPRO_KERNEL_TIER`` environment variable, or ``auto`` (the
default — the fastest *available* tier).  A requested tier that cannot
load degrades to ``numpy`` with a :class:`RuntimeWarning` instead of
failing: every tier is bit-identical to the numpy reference (the
property suite in ``tests/engine/test_kernels.py`` pins this), so
degradation changes throughput, never results.

Each non-numpy tier must pass a hard-coded self-test at load time
(:func:`self_test_kernel`); a tier whose compiled code diverges marks
itself unavailable rather than silently corrupting a search.

Process pools and remote fleets: the module registers a
``kernel_tier`` fork-context provider so the shared warm process pool
reforks when the ambient tier selection changes, and
:func:`kernel_availability` feeds the remote worker handshake so a
coordinator can warn about (not crash on) a fleet mixing compiled and
numpy-only workers.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError

#: Environment variable naming the default kernel tier.  Spawned pool
#: and remote workers inherit the parent's environment, so setting it
#: (e.g. via the CLI's ``--kernel-tier``) propagates the selection to
#: every worker the run forks or spawns.
KERNEL_TIER_ENV = "REPRO_KERNEL_TIER"

#: The always-available reference tier.
NUMPY_TIER = "numpy"

#: The pseudo-tier resolving to the fastest available implementation.
AUTO_TIER = "auto"


class KernelError(ExperimentError):
    """A kernel tier failed to load or failed its self-test."""


# --------------------------------------------------------------------------
# Kernel plans: flat array views of the compiled circuit program.
#
# The plan objects carry everything a native kernel needs as plain
# contiguous numpy arrays, so the implementation modules (C/numba)
# depend only on this module, never on repro.circuits.
# --------------------------------------------------------------------------

#: Operand/result source codes used by :class:`SlabPlan`.
SRC_BUFFER = 0  #: a gate-output slab in the workspace
SRC_PATTERN = 1  #: a broadcast packed input-pattern row
SRC_ZERO = 2  #: the all-zeros constant row
SRC_ONES = 3  #: the all-ones constant row


@dataclass
class SlabPlan:
    """Flat program for the population simulation + table packing.

    Gate kinds use the fixed ``repro.circuits.batched`` code order
    (NOT=0, BUF=1, AND=2, OR=3, NAND=4, NOR=5, XOR=6, XNOR=7, MUX=8).
    Buffers are register-allocated from the evaluator's slab-freeing
    plan, so the native workspace peak equals the numpy path's peak
    live slab count.
    """

    n_cases: int
    n_words: int
    n_cands: int
    n_buffers: int
    op_kind: np.ndarray  # (n_steps,) int8 gate-kind codes
    out_buf: np.ndarray  # (n_steps,) int32 output buffer index
    in_src: np.ndarray  # (n_steps, 3) uint8 SRC_* codes
    in_index: np.ndarray  # (n_steps, 3) int32 buffer/pattern index
    patterns: np.ndarray  # (n_inputs, n_words) uint64 packed inputs
    tie_offsets: np.ndarray  # (n_steps + 1,) int64 into tie_cand/const
    tie_cand: np.ndarray  # (n_ties,) int32 candidate index
    tie_const: np.ndarray  # (n_ties,) uint8 tie constant (0/1)
    res_src: np.ndarray  # (n_results,) uint8 SRC_* codes
    res_index: np.ndarray  # (n_results,) int32 buffer/pattern index


@dataclass
class SweepPlan:
    """Flat state for the per-genome constant-prop + liveness sweep.

    The native sweep replays :func:`repro.circuits.transform.simplify`
    per genome: every pass processes every gate in program order with
    the exact ``simplify_gate`` algebra (processing a gate whose
    inputs did not change is the identity, so the numpy path's shared
    dirty sets and this exhaustive scan reach identical pass-k states),
    capped at the same 16 passes, followed by alias path compression,
    backward liveness from the primary outputs, and an exact float64
    GE sum (every cell size is a multiple of 0.25, so summation order
    cannot perturb the total).
    """

    n_slots: int
    n_cands: int
    max_passes: int
    gate_out: np.ndarray  # (n_gates,) int32 output slot per gate
    kind0: np.ndarray  # (n_gates,) int8 gate-kind codes
    ins0: np.ndarray  # (n_gates, 3) int32 input slots
    val0: np.ndarray  # (n_slots,) int8 known value (-1 unknown)
    is_gate0: np.ndarray  # (n_slots,) uint8 slot is a live gate output
    cand_slots: np.ndarray  # (n_cands,) int32 prunable-wire slots
    cand_consts: np.ndarray  # (n_cands,) int8 tie constants
    out_slots: np.ndarray  # (n_outs,) int32 primary-output slots
    arity: np.ndarray  # (n_kinds,) int8 arity per kind code
    ge: np.ndarray  # (n_kinds,) float64 gate equivalents per kind


@dataclass
class KernelImpl:
    """One loaded kernel tier.

    Attributes:
        name: registry name (``numpy`` / ``c`` / ``numba`` / ...).
        version: human-readable backing-dependency version (e.g.
            ``numpy 2.4.6``, ``numba 0.60.0``, a compiler id for the C
            tier) stamped into benchmark reports.
        simulate_tables: optional ``(SlabPlan, ties) -> (P, n_cases)
            uint64`` exhaustive result tables (``ties`` is the boolean
            ``(P, n_cands)`` genome matrix).
        sweep_ge: optional ``(SweepPlan, ties) -> (P,) float64``
            pruned-and-simplified areas.
        lut_tile: optional in-place LUT tile kernel
            ``(table, w_index, activations, out) -> None`` where
            ``table`` is one multiplier's (65536,) signed-product
            table (int32 or int64), ``w_index`` the (k, cols) int64
            pre-shifted weight indices, ``activations`` a contiguous
            (rows, k) int16 activation slab, and ``out`` the (rows,
            cols) int64 output slab to overwrite.

    The numpy tier carries no callables — callers keep their in-tree
    vectorized path, which stays the bit-identity reference.
    """

    name: str
    version: str
    simulate_tables: Optional[Callable[..., np.ndarray]] = None
    sweep_ge: Optional[Callable[..., np.ndarray]] = None
    lut_tile: Optional[Callable[..., None]] = None


# --------------------------------------------------------------------------
# Registry.
# --------------------------------------------------------------------------

#: name -> (priority, loader).  Higher priority wins ``auto``.
_TIER_FACTORIES: Dict[str, Tuple[int, Callable[[], KernelImpl]]] = {}
#: name -> loaded impl, or None when the load failed.
_LOADED: Dict[str, Optional[KernelImpl]] = {}
#: name -> load-failure reason (for diagnostics).
_LOAD_ERRORS: Dict[str, str] = {}
#: (requested, resolved) pairs already warned about (warn once each).
_WARNED: set = set()
_LOCK = threading.RLock()


def register_kernel_tier(
    name: str, loader: Callable[[], KernelImpl], priority: int = 0
) -> None:
    """Register a kernel tier under a ``--kernel-tier`` name.

    ``loader`` is called lazily (once) and must return a
    :class:`KernelImpl`; raising :class:`KernelError` (or anything
    else) marks the tier unavailable.  ``priority`` orders ``auto``
    resolution — highest available wins.  Registration is idempotent
    per name (latest loader wins), mirroring ``register_backend``.
    """
    with _LOCK:
        _TIER_FACTORIES[name] = (priority, loader)
        _LOADED.pop(name, None)
        _LOAD_ERRORS.pop(name, None)


def kernel_tier_names() -> Tuple[str, ...]:
    """Registered tier names in descending auto-priority order."""
    with _LOCK:
        return tuple(
            sorted(
                _TIER_FACTORIES,
                key=lambda name: -_TIER_FACTORIES[name][0],
            )
        )


def _load(name: str) -> Optional[KernelImpl]:
    """Load (once) and cache a tier; ``None`` when unavailable."""
    with _LOCK:
        if name in _LOADED:
            return _LOADED[name]
        entry = _TIER_FACTORIES.get(name)
        if entry is None:
            _LOADED[name] = None
            _LOAD_ERRORS[name] = f"unknown kernel tier {name!r}"
            return None
        try:
            impl = entry[1]()
        except Exception as exc:  # any load failure means "unavailable"
            _LOADED[name] = None
            _LOAD_ERRORS[name] = f"{type(exc).__name__}: {exc}"
            return None
        _LOADED[name] = impl
        return impl


def kernel_available(name: str) -> bool:
    """Whether a tier loads (and passes its self-test) here."""
    return _load(name) is not None


def kernel_availability() -> Dict[str, bool]:
    """Availability of every registered tier on this host.

    This is the map remote workers advertise in their handshake and
    benchmark reports stamp, so mixed fleets and cross-environment
    perf trajectories stay diagnosable.
    """
    return {name: kernel_available(name) for name in kernel_tier_names()}


def kernel_load_error(name: str) -> Optional[str]:
    """Why a tier is unavailable (``None`` when it loaded fine)."""
    with _LOCK:
        _load(name)
        return _LOAD_ERRORS.get(name)


def validate_kernel_tier(tier: Optional[str]) -> None:
    """Fail fast on an unknown tier name (availability not required).

    ``None`` and ``auto`` are always valid; an unavailable-but-known
    tier is valid too (it degrades to numpy with a warning at resolve
    time — an engine config written on a numba machine must still load
    on a numpy-only one).
    """
    if tier is None or tier == AUTO_TIER:
        return
    if tier not in _TIER_FACTORIES:
        raise ExperimentError(
            f"unknown kernel tier {tier!r}; expected one of "
            f"{(AUTO_TIER,) + kernel_tier_names()}"
        )


def default_kernel_tier() -> str:
    """The ambient tier selection: ``REPRO_KERNEL_TIER`` or ``auto``."""
    value = os.environ.get(KERNEL_TIER_ENV, "").strip()
    return value if value else AUTO_TIER


def _warn_once(requested: str, resolved: str, reason: str) -> None:
    key = (requested, resolved)
    with _LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(
        f"kernel tier {requested!r} is unavailable ({reason}); "
        f"degrading to {resolved!r} — results are bit-identical, only "
        "throughput changes",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_kernel_tier(tier: Optional[str] = None) -> str:
    """Resolve a tier request to the name of a loadable tier.

    ``None`` defers to :func:`default_kernel_tier` (the
    ``REPRO_KERNEL_TIER`` environment variable, then ``auto``);
    ``auto`` picks the highest-priority available tier.  A request
    that cannot be satisfied degrades to ``numpy`` with a
    once-per-pair :class:`RuntimeWarning`; an unknown name raises.
    """
    requested = tier if tier is not None else default_kernel_tier()
    validate_kernel_tier(requested)
    if requested == AUTO_TIER:
        for name in kernel_tier_names():
            if kernel_available(name):
                if name == NUMPY_TIER and len(_TIER_FACTORIES) > 1:
                    _warn_once(
                        AUTO_TIER, NUMPY_TIER, "no compiled tier loads here"
                    )
                return name
        return NUMPY_TIER  # pragma: no cover - numpy always registers
    if kernel_available(requested):
        return requested
    _warn_once(
        requested,
        NUMPY_TIER,
        kernel_load_error(requested) or "failed to load",
    )
    return NUMPY_TIER


def get_kernel(tier: Optional[str] = None) -> KernelImpl:
    """The loaded :class:`KernelImpl` for a (resolved) tier request."""
    impl = _load(resolve_kernel_tier(tier))
    assert impl is not None  # resolve only returns loadable tiers
    return impl


def _reset_kernel_registry_for_tests(
    forget_loaded: bool = True,
) -> None:
    """Test hook: clear the warn-once set (and the load cache)."""
    with _LOCK:
        _WARNED.clear()
        if forget_loaded:
            _LOADED.clear()
            _LOAD_ERRORS.clear()


# --------------------------------------------------------------------------
# Self-test: a tiny hard-coded circuit + LUT tile every compiled tier
# must reproduce exactly before it is allowed to serve real work.
# --------------------------------------------------------------------------


def _self_test_plans() -> Tuple[SlabPlan, SweepPlan, np.ndarray]:
    """A two-input, two-gate fixture: g0 = a AND b, g1 = NOT g0.

    Result bus = (g0, g1); one prunable candidate ties g0 to 1.
    Returns ``(slab_plan, sweep_plan, ties)`` for populations
    ``[no-tie, tie]``.
    """
    # packed exhaustive patterns for 2 inputs (4 cases, 1 word):
    # a = case bit 0 -> 0b1010, b = case bit 1 -> 0b1100
    patterns = np.array([[0b1010], [0b1100]], dtype=np.uint64)
    slab = SlabPlan(
        n_cases=4,
        n_words=1,
        n_cands=1,
        n_buffers=2,
        op_kind=np.array([2, 0], dtype=np.int8),  # AND, NOT
        out_buf=np.array([0, 1], dtype=np.int32),
        in_src=np.array(
            [[SRC_PATTERN, SRC_PATTERN, SRC_ZERO],
             [SRC_BUFFER, SRC_ZERO, SRC_ZERO]],
            dtype=np.uint8,
        ),
        in_index=np.array([[0, 1, 0], [0, 0, 0]], dtype=np.int32),
        patterns=patterns,
        tie_offsets=np.array([0, 1, 1], dtype=np.int64),
        tie_cand=np.array([0], dtype=np.int32),
        tie_const=np.array([1], dtype=np.uint8),
        res_src=np.array([SRC_BUFFER, SRC_BUFFER], dtype=np.uint8),
        res_index=np.array([0, 1], dtype=np.int32),
    )
    # slots: 0 = a, 1 = b, 2 = g0, 3 = g1
    sweep = SweepPlan(
        n_slots=4,
        n_cands=1,
        max_passes=16,
        gate_out=np.array([2, 3], dtype=np.int32),
        kind0=np.array([2, 0], dtype=np.int8),
        ins0=np.array([[0, 1, 0], [2, 0, 0]], dtype=np.int32),
        val0=np.full(4, -1, dtype=np.int8),
        is_gate0=np.array([0, 0, 1, 1], dtype=np.uint8),
        cand_slots=np.array([2], dtype=np.int32),
        cand_consts=np.array([1], dtype=np.int8),
        out_slots=np.array([2, 3], dtype=np.int32),
        arity=np.array([1, 1, 2, 2, 2, 2, 2, 2, 3], dtype=np.int8),
        ge=np.array(
            [0.5, 1.0, 1.5, 1.5, 1.0, 1.0, 2.5, 2.5, 3.0],
            dtype=np.float64,
        ),
    )
    ties = np.array([[False], [True]], dtype=bool)
    return slab, sweep, ties


def self_test_kernel(impl: KernelImpl) -> None:
    """Assert an implementation's ops on hard-coded fixtures.

    Raises :class:`KernelError` on any divergence; tier loaders call
    this so a miscompiled/misbehaving tier disables itself instead of
    corrupting searches.
    """
    slab, sweep, ties = _self_test_plans()
    if impl.simulate_tables is not None:
        tables = np.asarray(impl.simulate_tables(slab, ties))
        # genome 0: g0 = a&b = 0001, g1 = ~g0 -> bit1 set unless case 3
        # genome 1: g0 tied to 1 -> 1111, g1 = ~1 = 0
        expected = np.array(
            [[2, 2, 2, 1], [1, 1, 1, 1]], dtype=np.uint64
        )
        if tables.shape != (2, 4) or not np.array_equal(
            tables.astype(np.uint64), expected
        ):
            raise KernelError(
                f"{impl.name}: simulate_tables self-test diverged "
                f"(got {tables.tolist()!r}, want {expected.tolist()!r})"
            )
    if impl.sweep_ge is not None:
        areas = np.asarray(impl.sweep_ge(sweep, ties))
        # genome 0: both gates live -> 1.5 + 0.5; genome 1: g0 pruned,
        # NOT folds to constant 0 -> nothing live
        expected_ge = np.array([2.0, 0.0], dtype=np.float64)
        if areas.shape != (2,) or not np.array_equal(areas, expected_ge):
            raise KernelError(
                f"{impl.name}: sweep_ge self-test diverged "
                f"(got {areas.tolist()!r}, want {expected_ge.tolist()!r})"
            )
    if impl.lut_tile is not None:
        rng = np.random.default_rng(0)
        table = rng.integers(-500, 500, size=65536).astype(np.int64)
        rows, k, cols = 5, 3, 4
        w_index = (
            (rng.integers(-128, 128, size=(k, cols)) & 0xFF) << 8
        ).astype(np.int64)
        acts = rng.integers(-128, 128, size=(rows, k)).astype(np.int16)
        for dtype in (np.int32, np.int64):
            tab = table.astype(dtype)
            out = np.empty((rows, cols), dtype=np.int64)
            impl.lut_tile(tab, w_index, acts, out)
            a_bytes = (acts & 0xFF).astype(np.intp)
            expected_out = np.zeros((rows, cols), dtype=np.int64)
            for position in range(k):
                expected_out += tab[a_bytes[:, position, None] + w_index[position]]
            if not np.array_equal(out, expected_out):
                raise KernelError(
                    f"{impl.name}: lut_tile self-test diverged for "
                    f"{np.dtype(dtype).name} tables"
                )


# --------------------------------------------------------------------------
# Built-in tiers.
# --------------------------------------------------------------------------


def _load_numpy_tier() -> KernelImpl:
    return KernelImpl(name=NUMPY_TIER, version=f"numpy {np.__version__}")


def _load_c_tier() -> KernelImpl:
    from repro.engine import kernels_c

    return kernels_c.load()


def _load_numba_tier() -> KernelImpl:
    from repro.engine import kernels_numba

    return kernels_numba.load()


register_kernel_tier(NUMPY_TIER, _load_numpy_tier, priority=0)
register_kernel_tier("numba", _load_numba_tier, priority=50)
register_kernel_tier("c", _load_c_tier, priority=100)


# The warm process pool forks its workers once; a pool forked under a
# different ambient kernel-tier selection would silently keep running
# the old tier (same results, wrong throughput), so the resolved
# default joins the fork-context fingerprint and such pools refork.
def _pool_kernel_context() -> str:
    return default_kernel_tier()


def _register_pool_provider() -> None:
    from repro.engine.backends import register_pool_context_provider

    register_pool_context_provider("kernel_tier", _pool_kernel_context)


_register_pool_provider()
