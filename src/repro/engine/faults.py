"""Deterministic fault injection for chaos tests and the chaos CI job.

Crash-safety claims are only as good as the crashes they were tested
against, so the injectors here are *deterministic*: a fault spec names
an exact protocol event (or checkpoint generation) at which to strike,
and a seeded spec resolves to one concrete event before the run starts.
The same specs drive the unit tests, the kill-at-every-protocol-state
sweep, and the ``chaos`` CI job — a failure reproduces locally by
exporting the same :data:`FAULTS_ENV` string.

Faults are configured through the environment (``REPRO_FAULTS``) so
they can be scoped to exactly one process: a spawned worker daemon, or
a ``build_library`` subprocess that must die mid-search.  The injector
is consulted only from explicit hook points — the worker daemon's
protocol loop (:mod:`repro.engine.worker`) and the checkpoint store's
post-save hook (:mod:`repro.engine.checkpoint`) — so production runs
without the variable never pay for it.

Spec grammar (comma-separated)::

    KIND@POINT:ARG[,KIND@POINT:ARG...]

    kill@shard:N     SIGKILL the worker when it receives shard N
    kill@recv:N      SIGKILL the worker at its Nth protocol message
    kill@gen:N       SIGKILL the process after checkpoint N is written
    drop@shard:N     close the coordinator connection at shard N
    drop@recv:N      close the connection at the Nth protocol message
    slow@task:S      sleep S seconds before executing every task
    hang@task:N      hang forever executing the worker's Nth task
    corrupt@recv:N   reply with a garbage frame at the Nth message
    coordkill@gen:N  SIGKILL the process after checkpoint N, but only
                     if it hosts a live in-process coordinator

``N`` may be a literal integer or ``rand:SEED:HI`` — a seeded uniform
draw from ``[0, HI)`` resolved once at parse time, so "kill at a random
generation" is reproducible from the seed alone.

``hang`` exercises the per-task deadline path: the coordinator must
revoke and requeue the shard instead of waiting forever.  ``corrupt``
exercises the framing layer: the coordinator must treat an unpicklable
payload as a dead worker.  ``coordkill`` scopes a ``kill@gen`` strike
to the coordinator-hosting process, so one ``REPRO_FAULTS`` value can
be inherited by spawned workers without also killing them.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ExperimentError

#: Environment variable carrying the fault spec for one process.
FAULTS_ENV = "REPRO_FAULTS"

_KINDS = ("kill", "drop", "slow", "hang", "corrupt", "coordkill")
_POINTS = ("shard", "recv", "gen", "task")

#: (kind, required point) pairs for the kinds that only make sense at
#: one hook — parse-time validation keeps chaos specs honest.
_KIND_POINTS = {"hang": "task", "corrupt": "recv", "coordkill": "gen"}


class InjectedDrop(Exception):
    """Raised by the injector to make a worker drop its connection.

    The worker daemon treats it like a vanished coordinator: close the
    socket and exit cleanly.  Coordinator-side this is indistinguishable
    from a worker crash — the held shard is requeued.
    """


class InjectedCorrupt(Exception):
    """Raised by the injector to make a worker emit a garbage frame.

    The worker daemon sends a correctly length-prefixed but unpicklable
    payload and drops the connection, so the coordinator's framing
    layer — not the worker — must contain the damage (requeue the held
    shard, keep serving the rest of the fleet).
    """


def _resolve_ordinal(text: str) -> float:
    """Parse a literal number or a seeded ``rand:SEED:HI`` draw."""
    if text.startswith("rand:"):
        parts = text.split(":")
        if len(parts) != 3:
            raise ExperimentError(
                f"seeded fault ordinal must be rand:SEED:HI, got {text!r}"
            )
        try:
            seed, high = int(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ExperimentError(
                f"seeded fault ordinal must be rand:SEED:HI, got {text!r}"
            ) from exc
        if high < 1:
            raise ExperimentError(f"rand upper bound must be >= 1, got {high}")
        return float(random.Random(seed).randrange(high))
    try:
        return float(text)
    except ValueError as exc:
        raise ExperimentError(f"fault ordinal must be numeric, got {text!r}") from exc


@dataclass(frozen=True)
class FaultSpec:
    """One resolved fault: ``kind`` strikes at ``point`` event ``at``.

    ``at`` is an event ordinal for ``kill``/``drop`` faults and a sleep
    duration in seconds for ``slow`` faults.
    """

    kind: str
    point: str
    at: float

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.point not in _POINTS:
            raise ExperimentError(
                f"unknown fault point {self.point!r}; expected one of {_POINTS}"
            )
        if self.kind == "slow" and self.point != "task":
            raise ExperimentError("slow faults only support the 'task' point")
        required = _KIND_POINTS.get(self.kind)
        if required is not None and self.point != required:
            raise ExperimentError(
                f"{self.kind} faults only support the {required!r} point"
            )
        if self.kind != "slow" and self.at != int(self.at):
            raise ExperimentError(
                f"{self.kind} faults need an integer event ordinal, got {self.at}"
            )


def parse_faults(spec: str) -> Tuple[FaultSpec, ...]:
    """Parse a :data:`FAULTS_ENV` spec string into resolved faults."""
    faults = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, sep, rest = chunk.partition("@")
        point, sep2, arg = rest.partition(":")
        if not sep or not sep2:
            raise ExperimentError(
                f"fault spec must be KIND@POINT:ARG, got {chunk!r}"
            )
        faults.append(FaultSpec(kind=kind, point=point, at=_resolve_ordinal(arg)))
    return tuple(faults)


def _coordinator_alive() -> bool:
    """True when this process hosts at least one open coordinator.

    Imported lazily so the injector stays importable from worker
    processes that never load the backends module.
    """
    try:
        from repro.engine.backends import live_coordinator_count
    except ImportError:  # pragma: no cover - circular-import guard
        return False
    return live_coordinator_count() > 0


def _sigkill_self() -> None:  # pragma: no cover - the process dies here
    """A genuine SIGKILL: no atexit, no finally blocks, no flushing."""
    os.kill(os.getpid(), signal.SIGKILL)
    # SIGKILL cannot be handled, but give the kernel a moment before
    # falling through on exotic platforms
    time.sleep(10)
    os._exit(137)


class FaultInjector:
    """Consults resolved fault specs at the engine's hook points.

    Stateless apart from per-point event counters, so one injector
    serves a whole worker lifetime.  An injector built from an empty
    spec is inert and free.
    """

    def __init__(self, faults: Tuple[FaultSpec, ...] = ()):
        self.faults = tuple(faults)
        self._counters: Dict[str, int] = {}

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "FaultInjector":
        env = os.environ if environ is None else environ
        spec = env.get(FAULTS_ENV, "")
        return cls(parse_faults(spec) if spec else ())

    def __bool__(self) -> bool:
        return bool(self.faults)

    def _fire(self, point: str, ordinal: int) -> None:
        for fault in self.faults:
            if fault.point != point or int(fault.at) != ordinal:
                continue
            if fault.kind == "kill":
                _sigkill_self()
            if fault.kind == "coordkill" and _coordinator_alive():
                _sigkill_self()
            if fault.kind == "drop":
                raise InjectedDrop(f"injected drop at {point}:{ordinal}")
            if fault.kind == "corrupt":
                raise InjectedCorrupt(f"injected corruption at {point}:{ordinal}")
            if fault.kind == "hang":  # pragma: no cover - only dies by SIGKILL
                while True:
                    time.sleep(60)

    def on_recv(self) -> None:
        """Hook: the worker received one protocol message."""
        ordinal = self._counters.get("recv", 0)
        self._counters["recv"] = ordinal + 1
        self._fire("recv", ordinal)

    def on_shard(self, shard_id: int) -> None:
        """Hook: the worker was assigned shard ``shard_id``."""
        self._fire("shard", int(shard_id))

    def on_task_execute(self) -> None:
        """Hook: the worker is about to run a task.

        Counts tasks (the ``task`` point for ``hang``/``kill``/``drop``
        ordinals) and applies any ``slow`` delay.
        """
        ordinal = self._counters.get("task", 0)
        self._counters["task"] = ordinal + 1
        self._fire("task", ordinal)
        for fault in self.faults:
            if fault.kind == "slow" and fault.point == "task" and fault.at > 0:
                time.sleep(fault.at)

    def on_checkpoint_saved(self, generation: int) -> None:
        """Hook: a checkpoint for ``generation`` was durably written."""
        self._fire("gen", int(generation))


#: Lazily constructed process-wide injector (one env read per process).
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> FaultInjector:
    """The process-wide injector parsed from :data:`FAULTS_ENV` once."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = FaultInjector.from_env()
    return _ACTIVE


def reset_active_injector() -> None:
    """Drop the cached injector (tests that mutate the environment)."""
    global _ACTIVE
    _ACTIVE = None
