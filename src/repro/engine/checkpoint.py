"""Crash-safe, per-generation checkpointing for the GA/NSGA-II searches.

A multi-minute ``build_library`` or :class:`CarbonAwareDesigner` run
used to hold its entire search state — populations, fronts, RNG
trajectory — in process memory: any SIGKILL lost everything not in the
objective disk cache.  :class:`CheckpointStore` snapshots that state
after every generation so a killed run restarts at the last finished
generation, and *bit-identically* so: the RNG generator state is
captured and restored exactly, which makes a resumed run
indistinguishable (fronts, histories, evaluation counts, RNG draws)
from one that never crashed.  The chaos suite under
``tests/engine/test_chaos.py`` pins that equivalence by SIGKILLing
real subprocesses mid-search.

Durability: every checkpoint is one pickle written through
:func:`repro.engine.diskcache.atomic_write_bytes` (temp file + fsync +
rename + directory fsync), so a crash *during* a checkpoint write
leaves the previous complete generation on disk — there is no state in
which resume sees a torn snapshot.

Safety: each checkpoint embeds a *settings fingerprint* supplied by the
caller (:func:`checkpoint_fingerprint` over everything the search
depends on — config, seed, problem identity, library identity).  A
store refuses to resume a checkpoint whose fingerprint does not match
its own (:class:`~repro.errors.CheckpointError`): resuming a
half-finished search under different settings would splice two
different searches into one silently-wrong result, which is strictly
worse than restarting.  Version or algorithm mismatches refuse the
same way; a *corrupt* checkpoint file (disk damage — a torn write is
impossible by construction) is quarantined with a warning and the
search restarts from scratch, trading time, never correctness.

Interaction with the async engine: a generation's checkpoint is saved
only after every future that generation submitted through
:class:`repro.engine.taskgraph.EngineSession` has resolved — the
searches gather all shard futures before calling
:meth:`CheckpointStore.save` — so overlap between generations (eval of
``g+1`` streaming while ``g``'s accuracy settles) never lets a
snapshot describe work still in flight.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import re
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.engine.diskcache import atomic_write_bytes, quarantine_corrupt_file
from repro.engine.faults import active_injector
from repro.errors import CheckpointError

#: Bump on any change to the checkpoint payload schema; stores refuse
#: to resume checkpoints written under a different version.
CHECKPOINT_VERSION = 1

#: Any RNG whose state the store can capture exactly.
AnyRng = Union[np.random.Generator, random.Random]


def checkpoint_fingerprint(*parts: Any) -> str:
    """Stable digest of everything a checkpointed search depends on.

    Callers pass the full settings identity — algorithm config fields,
    seeds, problem parameters, library identity — as primitive parts;
    any change to any of them yields a different fingerprint and
    therefore a refused resume.
    """
    digest = hashlib.sha256(
        repr((CHECKPOINT_VERSION,) + parts).encode("utf-8")
    )
    return digest.hexdigest()[:32]


def trajectory_parts(config: Any, field_names: Any) -> tuple:
    """``((name, value), ...)`` for a config's trajectory fields.

    The runtime half of the ``FPR001`` fingerprint-completeness
    contract (see :mod:`repro.analysis`): a config dataclass marked
    ``# repro: fingerprinted[DECL]`` declares its
    trajectory-determining fields in a module-level ``DECL`` tuple,
    and its checkpoint fingerprint is built from exactly those fields
    via this helper::

        fingerprint = checkpoint_fingerprint(
            "ga-search", trajectory_parts(cfg, GA_TRAJECTORY_FIELDS)
        )

    Fingerprinting *named* pairs (not bare values) means reordering
    or renaming a declared field also changes the fingerprint, and
    the static rule guarantees the declaration tracks the dataclass —
    so a new knob cannot silently miss the resume-refusal check.

    Raises:
        CheckpointError: a declared name is not a field of ``config``
            (stale declaration — the static checker catches this at
            lint time, this raise catches it at run time).
    """
    parts = []
    for name in field_names:
        if not hasattr(config, name):
            raise CheckpointError(
                f"trajectory declaration names {name!r}, which is not "
                f"a field of {type(config).__name__}; update the "
                "declaration tuple alongside the dataclass"
            )
        parts.append((name, getattr(config, name)))
    return tuple(parts)


def capture_rng_state(rng: AnyRng) -> Dict[str, Any]:
    """Snapshot an RNG's exact state (numpy Generator or random.Random).

    The snapshot restores the generator to the precise point in its
    stream, so post-resume draws are bit-identical to the draws an
    uninterrupted run would have made.
    """
    if isinstance(rng, np.random.Generator):
        return {"kind": "numpy", "state": rng.bit_generator.state}
    if isinstance(rng, random.Random):
        return {"kind": "random", "state": rng.getstate()}
    raise CheckpointError(
        f"cannot capture RNG state of {type(rng).__name__}; expected "
        "numpy.random.Generator or random.Random"
    )


def restore_rng_state(rng: AnyRng, snapshot: Dict[str, Any]) -> None:
    """Restore an RNG to a :func:`capture_rng_state` snapshot in place."""
    kind = snapshot.get("kind") if isinstance(snapshot, dict) else None
    if kind == "numpy" and isinstance(rng, np.random.Generator):
        rng.bit_generator.state = snapshot["state"]
        return
    if kind == "random" and isinstance(rng, random.Random):
        rng.setstate(snapshot["state"])
        return
    raise CheckpointError(
        f"RNG snapshot kind {kind!r} does not match generator "
        f"{type(rng).__name__}"
    )


@dataclass(frozen=True)
class Checkpoint:
    """One durable generation snapshot.

    Attributes:
        fingerprint: settings fingerprint the snapshot was taken under.
        algorithm: owning search kind (``"ga"`` / ``"nsga2"``).
        generation: completed evolution steps at snapshot time.
        rng_state: exact RNG snapshot (:func:`capture_rng_state`).
        payload: algorithm-owned state (population, scores, memo, ...).
    """

    fingerprint: str
    algorithm: str
    generation: int
    rng_state: Dict[str, Any]
    payload: Dict[str, Any]


def _sanitize_name(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "_", str(name)).strip("._")
    return cleaned or "checkpoint"


class CheckpointStore:
    """Versioned, atomically-written checkpoint slot for one search.

    Args:
        directory: checkpoint directory (created on demand).
        name: filesystem-safe job identity; one file per name, each
            :meth:`save` replacing the previous generation atomically.
        fingerprint: settings fingerprint
            (:func:`checkpoint_fingerprint`); :meth:`load` refuses a
            stored snapshot whose fingerprint differs.

    A store is cheap to construct and holds no open handles, so worker
    processes can build their own against a shared directory; distinct
    searches must use distinct names.
    """

    def __init__(self, directory: str, name: str, fingerprint: str):
        self.directory = directory
        self.name = _sanitize_name(name)
        self.fingerprint = fingerprint
        self.path = os.path.join(directory, f"{self.name}.ckpt")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CheckpointStore({self.path!r})"

    def exists(self) -> bool:
        """True when a snapshot file is present (any fingerprint)."""
        return os.path.exists(self.path)

    def clear(self) -> None:
        """Delete the snapshot (idempotent) — an explicit fresh start."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    # -- writing --------------------------------------------------------

    def save(
        self,
        algorithm: str,
        generation: int,
        rng: AnyRng,
        payload: Dict[str, Any],
    ) -> None:
        """Durably snapshot one completed generation (atomic replace).

        The write is all-or-nothing: a crash at any instant leaves
        either the previous snapshot or this one on disk, never a
        truncated hybrid.  The fault-injection hook fires *after* the
        snapshot is durable, which is exactly the contract the chaos
        tests rely on (kill-after-generation-N resumes at N).
        """
        record = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "algorithm": algorithm,
            "generation": int(generation),
            "rng_state": capture_rng_state(rng),
            "payload": payload,
        }
        atomic_write_bytes(
            self.path, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        )
        active_injector().on_checkpoint_saved(generation)

    # -- reading --------------------------------------------------------

    def load(self, algorithm: Optional[str] = None) -> Optional[Checkpoint]:
        """The stored snapshot, or ``None`` when there is nothing to resume.

        Raises:
            CheckpointError: the snapshot exists but must not be
                resumed — written under a different settings
                fingerprint, a different schema version, or a different
                algorithm than the caller's.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        try:
            record = pickle.loads(raw)
            if not isinstance(record, dict):
                raise ValueError(f"expected a dict, got {type(record).__name__}")
        except (
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            AttributeError,
            ImportError,
            MemoryError,
        ) as exc:
            # atomic writes make torn snapshots impossible; anything
            # unreadable is external damage — restart rather than brick
            quarantine_corrupt_file(self.path, repr(exc))
            return None

        version = record.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} was written by schema version "
                f"{version!r}, this build reads {CHECKPOINT_VERSION}; "
                "delete it (or finish the run with the original build) "
                "instead of resuming across incompatible formats"
            )
        if record.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} was written under different "
                "settings (fingerprint "
                f"{record.get('fingerprint')!r} != {self.fingerprint!r}); "
                "resuming it would splice two different searches — rerun "
                "with the original settings, or clear the checkpoint to "
                "start fresh"
            )
        if algorithm is not None and record.get("algorithm") != algorithm:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to algorithm "
                f"{record.get('algorithm')!r}, not {algorithm!r}"
            )
        return Checkpoint(
            fingerprint=record["fingerprint"],
            algorithm=record["algorithm"],
            generation=int(record["generation"]),
            rng_state=record["rng_state"],
            payload=record["payload"],
        )
