"""The ``numba`` kernel tier: nopython transcriptions of the hot loops.

Same scalar algorithms as the C tier in :mod:`repro.engine.kernels_c`
(and therefore the same bit-identity argument versus the numpy
reference), compiled with ``@njit(nopython)`` at load time.  The
population loops of the circuit kernels use ``prange`` — every genome
owns private scratch, so the iterations are embarrassingly parallel.

The module never imports numba at module level: :func:`load` performs
the import, compiles, and runs the shared self-test, so a host without
numba (or with a broken numba) simply reports the tier unavailable and
callers degrade to numpy.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels import (
    SRC_BUFFER,
    SRC_PATTERN,
    SRC_ZERO,
    KernelImpl,
    SlabPlan,
    SweepPlan,
    self_test_kernel,
)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _build(numba):  # noqa: C901 - one long kernel-definition block
    njit = numba.njit
    prange = numba.prange

    @njit(cache=False, nogil=True)
    def _load_operand(src, index, workspace, patterns, zeros_row, ones_row):
        if src == SRC_BUFFER:
            return workspace[index]
        if src == SRC_PATTERN:
            return patterns[index]
        if src == SRC_ZERO:
            return zeros_row
        return ones_row

    @njit(cache=False, nogil=True)
    def _transpose64(block):
        # 64x64 bit-matrix transpose, one unrolled level per constant
        # shift (same scheme as the C tier's transpose64)
        for j, m in (
            (np.uint64(32), np.uint64(0x00000000FFFFFFFF)),
            (np.uint64(16), np.uint64(0x0000FFFF0000FFFF)),
            (np.uint64(8), np.uint64(0x00FF00FF00FF00FF)),
            (np.uint64(4), np.uint64(0x0F0F0F0F0F0F0F0F)),
            (np.uint64(2), np.uint64(0x3333333333333333)),
            (np.uint64(1), np.uint64(0x5555555555555555)),
        ):
            step = np.int64(j)
            k = 0
            while k < 64:
                for i in range(k, k + step):
                    t = (block[i + step] ^ (block[i] >> j)) & m
                    block[i + step] ^= t
                    block[i] ^= t << j
                k += 2 * step

    @njit(cache=False, nogil=True, parallel=True)
    def _simulate_tables(
        n_cases,
        n_words,
        n_buffers,
        op_kind,
        out_buf,
        in_src,
        in_index,
        patterns,
        tie_offsets,
        tie_cand,
        tie_const,
        res_src,
        res_index,
        ties,
        tables,
    ):
        population = ties.shape[0]
        n_steps = op_kind.shape[0]
        n_results = res_src.shape[0]
        zeros_row = np.zeros(n_words, dtype=np.uint64)
        ones_row = np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for p in prange(population):
            workspace = np.empty((n_buffers, n_words), dtype=np.uint64)
            for s in range(n_steps):
                out = workspace[out_buf[s]]
                a = _load_operand(
                    in_src[s, 0], in_index[s, 0],
                    workspace, patterns, zeros_row, ones_row,
                )
                b = _load_operand(
                    in_src[s, 1], in_index[s, 1],
                    workspace, patterns, zeros_row, ones_row,
                )
                c = _load_operand(
                    in_src[s, 2], in_index[s, 2],
                    workspace, patterns, zeros_row, ones_row,
                )
                code = op_kind[s]
                if code == 0:  # NOT
                    for w in range(n_words):
                        out[w] = ~a[w]
                elif code == 1:  # BUF
                    for w in range(n_words):
                        out[w] = a[w]
                elif code == 2:  # AND
                    for w in range(n_words):
                        out[w] = a[w] & b[w]
                elif code == 3:  # OR
                    for w in range(n_words):
                        out[w] = a[w] | b[w]
                elif code == 4:  # NAND
                    for w in range(n_words):
                        out[w] = ~(a[w] & b[w])
                elif code == 5:  # NOR
                    for w in range(n_words):
                        out[w] = ~(a[w] | b[w])
                elif code == 6:  # XOR
                    for w in range(n_words):
                        out[w] = a[w] ^ b[w]
                elif code == 7:  # XNOR
                    for w in range(n_words):
                        out[w] = ~(a[w] ^ b[w])
                else:  # MUX: b if sel else a, ins (a, b, sel)
                    for w in range(n_words):
                        out[w] = (a[w] & ~c[w]) | (b[w] & c[w])
                for t in range(tie_offsets[s], tie_offsets[s + 1]):
                    if ties[p, tie_cand[t]]:
                        fill = _ALL_ONES if tie_const[t] else np.uint64(0)
                        for w in range(n_words):
                            out[w] = fill
            # Result packing via a per-word 64x64 bit-matrix transpose
            # (same scheme as the C tier, replacing the naive
            # n_results * n_cases shift-or chain): bit i of case c must
            # become case c of result wire i.  n_results <= 64 is
            # structural — the packed value itself is a uint64.
            block = np.empty(64, dtype=np.uint64)
            for wd in range(n_words):
                for i in range(n_results):
                    wire = _load_operand(
                        res_src[i], res_index[i],
                        workspace, patterns, zeros_row, ones_row,
                    )
                    block[i] = wire[wd]
                for i in range(n_results, 64):
                    block[i] = np.uint64(0)
                # in-place transpose: recursive block swap, exact bit
                # rearrangement (bit j of block[i] -> bit i of
                # block[j]); levels written out with constant
                # shifts/masks so LLVM vectorizes each pair loop
                _transpose64(block)
                base = wd << 6
                limit = n_cases - base
                if limit > 64:
                    limit = 64
                for case in range(limit):
                    tables[p, base + case] = block[case]

    @njit(cache=False, nogil=True, parallel=True)
    def _sweep_ge(
        n_slots,
        max_passes,
        gate_out,
        kind0,
        ins0,
        val0,
        is_gate0,
        cand_slots,
        cand_consts,
        out_slots,
        arity,
        ge,
        ties,
        areas,
    ):
        population = ties.shape[0]
        n_gates = gate_out.shape[0]
        n_cands = cand_slots.shape[0]
        for p in prange(population):
            val = val0.copy()
            is_gate = is_gate0.copy()
            rep = np.arange(n_slots, dtype=np.int32)
            kind = kind0.copy()
            ins = ins0.copy()
            for c in range(n_cands):
                if ties[p, c]:
                    slot = cand_slots[c]
                    is_gate[slot] = 0
                    val[slot] = cand_consts[c]

            for _pass in range(max_passes):
                changed = False
                for g in range(n_gates):
                    w = gate_out[g]
                    if not is_gate[w]:
                        continue
                    k = kind[g]
                    ar = arity[k]
                    i0 = ins[g, 0]
                    r0 = rep[i0]
                    if r0 != i0:
                        ins[g, 0] = r0
                        changed = True
                    r1 = np.int32(-1)
                    r2 = np.int32(-1)
                    v0 = val[r0]
                    v1 = np.int8(-1)
                    v2 = np.int8(-1)
                    if ar >= 2:
                        i1 = ins[g, 1]
                        r1 = rep[i1]
                        if r1 != i1:
                            ins[g, 1] = r1
                            changed = True
                        v1 = val[r1]
                    if ar >= 3:
                        i2 = ins[g, 2]
                        r2 = rep[i2]
                        if r2 != i2:
                            ins[g, 2] = r2
                            changed = True
                        v2 = val[r2]

                    # one simplify_gate step: fold / alias / rewrite
                    fold_value = np.int8(-1)
                    alias_to = np.int32(-1)
                    not_of = np.int32(-1)
                    if k == 0:  # NOT
                        if v0 >= 0:
                            fold_value = np.int8(1 - v0)
                    elif k == 1:  # BUF
                        if v0 >= 0:
                            fold_value = v0
                        else:
                            alias_to = r0
                    elif k == 8:  # MUX
                        if v0 >= 0 and v1 >= 0 and v2 >= 0:
                            fold_value = v1 if v2 == 1 else v0
                        elif v2 == 0:
                            if v0 >= 0:
                                fold_value = v0
                            else:
                                alias_to = r0
                        elif v2 == 1:
                            if v1 >= 0:
                                fold_value = v1
                            else:
                                alias_to = r1
                        elif r0 == r1:
                            if v0 >= 0:
                                fold_value = v0
                            else:
                                alias_to = r0
                        elif v0 == 0 and v1 == 1:
                            alias_to = r2
                        elif v0 == 1 and v1 == 0:
                            not_of = r2
                        elif v0 == 0:
                            kind[g] = 2  # AND(b, sel)
                            ins[g, 0] = r1
                            ins[g, 1] = r2
                            changed = True
                        elif v1 == 1:
                            kind[g] = 3  # OR(a, sel)
                            ins[g, 0] = r0
                            ins[g, 1] = r2
                            changed = True
                    else:  # two-input commutative kinds
                        if v0 >= 0 and v1 >= 0:
                            if k == 2:
                                out = v0 & v1
                            elif k == 3:
                                out = v0 | v1
                            elif k == 4:
                                out = 1 - (v0 & v1)
                            elif k == 5:
                                out = 1 - (v0 | v1)
                            elif k == 6:
                                out = v0 ^ v1
                            else:
                                out = 1 - (v0 ^ v1)
                            fold_value = np.int8(out)
                        else:
                            x = r0
                            vx = v0
                            y = r1
                            if v1 >= 0 and v0 < 0:
                                x = r1
                                vx = v1
                                y = r0
                            kx = (v0 >= 0) or (v1 >= 0)
                            if k == 2:  # AND
                                if kx and vx == 0:
                                    fold_value = np.int8(0)
                                elif kx and vx == 1:
                                    alias_to = y
                                elif (not kx) and x == y:
                                    alias_to = x
                            elif k == 3:  # OR
                                if kx and vx == 1:
                                    fold_value = np.int8(1)
                                elif kx and vx == 0:
                                    alias_to = y
                                elif (not kx) and x == y:
                                    alias_to = x
                            elif k == 4:  # NAND
                                if kx and vx == 0:
                                    fold_value = np.int8(1)
                                elif kx and vx == 1:
                                    not_of = y
                                elif (not kx) and x == y:
                                    not_of = x
                            elif k == 5:  # NOR
                                if kx and vx == 1:
                                    fold_value = np.int8(0)
                                elif kx and vx == 0:
                                    not_of = y
                                elif (not kx) and x == y:
                                    not_of = x
                            elif k == 6:  # XOR
                                if kx and vx == 0:
                                    alias_to = y
                                elif kx and vx == 1:
                                    not_of = y
                                elif (not kx) and x == y:
                                    fold_value = np.int8(0)
                            else:  # XNOR
                                if kx and vx == 0:
                                    not_of = y
                                elif kx and vx == 1:
                                    alias_to = y
                                elif (not kx) and x == y:
                                    fold_value = np.int8(1)

                    if fold_value >= 0:
                        val[w] = fold_value
                        is_gate[w] = 0
                        changed = True
                    elif alias_to >= 0:
                        rep[w] = alias_to
                        is_gate[w] = 0
                        changed = True
                    elif not_of >= 0:
                        kind[g] = 0
                        ins[g, 0] = not_of
                        changed = True
                if not changed:
                    break

            # alias chains point strictly backwards: one ascending
            # rewrite fully compresses them
            for s in range(n_slots):
                rep[s] = rep[rep[s]]

            live = np.zeros(n_slots, dtype=np.uint8)
            for o in range(out_slots.shape[0]):
                live[rep[out_slots[o]]] = 1
            for g in range(n_gates - 1, -1, -1):
                w = gate_out[g]
                if not live[w] or not is_gate[w]:
                    continue
                ar = arity[kind[g]]
                for j in range(ar):
                    live[ins[g, j]] = 1

            area = 0.0
            for g in range(n_gates):
                w = gate_out[g]
                if live[w] and is_gate[w]:
                    area += ge[kind[g]]
            areas[p] = area

    @njit(cache=False, nogil=True)
    def _lut_tile(table, w_index, acts, out):
        rows, k = acts.shape
        cols = w_index.shape[1]
        for r in range(rows):
            for c in range(cols):
                out[r, c] = 0
            for kk in range(k):
                base = np.int64(acts[r, kk] & 0xFF)
                for c in range(cols):
                    out[r, c] += np.int64(table[base + w_index[kk, c]])

    return _simulate_tables, _sweep_ge, _lut_tile


def load() -> KernelImpl:
    """Import numba, compile the kernels, and self-test the tier."""
    import numba  # deliberately lazy: absence == tier unavailable

    simulate_jit, sweep_jit, lut_jit = _build(numba)

    def simulate_tables(plan: SlabPlan, ties: np.ndarray) -> np.ndarray:
        population = ties.shape[0]
        ties_u8 = np.ascontiguousarray(ties, dtype=np.uint8)
        tables = np.empty((population, plan.n_cases), dtype=np.uint64)
        simulate_jit(
            plan.n_cases,
            plan.n_words,
            max(1, plan.n_buffers),
            plan.op_kind,
            plan.out_buf,
            plan.in_src,
            plan.in_index,
            plan.patterns,
            plan.tie_offsets,
            plan.tie_cand,
            plan.tie_const,
            plan.res_src,
            plan.res_index,
            ties_u8,
            tables,
        )
        return tables

    def sweep_ge(plan: SweepPlan, ties: np.ndarray) -> np.ndarray:
        ties_u8 = np.ascontiguousarray(ties, dtype=np.uint8)
        areas = np.empty(ties.shape[0], dtype=np.float64)
        sweep_jit(
            plan.n_slots,
            plan.max_passes,
            plan.gate_out,
            plan.kind0,
            plan.ins0,
            plan.val0,
            plan.is_gate0,
            plan.cand_slots,
            plan.cand_consts,
            plan.out_slots,
            plan.arity,
            plan.ge,
            ties_u8,
            areas,
        )
        return areas

    def lut_tile(
        table: np.ndarray,
        w_index: np.ndarray,
        activations: np.ndarray,
        out: np.ndarray,
    ) -> None:
        lut_jit(table, w_index, activations, out)

    impl = KernelImpl(
        name="numba",
        version=f"numba {numba.__version__}",
        simulate_tables=simulate_tables,
        sweep_ge=sweep_ge,
        lut_tile=lut_tile,
    )
    self_test_kernel(impl)
    return impl
