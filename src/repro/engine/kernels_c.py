"""The ``c`` kernel tier: a tiny C library compiled at load time.

The three hot loops (population circuit simulation + table packing,
the per-genome constant-propagation/liveness area sweep, and the LUT
gather+accumulate tile) are scalar transcriptions of the in-tree numpy
reference — same operation order, same rule chains, same 16-pass cap —
so their outputs are bit-identical by construction and pinned by the
self-test in :mod:`repro.engine.kernels` plus the property suite in
``tests/engine/test_kernels.py``.

The source below is compiled once per source hash with whatever of
``cc``/``gcc``/``clang`` exists on the host (``-O3 -march=native``,
dropped automatically where unsupported; ``-shared -fPIC``)
into a cached shared object (``REPRO_KERNEL_CACHE`` or a per-user
directory under the system temp dir) and bound through ctypes.  ctypes
releases the GIL around every call, so the tile kernel composes with
the existing thread tiling in :mod:`repro.nn.inference`.  No compiler,
a failed compile, or a failed self-test all surface as "tier
unavailable" — callers degrade to numpy.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.engine.kernels import (
    KernelError,
    KernelImpl,
    SlabPlan,
    SweepPlan,
    self_test_kernel,
)

#: Cache-directory override for the compiled shared object.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE"

_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Operand/result source codes — mirror repro.engine.kernels.SRC_*. */
#define SRC_BUFFER  0
#define SRC_PATTERN 1
#define SRC_ZERO    2
#define SRC_ONES    3

#define K_NOT  0
#define K_BUF  1
#define K_AND  2
#define K_OR   3
#define K_NAND 4
#define K_NOR  5
#define K_XOR  6
#define K_XNOR 7
#define K_MUX  8

#define ALL_ONES 0xFFFFFFFFFFFFFFFFULL
#define MAX_RESULTS 64

/* In-place 64x64 bit-matrix transpose (recursive block swap): bit j of
 * a[i] moves to bit i of a[j].  Exact by construction — pure bit
 * rearrangement, no arithmetic. */
static void transpose64(uint64_t a[64])
{
    /* constant shift/mask per level so the compiler vectorizes each
     * level's pair loop (a variable-j formulation runs ~2x slower) */
#define T64_LEVEL(J, M) \
    for (int k = 0; k < 64; k += 2 * (J)) \
        for (int i = k; i < k + (J); i++) { \
            uint64_t t = (a[i + (J)] ^ (a[i] >> (J))) & (M); \
            a[i + (J)] ^= t; \
            a[i] ^= t << (J); \
        }
    T64_LEVEL(32, 0x00000000FFFFFFFFULL)
    T64_LEVEL(16, 0x0000FFFF0000FFFFULL)
    T64_LEVEL(8,  0x00FF00FF00FF00FFULL)
    T64_LEVEL(4,  0x0F0F0F0F0F0F0F0FULL)
    T64_LEVEL(2,  0x3333333333333333ULL)
    T64_LEVEL(1,  0x5555555555555555ULL)
#undef T64_LEVEL
}

/* ---------------------------------------------------------------- */
/* Population circuit simulation + result-table packing.             */
/* One genome at a time through a register-allocated uint64          */
/* workspace; ties overwrite the producing step's row exactly where  */
/* the numpy path overwrites masked population rows.                 */
/* ---------------------------------------------------------------- */

/* block_base is the word offset of the current block inside the full
 * pattern rows; buffer rows are block-local (stride ws_stride). */
static const uint64_t *resolve_src(
    int src, int32_t index,
    const uint64_t *workspace, int64_t ws_stride,
    const uint64_t *patterns, int64_t n_words, int64_t block_base,
    const uint64_t *zeros_row, const uint64_t *ones_row)
{
    switch (src) {
    case SRC_BUFFER:  return workspace + (int64_t)index * ws_stride;
    case SRC_PATTERN: return patterns + (int64_t)index * n_words + block_base;
    case SRC_ZERO:    return zeros_row;
    default:          return ones_row;
    }
}

/* The word axis is processed in blocks of block_words so the whole
 * register-allocated workspace (n_buffers * ws_stride words; the
 * caller sizes block_words to keep it cache-resident, with ws_stride
 * padded off the power-of-two stride) stays hot across all steps —
 * every gate op is elementwise across words, so blocking the word
 * loop cannot change a single bit. */
void repro_simulate_tables(
    int64_t population, int64_t n_cases, int64_t n_words,
    int64_t block_words, int64_t ws_stride,
    int64_t n_steps, int64_t n_cands, int64_t n_results,
    const int8_t *op_kind, const int32_t *out_buf,
    const uint8_t *in_src, const int32_t *in_index,
    const uint64_t *patterns,
    const int64_t *tie_offsets, const int32_t *tie_cand,
    const uint8_t *tie_const,
    const uint8_t *res_src, const int32_t *res_index,
    const uint8_t *ties,
    uint64_t *workspace,
    const uint64_t *zeros_row, const uint64_t *ones_row,
    uint64_t *tables)
{
    for (int64_t p = 0; p < population; p++) {
        const uint8_t *genome = ties + p * n_cands;
        uint64_t *row = tables + p * n_cases;
        for (int64_t base_w = 0; base_w < n_words; base_w += block_words) {
            int64_t W = n_words - base_w;
            if (W > block_words) W = block_words;
            for (int64_t s = 0; s < n_steps; s++) {
                uint64_t *out =
                    workspace + (int64_t)out_buf[s] * ws_stride;
                const uint64_t *a = resolve_src(
                    in_src[s * 3 + 0], in_index[s * 3 + 0],
                    workspace, ws_stride, patterns, n_words, base_w,
                    zeros_row, ones_row);
                const uint64_t *b = resolve_src(
                    in_src[s * 3 + 1], in_index[s * 3 + 1],
                    workspace, ws_stride, patterns, n_words, base_w,
                    zeros_row, ones_row);
                const uint64_t *c = resolve_src(
                    in_src[s * 3 + 2], in_index[s * 3 + 2],
                    workspace, ws_stride, patterns, n_words, base_w,
                    zeros_row, ones_row);
                switch (op_kind[s]) {
                case K_NOT:
                    for (int64_t w = 0; w < W; w++) out[w] = ~a[w];
                    break;
                case K_BUF:
                    for (int64_t w = 0; w < W; w++) out[w] = a[w];
                    break;
                case K_AND:
                    for (int64_t w = 0; w < W; w++) out[w] = a[w] & b[w];
                    break;
                case K_OR:
                    for (int64_t w = 0; w < W; w++) out[w] = a[w] | b[w];
                    break;
                case K_NAND:
                    for (int64_t w = 0; w < W; w++) out[w] = ~(a[w] & b[w]);
                    break;
                case K_NOR:
                    for (int64_t w = 0; w < W; w++) out[w] = ~(a[w] | b[w]);
                    break;
                case K_XOR:
                    for (int64_t w = 0; w < W; w++) out[w] = a[w] ^ b[w];
                    break;
                case K_XNOR:
                    for (int64_t w = 0; w < W; w++) out[w] = ~(a[w] ^ b[w]);
                    break;
                default: /* K_MUX: b if sel else a, ins (a, b, sel) */
                    for (int64_t w = 0; w < W; w++)
                        out[w] = (a[w] & ~c[w]) | (b[w] & c[w]);
                    break;
                }
                for (int64_t t = tie_offsets[s]; t < tie_offsets[s + 1]; t++) {
                    if (!genome[tie_cand[t]]) continue;
                    uint64_t fill = tie_const[t] ? ALL_ONES : 0;
                    for (int64_t w = 0; w < W; w++) out[w] = fill;
                }
            }
            /* Result packing: the tables row needs bit i of case c to
             * be case c of result wire i — a bit-matrix transpose.
             * Doing it per 64-case word via transpose64 replaces the
             * naive n_results * n_cases shift-or chain (the former hot
             * spot at paper scale) with ~6*64 word ops per word.
             * n_results <= 64 is structural: the packed table value
             * itself is a uint64. */
            const uint64_t *wires[MAX_RESULTS];
            for (int64_t i = 0; i < n_results; i++)
                wires[i] = resolve_src(
                    res_src[i], res_index[i],
                    workspace, ws_stride, patterns, n_words, base_w,
                    zeros_row, ones_row);
            for (int64_t wd = 0; wd < W; wd++) {
                uint64_t block[64];
                for (int64_t i = 0; i < n_results; i++)
                    block[i] = wires[i][wd];
                for (int64_t i = n_results; i < 64; i++) block[i] = 0;
                transpose64(block);
                int64_t base = (base_w + wd) << 6;
                int64_t limit = n_cases - base;
                if (limit > 64) limit = 64;
                for (int64_t j = 0; j < limit; j++) row[base + j] = block[j];
            }
        }
    }
}

/* ---------------------------------------------------------------- */
/* Per-genome constant propagation + liveness area sweep.            */
/* Scalar simplify_gate over every gate every pass (processing an    */
/* unchanged gate is the identity, so this reaches the exact same    */
/* pass-k states as the reference's and the numpy tier's sweeps),    */
/* same 16-pass cap, then alias compression, backward liveness and   */
/* an exact float64 GE sum.                                          */
/* ---------------------------------------------------------------- */

void repro_sweep_ge(
    int64_t population, int64_t n_slots, int64_t n_gates,
    int64_t n_cands, int64_t max_passes, int64_t n_outs,
    const int32_t *gate_out, const int8_t *kind0, const int32_t *ins0,
    const int8_t *val0, const uint8_t *is_gate0,
    const int32_t *cand_slots, const int8_t *cand_consts,
    const int32_t *out_slots,
    const int8_t *arity, const double *ge,
    const uint8_t *ties,
    int8_t *val, uint8_t *is_gate, int32_t *rep,
    int8_t *kind, int32_t *ins, uint8_t *live,
    double *areas)
{
    for (int64_t p = 0; p < population; p++) {
        memcpy(val, val0, (size_t)n_slots * sizeof(int8_t));
        memcpy(is_gate, is_gate0, (size_t)n_slots * sizeof(uint8_t));
        for (int64_t s = 0; s < n_slots; s++) rep[s] = (int32_t)s;
        memcpy(kind, kind0, (size_t)n_gates * sizeof(int8_t));
        memcpy(ins, ins0, (size_t)n_gates * 3 * sizeof(int32_t));

        const uint8_t *genome = ties + p * n_cands;
        for (int64_t c = 0; c < n_cands; c++) {
            if (!genome[c]) continue;
            int32_t slot = cand_slots[c];
            is_gate[slot] = 0;
            val[slot] = cand_consts[c];
        }

        for (int64_t pass = 0; pass < max_passes; pass++) {
            int changed = 0;
            for (int64_t g = 0; g < n_gates; g++) {
                int32_t w = gate_out[g];
                if (!is_gate[w]) continue;
                int k = kind[g];
                int ar = arity[k];
                int32_t i0 = ins[g * 3 + 0];
                int32_t r0 = rep[i0];
                if (r0 != i0) { ins[g * 3 + 0] = r0; changed = 1; }
                int32_t r1 = -1, r2 = -1;
                int v1 = -1, v2 = -1;
                int v0 = val[r0];
                if (ar >= 2) {
                    int32_t i1 = ins[g * 3 + 1];
                    r1 = rep[i1];
                    if (r1 != i1) { ins[g * 3 + 1] = r1; changed = 1; }
                    v1 = val[r1];
                }
                if (ar >= 3) {
                    int32_t i2 = ins[g * 3 + 2];
                    r2 = rep[i2];
                    if (r2 != i2) { ins[g * 3 + 2] = r2; changed = 1; }
                    v2 = val[r2];
                }

                /* one simplify_gate step; at most one rule fires */
#define FOLD(value) \
    { val[w] = (int8_t)(value); is_gate[w] = 0; changed = 1; continue; }
#define ALIAS(target) \
    { rep[w] = (target); is_gate[w] = 0; changed = 1; continue; }
#define REWRITE1(target) \
    { kind[g] = K_NOT; ins[g * 3 + 0] = (target); changed = 1; continue; }
#define REWRITE2(code, ra, rb) \
    { kind[g] = (code); ins[g * 3 + 0] = (ra); ins[g * 3 + 1] = (rb); \
      changed = 1; continue; }

                if (k == K_NOT) {
                    if (v0 >= 0) FOLD(1 - v0);
                    continue;
                }
                if (k == K_BUF) {
                    if (v0 >= 0) FOLD(v0);
                    ALIAS(r0);
                }
                if (k == K_MUX) {
                    if (v0 >= 0 && v1 >= 0 && v2 >= 0)
                        FOLD(v2 == 1 ? v1 : v0);
                    if (v2 == 0) {
                        if (v0 >= 0) FOLD(v0);
                        ALIAS(r0);
                    }
                    if (v2 == 1) {
                        if (v1 >= 0) FOLD(v1);
                        ALIAS(r1);
                    }
                    if (r0 == r1) {
                        if (v0 >= 0) FOLD(v0);
                        ALIAS(r0);
                    }
                    if (v0 == 0 && v1 == 1) ALIAS(r2);
                    if (v0 == 1 && v1 == 0) REWRITE1(r2);
                    if (v0 == 0) REWRITE2(K_AND, r1, r2);
                    if (v1 == 1) REWRITE2(K_OR, r0, r2);
                    continue;
                }

                /* two-input commutative kinds */
                if (v0 >= 0 && v1 >= 0) {
                    int out;
                    switch (k) {
                    case K_AND:  out = v0 & v1; break;
                    case K_OR:   out = v0 | v1; break;
                    case K_NAND: out = 1 - (v0 & v1); break;
                    case K_NOR:  out = 1 - (v0 | v1); break;
                    case K_XOR:  out = v0 ^ v1; break;
                    default:     out = 1 - (v0 ^ v1); break; /* XNOR */
                    }
                    FOLD(out);
                }
                int32_t x = r0, y = r1;
                int vx = v0;
                if (v1 >= 0 && v0 < 0) { x = r1; vx = v1; y = r0; }
                int kx = (v0 >= 0) || (v1 >= 0);

                switch (k) {
                case K_AND:
                    if (kx && vx == 0) FOLD(0);
                    if (kx && vx == 1) ALIAS(y);
                    if (!kx && x == y) ALIAS(x);
                    break;
                case K_OR:
                    if (kx && vx == 1) FOLD(1);
                    if (kx && vx == 0) ALIAS(y);
                    if (!kx && x == y) ALIAS(x);
                    break;
                case K_NAND:
                    if (kx && vx == 0) FOLD(1);
                    if (kx && vx == 1) REWRITE1(y);
                    if (!kx && x == y) REWRITE1(x);
                    break;
                case K_NOR:
                    if (kx && vx == 1) FOLD(0);
                    if (kx && vx == 0) REWRITE1(y);
                    if (!kx && x == y) REWRITE1(x);
                    break;
                case K_XOR:
                    if (kx && vx == 0) ALIAS(y);
                    if (kx && vx == 1) REWRITE1(y);
                    if (!kx && x == y) FOLD(0);
                    break;
                default: /* K_XNOR */
                    if (kx && vx == 0) REWRITE1(y);
                    if (kx && vx == 1) ALIAS(y);
                    if (!kx && x == y) FOLD(1);
                    break;
                }
#undef FOLD
#undef ALIAS
#undef REWRITE1
#undef REWRITE2
            }
            if (!changed) break;
        }

        /* alias chains point strictly backwards, so one ascending
         * rewrite pass fully compresses them */
        for (int64_t s = 0; s < n_slots; s++) rep[s] = rep[rep[s]];

        memset(live, 0, (size_t)n_slots);
        for (int64_t o = 0; o < n_outs; o++) live[rep[out_slots[o]]] = 1;
        for (int64_t g = n_gates - 1; g >= 0; g--) {
            int32_t w = gate_out[g];
            if (!live[w] || !is_gate[w]) continue;
            int ar = arity[kind[g]];
            for (int j = 0; j < ar; j++) live[ins[g * 3 + j]] = 1;
        }

        double area = 0.0;
        for (int64_t g = 0; g < n_gates; g++) {
            int32_t w = gate_out[g];
            if (live[w] && is_gate[w]) area += ge[kind[g]];
        }
        areas[p] = area;
    }
}

/* ---------------------------------------------------------------- */
/* LUT gather+accumulate tile: out[r][c] = sum_k                     */
/*   table[(acts[r][k] & 0xFF) + w_index[k][c]]                      */
/* Integer adds are exact in any order, so this matches the numpy    */
/* gather path bit for bit.                                          */
/* ---------------------------------------------------------------- */

void repro_lut_tile_i32(
    const int32_t *table, const int64_t *w_index,
    const int16_t *acts, int64_t *out,
    int64_t rows, int64_t k, int64_t cols)
{
    for (int64_t r = 0; r < rows; r++) {
        int64_t *orow = out + r * cols;
        for (int64_t c = 0; c < cols; c++) orow[c] = 0;
        for (int64_t kk = 0; kk < k; kk++) {
            const int32_t *base = table + (acts[r * k + kk] & 0xFF);
            const int64_t *wrow = w_index + kk * cols;
            for (int64_t c = 0; c < cols; c++)
                orow[c] += (int64_t)base[wrow[c]];
        }
    }
}

void repro_lut_tile_i64(
    const int64_t *table, const int64_t *w_index,
    const int16_t *acts, int64_t *out,
    int64_t rows, int64_t k, int64_t cols)
{
    for (int64_t r = 0; r < rows; r++) {
        int64_t *orow = out + r * cols;
        for (int64_t c = 0; c < cols; c++) orow[c] = 0;
        for (int64_t kk = 0; kk < k; kk++) {
            const int64_t *base = table + (acts[r * k + kk] & 0xFF);
            const int64_t *wrow = w_index + kk * cols;
            for (int64_t c = 0; c < cols; c++)
                orow[c] += base[wrow[c]];
        }
    }
}
"""


def _cache_dir() -> str:
    override = os.environ.get(KERNEL_CACHE_ENV, "").strip()
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")


def _find_compiler() -> str:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    raise KernelError("no C compiler (cc/gcc/clang) on PATH")


#: ``-march=native`` is safe for bit-identity here: every kernel is
#: integer except the area sum, whose float64 adds stay sequential
#: (reassociation needs ``-ffast-math``, which is never passed).
_CFLAGS = ["-O3", "-march=native", "-shared", "-fPIC", "-std=c99"]


def _compile() -> tuple[str, str]:
    """Compile (or reuse) the shared object; returns (path, compiler)."""
    compiler = _find_compiler()
    digest = hashlib.sha256(
        " ".join(_CFLAGS).encode() + b"\0" + _C_SOURCE.encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(so_path):
        return so_path, compiler
    os.makedirs(cache, exist_ok=True)
    src_path = os.path.join(cache, f"repro_kernels_{digest}.c")
    with open(src_path, "w") as handle:
        handle.write(_C_SOURCE)
    tmp_path = f"{so_path}.tmp.{os.getpid()}"
    # some toolchains (older aarch64 gcc) reject -march=native; the
    # flag is a speed hint, so retry without it before giving up
    flag_sets = [_CFLAGS, [f for f in _CFLAGS if f != "-march=native"]]
    result = None
    for flags in flag_sets:
        result = subprocess.run(
            [compiler, *flags, src_path, "-o", tmp_path],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if result.returncode == 0:
            break
    if result is None or result.returncode != 0:
        raise KernelError(
            f"C kernel compile failed with {compiler}: "
            f"{result.stderr.strip()[:500]}"
        )
    os.replace(tmp_path, so_path)  # atomic vs concurrent compilers
    return so_path, compiler


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class _CKernels:
    """ctypes bindings over the compiled shared object."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        for name in (
            "repro_simulate_tables",
            "repro_sweep_ge",
            "repro_lut_tile_i32",
            "repro_lut_tile_i64",
        ):
            fn = getattr(lib, name)
            fn.restype = None

    # -- circuit slabs -------------------------------------------------

    def simulate_tables(self, plan: SlabPlan, ties: np.ndarray) -> np.ndarray:
        population = ties.shape[0]
        ties_u8 = np.ascontiguousarray(ties, dtype=np.uint8)
        n_buffers = max(1, plan.n_buffers)
        # size the word blocks so the whole workspace stays ~L2-resident
        # (the gate ops then hit cache instead of streaming every slab
        # through memory once per step); pad the stride one cache line
        # off the block size so buffer rows don't alias in the L1 sets
        block_words = min(
            plan.n_words, max(64, (128 * 1024 // 8) // n_buffers)
        )
        ws_stride = block_words + 8
        workspace = np.empty(n_buffers * ws_stride, dtype=np.uint64)
        zeros_row = np.zeros(block_words, dtype=np.uint64)
        ones_row = np.full(
            block_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
        )
        tables = np.empty((population, plan.n_cases), dtype=np.uint64)
        self._lib.repro_simulate_tables(
            ctypes.c_int64(population),
            ctypes.c_int64(plan.n_cases),
            ctypes.c_int64(plan.n_words),
            ctypes.c_int64(block_words),
            ctypes.c_int64(ws_stride),
            ctypes.c_int64(len(plan.op_kind)),
            ctypes.c_int64(plan.n_cands),
            ctypes.c_int64(len(plan.res_src)),
            _ptr(plan.op_kind),
            _ptr(plan.out_buf),
            _ptr(plan.in_src),
            _ptr(plan.in_index),
            _ptr(plan.patterns),
            _ptr(plan.tie_offsets),
            _ptr(plan.tie_cand),
            _ptr(plan.tie_const),
            _ptr(plan.res_src),
            _ptr(plan.res_index),
            _ptr(ties_u8),
            _ptr(workspace),
            _ptr(zeros_row),
            _ptr(ones_row),
            _ptr(tables),
        )
        return tables

    # -- area sweep ----------------------------------------------------

    def sweep_ge(self, plan: SweepPlan, ties: np.ndarray) -> np.ndarray:
        population = ties.shape[0]
        ties_u8 = np.ascontiguousarray(ties, dtype=np.uint8)
        n_gates = len(plan.gate_out)
        val = np.empty(plan.n_slots, dtype=np.int8)
        is_gate = np.empty(plan.n_slots, dtype=np.uint8)
        rep = np.empty(plan.n_slots, dtype=np.int32)
        kind = np.empty(n_gates, dtype=np.int8)
        ins = np.empty((n_gates, 3), dtype=np.int32)
        live = np.empty(plan.n_slots, dtype=np.uint8)
        areas = np.empty(population, dtype=np.float64)
        self._lib.repro_sweep_ge(
            ctypes.c_int64(population),
            ctypes.c_int64(plan.n_slots),
            ctypes.c_int64(n_gates),
            ctypes.c_int64(plan.n_cands),
            ctypes.c_int64(plan.max_passes),
            ctypes.c_int64(len(plan.out_slots)),
            _ptr(plan.gate_out),
            _ptr(plan.kind0),
            _ptr(plan.ins0),
            _ptr(plan.val0),
            _ptr(plan.is_gate0),
            _ptr(plan.cand_slots),
            _ptr(plan.cand_consts),
            _ptr(plan.out_slots),
            _ptr(plan.arity),
            _ptr(plan.ge),
            _ptr(ties_u8),
            _ptr(val),
            _ptr(is_gate),
            _ptr(rep),
            _ptr(kind),
            _ptr(ins),
            _ptr(live),
            _ptr(areas),
        )
        return areas

    # -- LUT tile ------------------------------------------------------

    def lut_tile(
        self,
        table: np.ndarray,
        w_index: np.ndarray,
        activations: np.ndarray,
        out: np.ndarray,
    ) -> None:
        rows, k = activations.shape
        cols = w_index.shape[1]
        if table.dtype == np.int32:
            fn = self._lib.repro_lut_tile_i32
        elif table.dtype == np.int64:
            fn = self._lib.repro_lut_tile_i64
        else:  # pragma: no cover - stacks only carry int32/int64 tables
            raise KernelError(f"unsupported LUT table dtype {table.dtype}")
        fn(
            _ptr(table),
            _ptr(w_index),
            _ptr(activations),
            _ptr(out),
            ctypes.c_int64(rows),
            ctypes.c_int64(k),
            ctypes.c_int64(cols),
        )


def load() -> KernelImpl:
    """Compile, bind, and self-test the C tier (raises when impossible)."""
    so_path, compiler = _compile()
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        raise KernelError(f"cannot load {so_path}: {exc}") from exc
    kernels = _CKernels(lib)
    impl = KernelImpl(
        name="c",
        version=f"c ({os.path.basename(compiler)})",
        simulate_tables=kernels.simulate_tables,
        sweep_ge=kernels.sweep_ge,
        lut_tile=kernels.lut_tile,
    )
    self_test_kernel(impl)
    return impl
