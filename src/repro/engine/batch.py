"""Whole-population dataflow evaluation in numpy.

:func:`repro.dataflow.performance.evaluate_network` walks one geometry
through every layer and loop order in pure Python; a GA generation asks
that question for dozens of geometries.  :class:`BatchNetworkEvaluator`
answers for all of them at once: per-layer constants are hoisted into
arrays and the mapping + latency formulas run elementwise over the
geometry axis.

Bit-exactness contract: every arithmetic expression mirrors the scalar
implementation operation for operation (same association order, same
``ceil``-on-float-division idiom, same int-then-float promotions), so
IEEE-754 gives the identical ``total_cycles`` — and therefore identical
FPS, CDP, and GA trajectories — as the serial path.  The property tests
in ``tests/engine/test_batch.py`` assert exact equality against
``evaluate_network`` over random geometries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dataflow.layers import ConvLayer, FCLayer, PoolLayer
from repro.dataflow.mapping import (
    PASS_WEIGHT_BUDGET_FRACTION,
    PIPELINE_DEPTH,
    PSUM_BYTES,
    RESIDENT_BUDGET_FRACTION,
    _input_halo_reuse,
)
from repro.dataflow.network import Network
from repro.dataflow.performance import (
    DRAM_BANDWIDTH_GB_S,
    FULL_OVERLAP_LOCAL_BYTES,
)

#: Geometry identity as produced by ``AcceleratorConfig.geometry_key()``:
#: (pe_rows, pe_cols, local_buffer_bytes, global_buffer_bytes, node_nm,
#: clock_hz).  Timing never depends on the multiplier, so this is the
#: natural batch axis — a population of genomes collapses to far fewer
#: distinct geometries.
GeometryKey = Tuple[int, int, int, int, int, float]


class BatchNetworkEvaluator:
    """Vectorized network latency for many geometries at once.

    Args:
        network: the workload; per-layer shape constants are hoisted
            into arrays at construction.
        dram_gb_s: external bandwidth (same default binding as the
            scalar path).

    Results are memoised per geometry, so repeated GA generations only
    pay for genuinely new design points.
    """

    def __init__(
        self, network: Network, dram_gb_s: float = DRAM_BANDWIDTH_GB_S
    ):
        self.network = network
        self.dram_gb_s = dram_gb_s
        self._cache: Dict[GeometryKey, Tuple[float, bool]] = {}
        self._layers: List[Tuple[str, object]] = []
        for layer in network.layers:
            if isinstance(layer, PoolLayer):
                traffic = float(layer.input_bytes + layer.output_bytes)
                self._layers.append(("pool", traffic))
            else:
                conv = layer.as_conv() if isinstance(layer, FCLayer) else layer
                assert isinstance(conv, ConvLayer)
                self._layers.append(
                    (
                        "conv",
                        (
                            conv.out_channels,
                            conv.out_pixels,
                            conv.macs_per_output,
                            conv.weight_bytes,
                            conv.input_bytes,
                            conv.output_bytes,
                            _input_halo_reuse(conv),
                        ),
                    )
                )

    def total_cycles(
        self, geometries: Sequence[GeometryKey]
    ) -> List[Tuple[float, bool]]:
        """``(total_cycles, mappable)`` per geometry, cache-backed.

        ``mappable`` is False exactly when the scalar path would raise
        :class:`~repro.errors.MappingError` (some layer has no legal
        loop order); ``total_cycles`` is meaningless there.
        """
        misses = []
        for key in geometries:
            if key not in self._cache:
                misses.append(key)
        if misses:
            distinct = list(dict.fromkeys(misses))
            totals, mappable = self._evaluate_batch(distinct)
            for index, key in enumerate(distinct):
                self._cache[key] = (float(totals[index]), bool(mappable[index]))
        return [self._cache[key] for key in geometries]

    # ------------------------------------------------------------------

    def _evaluate_batch(
        self, geometries: Sequence[GeometryKey]
    ) -> Tuple[np.ndarray, np.ndarray]:
        rows = np.array([g[0] for g in geometries], dtype=np.int64)
        cols = np.array([g[1] for g in geometries], dtype=np.int64)
        local_bytes = np.array([g[2] for g in geometries], dtype=np.int64)
        global_bytes = np.array([g[3] for g in geometries], dtype=np.int64)
        clock_hz = np.array([g[5] for g in geometries], dtype=np.float64)

        fill = rows + cols + PIPELINE_DEPTH
        port_bytes_per_cycle = (rows + cols).astype(np.float64)
        overlap = np.minimum(1.0, local_bytes / FULL_OVERLAP_LOCAL_BYTES)
        dram_bytes_per_cycle = self.dram_gb_s * 1e9 / clock_hz
        weight_budget = PASS_WEIGHT_BUDGET_FRACTION * global_bytes
        resident_budget = RESIDENT_BUDGET_FRACTION * global_bytes

        total = np.zeros(len(geometries), dtype=np.float64)
        mappable = np.ones(len(geometries), dtype=bool)
        for kind, data in self._layers:
            if kind == "pool":
                total = total + data / dram_bytes_per_cycle
                continue
            k, p, crs, weight_bytes, input_bytes, output_bytes, halo = data

            ks = np.minimum(k, cols)
            ps = np.minimum(p, rows)
            nk = np.ceil(k / ks).astype(np.int64)
            np_ = np.ceil(p / ps).astype(np.int64)
            rp = np.where(
                np_ == 1, np.minimum(np.maximum(rows // ps, 1), crs), 1
            )

            pass_weight_bytes = ks * crs
            nc = np.maximum(
                1, np.ceil(pass_weight_bytes / weight_budget).astype(np.int64)
            )
            feasible = nc <= crs
            nc = np.where(feasible, nc, 1)  # placeholder on dead lanes

            reduction_cycles = -(-crs // rp)
            compute_per_pass = reduction_cycles + nc * fill
            passes = nk * np_
            compute_cycles = (passes * compute_per_pass).astype(np.float64)

            pass_bytes = ks * crs + ps * crs / halo
            stream_cycles = passes * pass_bytes / port_bytes_per_cycle

            onchip_cycles = overlap * np.maximum(
                compute_cycles, stream_cycles
            ) + (1.0 - overlap) * (compute_cycles + stream_cycles)

            weights_fit = weight_bytes <= resident_budget
            inputs_fit = input_bytes <= resident_budget
            spill = 2.0 * PSUM_BYTES * k * p * (nc - 1)
            output_traffic = float(output_bytes) + spill

            # k_outer: weights stream once, inputs re-read per k-tile
            weight_k = float(weight_bytes)
            input_k = float(input_bytes) * np.where(inputs_fit, 1, nk)
            dram_k = weight_k + input_k + output_traffic
            cycles_k = np.maximum(
                onchip_cycles, dram_k / dram_bytes_per_cycle
            )
            # p_outer: inputs stream once, weights re-read per p-tile
            input_p = float(input_bytes)
            weight_p = float(weight_bytes) * np.where(weights_fit, 1, np_)
            dram_p = weight_p + input_p + output_traffic
            cycles_p = np.maximum(
                onchip_cycles, dram_p / dram_bytes_per_cycle
            )

            # scalar tie-break: k_outer wins unless p_outer is strictly
            # faster (both orders share this model's feasibility mask)
            layer_cycles = np.where(cycles_p < cycles_k, cycles_p, cycles_k)
            total = total + layer_cycles
            mappable &= feasible
        return total, mappable

    def latency_s(
        self, geometries: Sequence[GeometryKey]
    ) -> List[Tuple[float, bool]]:
        """``(latency seconds, mappable)`` per geometry."""
        records = self.total_cycles(geometries)
        return [
            (cycles / key[5], ok)
            for (cycles, ok), key in zip(records, geometries)
        ]
