"""Population-evaluation engine shared by the GA and NSGA-II searches.

The search throughput *is* the product for this reproduction: every
extra design evaluated per second is more of the carbon/performance
trade-off surface explored.  This package concentrates the three levers
that make the searches fast without changing a single result:

* :mod:`repro.engine.population` — :class:`PopulationEvaluator`:
  generation-at-a-time evaluation with dedup, memoisation, and optional
  ``concurrent.futures`` fan-out (deterministic result ordering);
* :mod:`repro.engine.vectorized` — numpy implementations of the
  NSGA-II internals (broadcast dominance matrix, argsort crowding,
  vectorized Pareto filter) that are exactly equal to the pure-Python
  reference implementations in :mod:`repro.approx.nsga2`;
* :mod:`repro.engine.batch` — :class:`BatchNetworkEvaluator`:
  the dataflow performance model evaluated for a whole population of
  geometries at once in numpy, bit-identical to
  :func:`repro.dataflow.performance.evaluate_network`;
* :mod:`repro.engine.diskcache` — :class:`FitnessDiskCache`: opt-in
  on-disk memoisation keyed by a hash of (genome, network, node,
  constraints, grid) so repeated experiment runs warm-start;
* :mod:`repro.engine.backends` — the pluggable dispatch layer:
  :class:`ExecutorBackend` implementations (``serial`` / ``thread`` /
  the persistent warm ``process`` pool — context-fingerprinted so a
  library-settings change reforks stale workers — / the TCP
  ``remote`` coordinator) shared by the grid runner, the population
  evaluator, and the behavioural accuracy stage
  (:meth:`repro.accuracy.behavioral.BehavioralValidator.drop_percents`
  shards multiplier sub-stacks over them), plus the registry that
  makes new strategies one-file additions;
* :mod:`repro.engine.worker` — the remote worker daemon
  (``python -m repro.engine.worker --connect HOST:PORT``) that pulls
  pickled cell shards from a coordinator and streams results back;
* :mod:`repro.engine.taskgraph` — the async task-graph layer:
  :class:`EngineSession` (``submit(fn, cells) -> TaskFuture`` with
  bounded backpressure over any backend), :class:`CoordinatorSession`
  (a persistent remote session whose worker fleet outlives individual
  jobs; concurrent jobs work-steal from one shared queue), and
  :class:`TaskGraph` (dependency-ordered submission);
* :mod:`repro.engine.grid` — :class:`GridRunner`: experiment cells
  sharded across the configured backend with deterministically ordered
  results regardless of shard count, worker count, or worker failures;
  ``run(plan)`` over an :class:`ExecutionPlan` is the one execution
  entry point;
* :mod:`repro.engine.checkpoint` — :class:`CheckpointStore`:
  versioned, atomically-replaced per-generation search snapshots
  (population, objectives, exact RNG state) behind a settings
  fingerprint, so killed searches resume bit-identically and
  mismatched-settings resumes refuse loudly;
* :mod:`repro.engine.faults` — deterministic fault injection
  (``REPRO_FAULTS=kill@gen:N`` and friends) driving the chaos tests
  and the ``chaos`` CI job.

Every fast path keeps its serial counterpart in-tree as the reference
implementation; the property tests under ``tests/engine`` assert exact
agreement.

Static invariants
-----------------

The contracts this package lives by — seeded RNG only, no wall-clock
or other nondeterministic inputs on engine paths, picklable callables
at backend boundaries, complete settings fingerprints on checkpointed
configs, all-or-none kernel-tier registrations, no new callers of the
deprecated map shims — are enforced by an AST checker,
:mod:`repro.analysis` (``python -m repro.analysis src benchmarks`` or
``repro lint-invariants``), which CI runs as a required job.  Rule
codes: RNG001, NDT001, PKL001, FPR001, KRN001, DEP001, SUP001; a
finding is silenced with a trailing ``# repro: noqa[CODE]`` whose code
must name a registered rule.  See the "Static invariants" section of
``PERF.md`` for the full inventory and the fingerprint-declaration
syntax (``# repro: fingerprinted[DECL]`` /
``# repro: non-trajectory[reason]``).

Migrating from the blocking map calls (pre task-graph API)
----------------------------------------------------------

The blocking entry points still work but now route through the
submit/future engine; new code should use the task-graph API directly:

========================================  =================================================
old call                                  new API
========================================  =================================================
``runner.map(fn, cells)``                 ``runner.run(ExecutionPlan.for_cells(fn, cells))``
``runner.map_batches(fn, items, extra)``  ``runner.run(ExecutionPlan.for_batches(fn, items, extra))``
``backend.map_shards(fn, shards)``        ``session = EngineSession(backend)``;
                                          ``futures = [session.submit(fn, s) for s in shards]``;
                                          ``session.gather(futures)``
one coordinator per ``map_shards``        ``CoordinatorSession(...)`` — submit many jobs;
                                          the fleet persists between them
========================================  =================================================

``GridRunner.map``/``map_batches`` emit :class:`DeprecationWarning` and
delegate to ``run``.  ``ExecutorBackend.map_shards`` remains the
determinism contract every backend is tested against (it is *not*
deprecated); ``EngineSession.submit`` resolves each shard's future with
exactly ``run_shard(fn, cells)``, gathered in submission order, so the
future path inherits the same bit-identical guarantee.
"""

from repro.engine.backends import (
    PROTOCOL_VERSION,
    CoordinatorConfig,
    ExecutorBackend,
    FallbackBackend,
    ProcessBackend,
    RemoteBackend,
    RemoteCoordinator,
    RemoteRunError,
    SerialBackend,
    ThreadBackend,
    backend_names,
    create_backend,
    current_pool_context,
    register_backend,
    register_pool_context_provider,
    shared_process_pool,
    shared_remote_backend,
    shutdown_remote_backends,
    shutdown_shared_pools,
    spawn_local_worker,
)
from repro.engine.batch import BatchNetworkEvaluator
from repro.engine.checkpoint import (
    Checkpoint,
    CheckpointStore,
    capture_rng_state,
    checkpoint_fingerprint,
    restore_rng_state,
)
from repro.engine.diskcache import FitnessDiskCache
from repro.engine.faults import FaultInjector, InjectedDrop, parse_faults
from repro.engine.grid import ExecutionPlan, GridConfig, GridRunner
from repro.engine.population import EngineConfig, PopulationEvaluator
from repro.engine.taskgraph import (
    CoordinatorSession,
    EngineSession,
    TaskFuture,
    TaskGraph,
)
from repro.engine.vectorized import (
    crowding_distance_np,
    dominance_matrix,
    fast_non_dominated_sort_np,
    pareto_front_np,
    uniform_crossover,
)

__all__ = [
    "BatchNetworkEvaluator",
    "Checkpoint",
    "CheckpointStore",
    "CoordinatorConfig",
    "CoordinatorSession",
    "EngineSession",
    "ExecutionPlan",
    "TaskFuture",
    "TaskGraph",
    "FaultInjector",
    "FallbackBackend",
    "FitnessDiskCache",
    "GridConfig",
    "GridRunner",
    "InjectedDrop",
    "PROTOCOL_VERSION",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "RemoteBackend",
    "RemoteCoordinator",
    "RemoteRunError",
    "capture_rng_state",
    "checkpoint_fingerprint",
    "parse_faults",
    "restore_rng_state",
    "backend_names",
    "create_backend",
    "current_pool_context",
    "register_backend",
    "register_pool_context_provider",
    "spawn_local_worker",
    "shared_process_pool",
    "shared_remote_backend",
    "shutdown_remote_backends",
    "shutdown_shared_pools",
    "EngineConfig",
    "PopulationEvaluator",
    "crowding_distance_np",
    "dominance_matrix",
    "fast_non_dominated_sort_np",
    "pareto_front_np",
    "uniform_crossover",
]
