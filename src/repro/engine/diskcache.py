"""Opt-in on-disk memoisation of fitness evaluations.

Every experiment harness re-runs GA-CDP searches over the same
(network, node, constraints, grid) settings; across figures the same
genomes come up again and again.  :class:`FitnessDiskCache` persists
``genome -> FitnessResult`` maps per *context* — a SHA-256 fingerprint
of everything the fitness value depends on — so a second run of
``experiments/fig2.py`` (or a CI re-run) warm-starts instead of
re-simulating.

Correctness: the context fingerprint covers the network architecture,
technology node, constraint thresholds, grid profile, fitness mode,
DRAM bandwidth, and the full multiplier-library identity (names, areas,
error metrics).  Any change to any of those yields a different cache
file; a stale cache can therefore alter *speed* but never *results*.

The cache is deliberately simple: one pickle file per context under the
cache directory, loaded on first touch, written atomically (tempfile +
``fsync`` + rename) on :meth:`flush`.  A corrupt or truncated cache
file — a crashed writer on a filesystem without atomic rename, a
partial copy, disk damage — is *quarantined* (renamed aside with a
warning) rather than crashing the run or silently poisoning the shared
multi-node store: the run restarts from a cold cache and rewrites a
healthy file on the next flush.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from typing import Any, Dict, Optional, Tuple

Genome = Tuple[int, ...]

#: Bump when the cached payload's schema changes.
SCHEMA_VERSION = 1


def context_fingerprint(*parts: Any) -> str:
    """Stable SHA-256 hex digest of a tuple of primitive parts."""
    digest = hashlib.sha256(repr((SCHEMA_VERSION,) + parts).encode("utf-8"))
    return digest.hexdigest()[:32]


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Durably replace ``path`` with ``payload`` (temp + fsync + rename).

    The payload is written to a sibling temp file, fsynced, and moved
    into place with :func:`os.replace`, so readers only ever observe
    the old complete file or the new complete file — a crash (even
    SIGKILL) mid-write cannot leave a truncated file under ``path``.
    The containing directory is fsynced afterwards where the platform
    allows, making the rename itself durable across power loss.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}-"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory handles; rename is still atomic
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def quarantine_corrupt_file(path: str, reason: str) -> None:
    """Move a damaged store file aside (best effort) with a warning.

    The quarantined copy keeps a ``.corrupt-<pid>`` suffix for
    post-mortems; concurrent readers that lost the rename race simply
    find the file gone and proceed cold.
    """
    quarantined = f"{path}.corrupt-{os.getpid()}"
    try:
        os.replace(path, quarantined)
        where = f"; quarantined as {quarantined}"
    except OSError:
        where = "; quarantine rename failed (another process may have won)"
    warnings.warn(
        f"discarding corrupt store file {path} ({reason}){where}",
        RuntimeWarning,
        stacklevel=3,
    )


class FitnessDiskCache:
    """Per-context persistent genome -> result store.

    Args:
        cache_dir: directory for the cache files (created on demand).
        context: fingerprint string from :func:`context_fingerprint`.
    """

    def __init__(self, cache_dir: str, context: str):
        self.cache_dir = cache_dir
        self.context = context
        self.path = os.path.join(cache_dir, f"fitness-{context}.pkl")
        self._data: Optional[Dict[Genome, Any]] = None
        self._dirty = False

    # -- lazy load ------------------------------------------------------

    def _load(self) -> Dict[Genome, Any]:
        if self._data is None:
            try:
                with open(self.path, "rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                self._data = {}
            except (
                OSError,
                pickle.UnpicklingError,
                EOFError,
                ValueError,
                AttributeError,
                ImportError,
                MemoryError,
            ) as exc:
                # a truncated or damaged pickle must not crash the run
                # (nor keep poisoning the shared multi-node cache):
                # quarantine it and start cold — speed, never results
                quarantine_corrupt_file(self.path, repr(exc))
                self._data = {}
            else:
                if isinstance(payload, dict):
                    self._data = dict(payload)
                else:
                    quarantine_corrupt_file(
                        self.path, f"expected a dict, got {type(payload).__name__}"
                    )
                    self._data = {}
        return self._data

    # -- mapping interface ---------------------------------------------

    def __len__(self) -> int:
        return len(self._load())

    def get(self, genome: Genome) -> Any:
        return self._load().get(genome)

    def put(self, genome: Genome, result: Any) -> None:
        data = self._load()
        if genome not in data:
            data[genome] = result
            self._dirty = True

    def flush(self) -> None:
        """Atomically persist pending entries (no-op when clean).

        Routed through :func:`atomic_write_bytes`, so a crash mid-flush
        (even SIGKILL) leaves the previous complete file in place —
        never a truncated pickle that would poison every process
        sharing the cache directory.
        """
        if not self._dirty or self._data is None:
            return
        atomic_write_bytes(
            self.path,
            pickle.dumps(self._data, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._dirty = False
