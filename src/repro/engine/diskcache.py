"""Opt-in on-disk memoisation of fitness evaluations.

Every experiment harness re-runs GA-CDP searches over the same
(network, node, constraints, grid) settings; across figures the same
genomes come up again and again.  :class:`FitnessDiskCache` persists
``genome -> FitnessResult`` maps per *context* — a SHA-256 fingerprint
of everything the fitness value depends on — so a second run of
``experiments/fig2.py`` (or a CI re-run) warm-starts instead of
re-simulating.

Correctness: the context fingerprint covers the network architecture,
technology node, constraint thresholds, grid profile, fitness mode,
DRAM bandwidth, and the full multiplier-library identity (names, areas,
error metrics).  Any change to any of those yields a different cache
file; a stale cache can therefore alter *speed* but never *results*.

The cache is deliberately simple: one pickle file per context under the
cache directory, loaded on first touch, written atomically (tempfile +
rename) on :meth:`flush`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Dict, Optional, Tuple

Genome = Tuple[int, ...]

#: Bump when the cached payload's schema changes.
SCHEMA_VERSION = 1


def context_fingerprint(*parts: Any) -> str:
    """Stable SHA-256 hex digest of a tuple of primitive parts."""
    digest = hashlib.sha256(repr((SCHEMA_VERSION,) + parts).encode("utf-8"))
    return digest.hexdigest()[:32]


class FitnessDiskCache:
    """Per-context persistent genome -> result store.

    Args:
        cache_dir: directory for the cache files (created on demand).
        context: fingerprint string from :func:`context_fingerprint`.
    """

    def __init__(self, cache_dir: str, context: str):
        self.cache_dir = cache_dir
        self.context = context
        self.path = os.path.join(cache_dir, f"fitness-{context}.pkl")
        self._data: Optional[Dict[Genome, Any]] = None
        self._dirty = False

    # -- lazy load ------------------------------------------------------

    def _load(self) -> Dict[Genome, Any]:
        if self._data is None:
            try:
                with open(self.path, "rb") as handle:
                    payload = pickle.load(handle)
                self._data = dict(payload) if isinstance(payload, dict) else {}
            except (OSError, pickle.UnpicklingError, EOFError, ValueError):
                self._data = {}
        return self._data

    # -- mapping interface ---------------------------------------------

    def __len__(self) -> int:
        return len(self._load())

    def get(self, genome: Genome) -> Any:
        return self._load().get(genome)

    def put(self, genome: Genome, result: Any) -> None:
        data = self._load()
        if genome not in data:
            data[genome] = result
            self._dirty = True

    def flush(self) -> None:
        """Atomically persist pending entries (no-op when clean)."""
        if not self._dirty or self._data is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=self.cache_dir, prefix=f".fitness-{self.context}-"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(self._data, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self.path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._dirty = False
