"""Async task graph over the execution backends: futures + backpressure.

The map-style entry points (:meth:`GridRunner.map_shards`,
:class:`PopulationEvaluator`) are synchronous barriers: every wave must
fully complete before the next one is even *submitted*, so a run can
never overlap its library build, accuracy stage, and search.  This
module is the asynchronous layer underneath them:

``EngineSession``
    wraps any :class:`~repro.engine.backends.ExecutorBackend` and turns
    it into a ``submit(fn, cells) -> TaskFuture`` surface with *bounded
    backpressure* — at most ``max_inflight`` shards are outstanding,
    and further ``submit`` calls block until a slot frees, so a
    producer can stream millions of shards without buffering them all.
    The serial backend stays the bit-identical reference: a serial
    session executes each shard inline at ``submit`` time, in
    submission order, on the calling thread.

``CoordinatorSession``
    an ``EngineSession`` over the *persistent* shared remote backend:
    the TCP coordinator outlives individual maps, workers join/leave
    mid-run, and shards submitted by concurrent sessions interleave
    onto one shared work-stealing queue (see
    ``RemoteCoordinator.submit_single``).  Closing the session drains
    its own futures but leaves the coordinator and its warm fleet up
    for the next client.

``TaskGraph``
    a thin dependency layer: ``add(fn, cells, after=...)`` nodes are
    submitted the moment their dependencies resolve, from a dedicated
    dispatch thread (never from a result-callback thread, which could
    deadlock against the backpressure bound).  This is what lets
    generation ``g+1``'s circuit evaluation overlap generation ``g``'s
    streaming accuracy scores.

Determinism contract: ``session.map_shards(fn, shards)`` equals
``[[fn(*cell) for cell in shard] for shard in shards]`` for every
backend, exactly like the blocking backend protocol — futures change
*when* work runs, never *what* it computes.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.backends import (
    Cell,
    ExecutorBackend,
    RemoteRunError,
    SerialBackend,
    ThreadBackend,
    run_shard,
    shared_remote_backend,
)
from repro.errors import ExperimentError

#: Poll interval for internal condition waits.  Engine code never
#: blocks unboundedly (invariant TMO001): a bounded wait re-checks its
#: predicate so a lost notify — or a coordinator that died without one
#: — degrades to a short poll instead of a hang.
POLL_INTERVAL_S = 0.2

__all__ = [
    "TaskFuture",
    "EngineSession",
    "CoordinatorSession",
    "TaskGraph",
]


class TaskFuture:
    """The result of one submitted shard: per-cell values, in order.

    A minimal future — ``done`` / ``result`` / ``exception`` /
    ``add_done_callback`` — resolved exactly once by the session that
    created it.  ``result()`` blocks until resolution and re-raises the
    shard's exception if it failed; callbacks added after resolution
    fire immediately on the caller's thread.
    """

    __slots__ = ("_event", "_value", "_error", "_callbacks", "_lock", "label")

    def __init__(self, label: Optional[str] = None):
        self._event = threading.Event()
        self._value: Optional[List[Any]] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["TaskFuture"], None]] = []
        self._lock = threading.Lock()
        self.label = label

    def done(self) -> bool:
        """True once the shard has a result or an exception."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> List[Any]:
        """Block for, then return, the shard's per-cell result list."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"shard result not ready within {timeout} s"
                + (f" (task {self.label})" if self.label else "")
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """Block for resolution; the stored exception or ``None``."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"shard result not ready within {timeout} s"
                + (f" (task {self.label})" if self.label else "")
            )
        return self._error

    def add_done_callback(
        self, callback: Callable[["TaskFuture"], None]
    ) -> None:
        """Run ``callback(self)`` at resolution (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(
        self,
        value: Optional[List[Any]],
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._event.is_set():  # resolved exactly once
                return
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class EngineSession:
    """``submit(fn, cells) -> TaskFuture`` over any executor backend.

    Args:
        backend: the executor strategy.  Serial backends run each shard
            inline at ``submit`` (the bit-identical, in-order
            reference); backends exposing ``submit_cells`` (the remote
            backend) enqueue on the coordinator's shared queue; every
            other backend is driven through a dispatcher thread pool
            calling its blocking ``map_shards`` one shard at a time.
        max_inflight: backpressure bound — ``submit`` blocks while this
            many shards are outstanding (default: twice the backend's
            worker width, at least 2).
        close_backend: close the backend when the session closes
            (default off: sessions over shared backends must leave the
            fleet warm for the next client).

    Sessions are thread-safe: any number of producer threads may
    ``submit`` concurrently, and several sessions may share one
    backend.  ``close`` (or the context manager) drains outstanding
    futures first, so PR 6's checkpoint rule — a generation commits
    only after all its futures resolve — holds by construction for any
    client that gathers its futures before checkpointing.
    """

    def __init__(
        self,
        backend: ExecutorBackend,
        max_inflight: Optional[int] = None,
        close_backend: bool = False,
    ):
        self.backend = backend
        width = getattr(backend, "workers", None)
        if width is None:
            width = getattr(backend, "spawn", None) or 4
        width = max(1, int(width))
        self.max_inflight = (
            max(2, 2 * width) if max_inflight is None else max(1, max_inflight)
        )
        self._close_backend = close_backend
        self._serial = isinstance(backend, SerialBackend)
        self._submit_cells = getattr(backend, "submit_cells", None)
        self._inflight = threading.BoundedSemaphore(self.max_inflight)
        self._outstanding = 0
        self._state = threading.Condition()
        self._closed = False
        self._dispatcher: Optional[ThreadPoolExecutor] = None
        if not self._serial and self._submit_cells is None:
            # exactly the backend's width: max_inflight (>= width)
            # bounds *queued* shards, the pool bounds *running* ones —
            # a 2-worker thread backend must never run 4 shards at once
            self._dispatcher = ThreadPoolExecutor(
                max_workers=width,
                thread_name_prefix="engine-session",
            )

    # -- submission -----------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        cells: Sequence[Cell],
        label: Optional[str] = None,
    ) -> TaskFuture:
        """Enqueue one shard; blocks only when ``max_inflight`` is hit.

        Returns a :class:`TaskFuture` resolving to
        ``[fn(*cell) for cell in cells]``.
        """
        cells = [tuple(cell) for cell in cells]
        future = TaskFuture(label=label)
        self._inflight.acquire()
        with self._state:
            if self._closed:
                self._inflight.release()
                raise ExperimentError("engine session is closed")
            self._outstanding += 1

        def finish(
            value: Optional[List[Any]], error: Optional[BaseException]
        ) -> None:
            with self._state:
                self._outstanding -= 1
                self._state.notify_all()
            self._inflight.release()
            future._resolve(value, error)

        if self._serial:
            # the reference path: inline, in submission order, on the
            # calling thread — bit-identical to the blocking engine
            try:
                value = run_shard(fn, cells)
            except Exception as exc:  # noqa: BLE001 - stored, re-raised
                finish(None, exc)
            else:
                finish(value, None)
            return future

        if self._submit_cells is not None:

            def on_done(
                result: Optional[List[Any]],
                failure: Optional[RemoteRunError],
            ) -> None:
                finish(result, failure)

            try:
                self._submit_cells(fn, cells, on_done)
            except Exception as exc:  # noqa: BLE001 - stored, re-raised
                finish(None, exc)
            return future

        def dispatch() -> None:
            try:
                if isinstance(self.backend, ThreadBackend):
                    # already on a session thread; a nested
                    # single-thread pool would add nothing
                    value = run_shard(fn, cells)
                else:
                    value = self.backend.map_shards(fn, [cells])[0]
            except Exception as exc:  # noqa: BLE001 - stored, re-raised
                finish(None, exc)
            else:
                finish(value, None)

        assert self._dispatcher is not None
        self._dispatcher.submit(dispatch)
        return future

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        """The blocking protocol, expressed as submit-then-gather.

        Equals ``[[fn(*cell) for cell in shard] for shard in shards]``
        — the backend determinism contract — for every backend.
        """
        futures = [self.submit(fn, shard) for shard in shards]
        return self.gather(futures)

    # -- gathering ------------------------------------------------------

    @staticmethod
    def gather(futures: Sequence[TaskFuture]) -> List[List[Any]]:
        """Results of ``futures`` in the given (submission) order."""
        return [future.result() for future in futures]

    @staticmethod
    def as_completed(
        futures: Iterable[TaskFuture],
    ) -> Iterator[TaskFuture]:
        """Yield futures in completion order (out-of-order streaming)."""
        futures = list(futures)
        ready: "deque[TaskFuture]" = deque()
        signal = threading.Condition()

        def on_done(future: TaskFuture) -> None:
            with signal:
                ready.append(future)
                signal.notify()

        for future in futures:
            future.add_done_callback(on_done)
        for _ in range(len(futures)):
            with signal:
                while not ready:
                    signal.wait(POLL_INTERVAL_S)
                yield ready.popleft()

    def drain(self) -> None:
        """Block until every shard submitted so far has resolved."""
        with self._state:
            while self._outstanding > 0:
                self._state.wait(POLL_INTERVAL_S)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Drain outstanding futures and stop accepting new ones."""
        with self._state:
            if self._closed:
                return
            self._closed = True
        self.drain()
        if self._dispatcher is not None:
            self._dispatcher.shutdown(wait=True)
        if self._close_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class CoordinatorSession(EngineSession):
    """A session over the persistent shared remote coordinator.

    Args:
        coordinator: ``HOST:PORT`` bind for the shared coordinator
            (default loopback/ephemeral — see
            :func:`~repro.engine.backends.shared_remote_backend`).
        spawn: local worker daemons the shared backend keeps attached.
        max_inflight: backpressure bound (see :class:`EngineSession`).
        task_deadline_s: per-task deadline in seconds — a shard unacked
            past it is revoked from its (presumably hung) worker and
            requeued (see ``CoordinatorConfig.task_deadline_s``).

    Concurrent ``CoordinatorSession``\\ s over the same address share
    one coordinator and one worker fleet; their shards interleave on
    the coordinator's work-stealing queue, and workers may join or
    leave at any point.  ``close`` drains this session's futures but
    deliberately leaves the coordinator up — it belongs to the process,
    not to any one session (``shutdown_remote_backends`` tears it
    down).
    """

    def __init__(
        self,
        coordinator: Optional[str] = None,
        spawn: Optional[int] = None,
        max_inflight: Optional[int] = None,
        task_deadline_s: Optional[float] = None,
    ):
        super().__init__(
            shared_remote_backend(coordinator, spawn, task_deadline_s),
            max_inflight=max_inflight,
            close_backend=False,
        )

    def fleet_health(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker health snapshots from the shared coordinator.

        Maps worker identity (``pid:N`` / ``conn:N``) to its ledger
        snapshot (``state``, ``failures``, ``timeouts``, ``completed``,
        ... — see ``RemoteCoordinator.fleet_health``); empty before any
        worker has connected.
        """
        health = getattr(self.backend, "fleet_health", None)
        return health() if health is not None else {}


class _GraphNode:
    __slots__ = ("fn", "cells", "cells_from", "after", "future", "pending")

    def __init__(
        self,
        fn: Callable[..., Any],
        cells: Optional[Sequence[Cell]],
        cells_from: Optional[Callable[[List[List[Any]]], Sequence[Cell]]],
        after: Tuple[TaskFuture, ...],
    ):
        self.fn = fn
        self.cells = cells
        self.cells_from = cells_from
        self.after = after
        self.future = TaskFuture()
        self.pending = len(after)


class TaskGraph:
    """Dependency-ordered submission onto an :class:`EngineSession`.

    ``add(fn, cells)`` nodes with no dependencies are submitted
    immediately; ``add(fn, after=(a, b), cells_from=build)`` nodes wait
    until every dependency resolves, then ``build([a_result,
    b_result])`` produces their cells and they join the session queue.
    All submission happens on one dedicated dispatch thread — result
    callbacks only flip dependency counters, so a full backpressure
    bound can never deadlock the backend's own completion path.

    A failed dependency fails its dependents (same exception) without
    running them; independent branches are unaffected — the graph is
    the async analogue of job-scoped failure in the coordinator.
    """

    def __init__(self, session: EngineSession):
        self.session = session
        self._ready: "deque[_GraphNode]" = deque()
        self._state = threading.Condition()
        self._open_nodes = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, daemon=True
        )
        self._thread.start()

    def add(
        self,
        fn: Callable[..., Any],
        cells: Optional[Sequence[Cell]] = None,
        after: Sequence[TaskFuture] = (),
        cells_from: Optional[
            Callable[[List[List[Any]]], Sequence[Cell]]
        ] = None,
    ) -> TaskFuture:
        """Register one node; returns the future of its shard.

        Exactly one of ``cells`` (static shard) or ``cells_from``
        (shard built from the dependencies' results, in ``after``
        order) must be given.
        """
        if (cells is None) == (cells_from is None):
            raise ExperimentError(
                "TaskGraph.add takes exactly one of cells/cells_from"
            )
        if cells_from is not None and not after:
            raise ExperimentError("cells_from requires dependencies (after)")
        node = _GraphNode(fn, cells, cells_from, tuple(after))
        with self._state:
            if self._closed:
                raise ExperimentError("task graph is closed")
            self._open_nodes += 1
            if node.pending == 0:
                self._ready.append(node)
                self._state.notify_all()
        if node.pending:

            def on_dep_done(_dep: TaskFuture) -> None:
                with self._state:
                    node.pending -= 1
                    if node.pending == 0:
                        self._ready.append(node)
                        self._state.notify_all()

            for dep in node.after:
                dep.add_done_callback(on_dep_done)
        return node.future

    def _dispatch_loop(self) -> None:
        while True:
            with self._state:
                while not self._ready and not self._closed:
                    self._state.wait(POLL_INTERVAL_S)
                if not self._ready and self._closed:
                    return
                node = self._ready.popleft()
            self._dispatch(node)
            with self._state:
                self._open_nodes -= 1
                self._state.notify_all()

    def _dispatch(self, node: _GraphNode) -> None:
        failed = next(
            (dep for dep in node.after if dep.exception() is not None), None
        )
        if failed is not None:
            node.future._resolve(None, failed.exception())
            return
        try:
            cells = (
                node.cells
                if node.cells is not None
                else node.cells_from([dep.result() for dep in node.after])
            )
            submitted = self.session.submit(node.fn, cells)
        except Exception as exc:  # noqa: BLE001 - stored, re-raised
            node.future._resolve(None, exc)
            return
        submitted.add_done_callback(
            lambda done: node.future._resolve(
                done._value, done._error
            )
        )

    def join(self) -> None:
        """Block until every added node has been *submitted*.

        Gather the returned futures (or ``session.drain()``) to wait
        for the results themselves.
        """
        with self._state:
            while self._open_nodes > 0:
                self._state.wait(POLL_INTERVAL_S)

    def close(self) -> None:
        """Wait for all nodes to dispatch, then stop the thread."""
        self.join()
        with self._state:
            self._closed = True
            self._state.notify_all()
        self._thread.join()

    def __enter__(self) -> "TaskGraph":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
