"""Generation-at-a-time evaluation with dedup, memo, and fan-out.

:class:`PopulationEvaluator` is the single entry point both searches
(GA and NSGA-II) use to score a population.  It always performs the
same work in the same order as the serial reference path — evaluation
is a pure function of the genome — so every execution mode returns
identical results:

* ``serial`` — the reference: one genome at a time, in order;
* ``batch``  — delegate the generation's cache misses to a vectorized
  ``batch_evaluate`` callable (see
  :meth:`repro.ga.fitness.FitnessEvaluator.evaluate_population` and
  :class:`repro.approx.pruning.BatchedPruningObjectives`);
* ``thread`` / ``process`` — fan the cache misses out over the
  matching :mod:`repro.engine.backends` executor through the
  submit/future engine (:class:`repro.engine.taskgraph.EngineSession`);
  futures are gathered in submission order, so completion order cannot
  leak into the outcome;
* ``auto``   — ``batch`` when a batch callable exists, else ``thread``
  when the machine has more than one CPU, else ``serial``.

Genomes are deduplicated against an internal memo cache before any
dispatch, so a converged population (mostly repeated elites) costs only
the genuinely new evaluations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.backends import ProcessBackend, ThreadBackend
from repro.engine.taskgraph import EngineSession
from repro.errors import OptimizationError

Genome = Tuple[int, ...]

_MODES = ("auto", "serial", "batch", "thread", "process")


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for population evaluation.

    Attributes:
        mode: ``auto`` / ``serial`` / ``batch`` / ``thread`` /
            ``process``.
        workers: pool size for the parallel modes (default: CPU count).
        chunk_size: genomes per task in ``process`` mode (amortises IPC).
        kernel_tier: compiled-kernel tier for the batched hot loops
            (see :mod:`repro.engine.kernels`): ``None`` defers to
            ``REPRO_KERNEL_TIER`` / ``auto``; an unavailable tier
            degrades to numpy with a warning.  Every tier returns
            bit-identical results.
    """

    mode: str = "auto"
    workers: Optional[int] = None
    chunk_size: int = 8
    kernel_tier: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise OptimizationError(
                f"unknown engine mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.workers is not None and self.workers < 1:
            raise OptimizationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.chunk_size < 1:
            raise OptimizationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        from repro.engine.kernels import validate_kernel_tier

        validate_kernel_tier(self.kernel_tier)

    def resolved_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


class PopulationEvaluator:
    """Memoised, order-preserving population evaluation.

    Args:
        evaluate: genome -> result (pure; must be picklable for
            ``process`` mode).
        batch_evaluate: optional population -> results fast path; must
            return results bit-identical to mapping ``evaluate``.
        config: execution policy.
        store: optional parent-side backfill hook, called as
            ``store(genome, result)`` for every miss computed outside
            ``evaluate`` itself — in a worker *process*, or by the
            ``batch`` fast path — the modes where ``evaluate``'s own
            side effects (memo dicts, disk caches, counters) would
            otherwise be lost.

    Determinism: for a fixed genome sequence the returned list is
    identical in every mode — parallelism only changes *when* a miss is
    computed, never *what* is returned or in which slot.
    """

    def __init__(
        self,
        evaluate: Callable[[Genome], Any],
        batch_evaluate: Optional[Callable[[Sequence[Genome]], List[Any]]] = None,
        config: Optional[EngineConfig] = None,
        store: Optional[Callable[[Genome, Any], None]] = None,
    ):
        self.evaluate = evaluate
        self.batch_evaluate = batch_evaluate
        self.config = config or EngineConfig()
        self.store = store
        self._memo: Dict[Genome, Any] = {}
        if self.config.mode == "batch" and batch_evaluate is None:
            raise OptimizationError(
                "mode 'batch' requires a batch_evaluate callable"
            )

    @property
    def evaluations(self) -> int:
        """Distinct genomes this evaluator has scored itself."""
        return len(self._memo)

    def resolved_mode(self) -> str:
        mode = self.config.mode
        if mode != "auto":
            return mode
        if self.batch_evaluate is not None:
            return "batch"
        if self.config.resolved_workers() > 1:
            return "thread"
        return "serial"

    def __call__(self, genomes: Sequence[Genome]) -> List[Any]:
        mode = self.resolved_mode()
        misses = [g for g in dict.fromkeys(genomes) if g not in self._memo]
        if misses:
            if mode == "batch":
                assert self.batch_evaluate is not None
                results = list(self.batch_evaluate(misses))
                if len(results) != len(misses):
                    raise OptimizationError(
                        f"batch_evaluate returned {len(results)} results "
                        f"for {len(misses)} genomes"
                    )
                # callables that already persist their own misses (e.g.
                # FitnessEvaluator.evaluate_population) opt out of the
                # backfill by marking themselves self_storing
                if self.store is not None and not getattr(
                    self.batch_evaluate, "self_storing", False
                ):
                    for genome, result in zip(misses, results):
                        self.store(genome, result)
            elif mode == "serial" or len(misses) == 1:
                results = [self.evaluate(g) for g in misses]
            elif mode == "thread":
                backend = ThreadBackend(
                    min(self.config.resolved_workers(), len(misses))
                )
                with EngineSession(backend) as session:
                    futures = [
                        session.submit(self.evaluate, [(genome,)])
                        for genome in misses
                    ]
                    shard_results = session.gather(futures)
                results = [shard[0] for shard in shard_results]
            else:  # process: warm shared pool, chunked dispatch
                results = self._process_map(misses)
                if self.store is not None:
                    for genome, result in zip(misses, results):
                        self.store(genome, result)
            for genome, result in zip(misses, results):
                self._memo[genome] = result
        return [self._memo[g] for g in genomes]

    def _process_map(self, misses: List[Genome]) -> List[Any]:
        """Fan misses out over the persistent shared process pool.

        Chunks are reassembled in submission order, so completion order
        cannot leak into the outcome; :class:`ProcessBackend` degrades
        to the serial reference inside a pool worker (no nested pools)
        and on a broken pool (same results, just slower).

        Caveat: ``evaluate`` must be a pure function of the genome and
        module state as importable in a worker.  Callers that
        monkeypatch module globals (the yield/bandwidth sensitivity
        sweeps) must not use process mode — warm workers either miss
        the patch or outlive it; those harnesses demote themselves to
        thread mode (see ``experiments/sensitivity.py``).
        """
        # keyed by the configured count so every run shares one pool
        workers = self.config.resolved_workers()
        # chunk_size is a *minimum* granularity: never split into more
        # chunks than workers, so the (potentially megabytes-large)
        # evaluate callable is pickled at most once per worker per
        # generation rather than once per chunk_size genomes
        chunk = max(self.config.chunk_size, -(-len(misses) // workers))
        shards = [
            [(genome,) for genome in misses[start : start + chunk]]
            for start in range(0, len(misses), chunk)
        ]
        with EngineSession(ProcessBackend(workers)) as session:
            futures = [session.submit(self.evaluate, shard) for shard in shards]
            shard_results = session.gather(futures)
        return [result for shard in shard_results for result in shard]
