"""Remote grid-worker daemon.

Attach any machine that shares the code (and, ideally, the on-disk
objective/fitness caches) to a running coordinator::

    PYTHONPATH=src python -m repro.engine.worker --connect HOST:PORT

The daemon speaks the pull protocol of
:class:`repro.engine.backends.RemoteCoordinator`: handshake (protocol
version check), then ``ready`` -> ``task``/``shutdown`` -> ``result``
-> ``ack`` until the coordinator shuts it down or the connection
drops.  Cells are
pure functions, so a worker holds no run state: killing one mid-task
only costs the re-execution of that task elsewhere, and starting one
mid-run immediately adds capacity.

A worker may be started *before* its coordinator binds: the dial
retries with bounded exponential backoff (``--retry`` attempts,
``--retry-interval`` seed pause doubling per ``--retry-backoff`` up to
``--retry-max-interval``) instead of dying on the first refused
connection.  A connection that *drops* outside a clean ``shutdown``
(the coordinator crashed or was killed) is redialed with the same
bounded backoff up to ``--redial`` times: a restarted coordinator
announces a higher epoch in its ``welcome`` and the worker simply
rebinds — any task it held was revoked or requeued coordinator-side.

Exit codes: ``0`` normal shutdown (including a coordinator that stays
gone after the redial budget), ``1`` connection/protocol failure
(including an unreachable coordinator after the first retry budget),
``2`` rejected at handshake (e.g. protocol-version mismatch).
"""

from __future__ import annotations

import argparse
import os
import socket
import struct
import sys
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.engine.backends import (
    PROTOCOL_VERSION,
    parse_address,
    recv_msg,
    run_shard,
    send_msg,
)
from repro.engine.faults import InjectedCorrupt, InjectedDrop, active_injector
from repro.engine.kernels import kernel_availability
from repro.errors import ReproError

#: Ceiling on establishing one TCP connection (handshake excluded) —
#: a dial that hangs past this counts as one failed attempt.
DIAL_TIMEOUT_S = 10.0


class CoordinatorLost(ConnectionError):
    """The connection dropped outside a clean ``shutdown`` exchange."""


def backoff_intervals(
    attempts: int,
    base: float = 0.25,
    factor: float = 2.0,
    cap: float = 5.0,
) -> List[float]:
    """Pause schedule between connection attempts (``attempts - 1`` long).

    Exponential backoff capped at ``cap`` seconds: quick retries while
    a coordinator is (re)binding, without hammering the host when the
    worker was started well before the run.  ``factor=1.0`` recovers
    the old fixed-interval schedule.
    """
    intervals: List[float] = []
    pause = base
    for _ in range(max(0, attempts - 1)):
        intervals.append(min(pause, cap) if cap > 0 else pause)
        pause *= factor
    return intervals


def connect(
    address: str,
    attempts: int = 40,
    retry_interval: float = 0.25,
    backoff: float = 2.0,
    max_interval: float = 5.0,
) -> socket.socket:
    """Dial the coordinator, retrying with bounded exponential backoff.

    A worker daemon is routinely started *before* the coordinator binds
    (provisioning scripts bring machines up in any order), so a refused
    connection is retried ``attempts`` times with the
    :func:`backoff_intervals` schedule rather than dying immediately.
    Exhausting the budget raises ``OSError`` — the daemon exits 1,
    distinct from exit 2 (rejected at handshake, e.g. a protocol
    version mismatch).
    """
    host, port = parse_address(address)
    pauses = backoff_intervals(
        max(1, attempts), retry_interval, backoff, max_interval
    )
    last_error: Optional[OSError] = None
    for attempt in range(max(1, attempts)):
        try:
            sock = socket.create_connection((host, port), timeout=DIAL_TIMEOUT_S)
            # the dial timeout must not bleed into the serve loop: a
            # worker legitimately idles for unbounded stretches waiting
            # for its next task between jobs (a dead coordinator is
            # detected as recv() returning EOF, not by a read timeout)
            sock.settimeout(None)  # repro: noqa[TMO001]
            return sock
        except OSError as exc:
            last_error = exc
            if attempt < len(pauses):
                time.sleep(pauses[attempt])
    raise OSError(
        f"could not reach coordinator at {address} "
        f"after {max(1, attempts)} attempts: {last_error}"
    ) from last_error


def serve(
    sock: socket.socket,
    protocol: int = PROTOCOL_VERSION,
    verbose: bool = False,
    epoch_state: Optional[Dict[str, Any]] = None,
) -> int:
    """Run the pull loop on an open coordinator connection.

    Fault-injection hooks (active only when :data:`FAULTS_ENV` is set
    in *this worker's* environment) fire after every received protocol
    message (``recv`` ordinals count from the handshake greeting), on
    task receipt (``shard``), and before task execution (``task`` /
    ``slow``).

    ``epoch_state`` (a mutable dict owned by :func:`run_worker`)
    remembers the last coordinator epoch seen across redials; a higher
    epoch in the ``welcome`` means this worker rebound to a restarted
    coordinator incarnation, which is logged to stderr.  A connection
    that drops outside a clean ``shutdown`` raises
    :class:`CoordinatorLost` so the caller can redial.
    """

    def log(message: str) -> None:
        if verbose:
            print(f"[worker {os.getpid()}] {message}", file=sys.stderr)

    injector = active_injector()
    send_msg(
        sock,
        {
            "type": "hello",
            "protocol": protocol,
            "pid": os.getpid(),
            # advertised so the coordinator can warn on mixed-tier
            # fleets (results are bit-identical either way; this is a
            # performance heads-up, never a rejection)
            "kernels": kernel_availability(),
        },
    )
    greeting = recv_msg(sock)
    injector.on_recv()
    if greeting is None:
        raise CoordinatorLost("coordinator closed during handshake")
    if greeting.get("type") == "reject":
        print(f"rejected by coordinator: {greeting.get('reason')}",
              file=sys.stderr)
        return 2
    if greeting.get("type") != "welcome":
        print(f"unexpected greeting {greeting.get('type')!r}", file=sys.stderr)
        return 1
    epoch = greeting.get("epoch")
    if epoch_state is not None and epoch is not None:
        previous = epoch_state.get("epoch")
        if previous is not None and epoch != previous:
            print(
                f"[worker {os.getpid()}] rebound to coordinator epoch "
                f"{epoch} (was {previous})",
                file=sys.stderr,
            )
        epoch_state["epoch"] = epoch
    log("connected")

    while True:
        send_msg(sock, {"type": "ready"})
        message = recv_msg(sock)
        injector.on_recv()
        if message is None:
            raise CoordinatorLost("coordinator gone awaiting a task")
        kind = message.get("type")
        if kind == "shutdown":
            log("shutdown received")
            return 0
        if kind != "task":
            print(f"unexpected message {kind!r}", file=sys.stderr)
            return 1
        task_id = message["task_id"]
        injector.on_shard(task_id)
        log(f"task {task_id}: {len(message['cells'])} cell(s)")
        try:
            injector.on_task_execute()
            result = run_shard(message["fn"], message["cells"])
        except Exception as exc:
            # deterministic cell failures are reported, not retried —
            # the coordinator fails the run exactly like the serial path
            log(f"task {task_id} raised: {exc!r}")
            send_msg(
                sock,
                {
                    "type": "error",
                    "task_id": task_id,
                    "error": "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip(),
                },
            )
            continue
        send_msg(sock, {"type": "result", "task_id": task_id, "result": result})
        # ack-then-close: the coordinator confirms the result was
        # recorded before this worker asks for more work, so a session
        # draining at shutdown can never drop (or spuriously requeue)
        # the last in-flight shard
        ack = recv_msg(sock)
        injector.on_recv()
        if ack is None:
            raise CoordinatorLost("coordinator gone before ack")
        if ack.get("type") != "ack":
            print(f"unexpected message {ack.get('type')!r} awaiting ack",
                  file=sys.stderr)
            return 1


def run_worker(
    address: str,
    attempts: int = 40,
    retry_interval: float = 0.25,
    backoff: float = 2.0,
    max_interval: float = 5.0,
    protocol: int = PROTOCOL_VERSION,
    verbose: bool = False,
    redials: int = 5,
) -> int:
    """Connect and serve (redialing on drops); returns the exit code.

    A clean ``shutdown`` from the coordinator retires the worker
    (exit 0).  A dropped connection — coordinator crash, kill, or
    network fault — is redialed up to ``redials`` times with the full
    bounded-backoff budget each; a restarted coordinator incarnation
    is joined transparently (its ``welcome`` carries a higher epoch).
    A coordinator that never comes back retires the worker cleanly
    (exit 0) once the redial budget is spent.
    """
    epoch_state: Dict[str, Any] = {}
    connected_once = False
    remaining = max(0, redials)
    while True:
        try:
            sock = connect(
                address,
                attempts=attempts,
                retry_interval=retry_interval,
                backoff=backoff,
                max_interval=max_interval,
            )
        except (OSError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            # an address that never answered is an operator error
            # (exit 1); one that answered before and stays gone means
            # the session is simply over — retire cleanly
            return 0 if connected_once else 1
        connected_once = True
        try:
            return serve(
                sock,
                protocol=protocol,
                verbose=verbose,
                epoch_state=epoch_state,
            )
        except InjectedDrop:
            # chaos harness: behave exactly like a crashed worker —
            # close the socket (finally-block) so the coordinator
            # requeues
            return 0
        except InjectedCorrupt as exc:
            # chaos harness: a correctly framed but unpicklable payload
            # — the coordinator's framing layer must contain this
            print(f"injected corruption: {exc}", file=sys.stderr)
            try:
                sock.sendall(struct.pack(">Q", 8) + b"!garbage")
            except OSError:
                pass
            return 0
        except (CoordinatorLost, OSError, ConnectionError, EOFError) as exc:
            if remaining <= 0:
                print(
                    f"coordinator connection lost ({exc}); redial budget "
                    "exhausted, retiring",
                    file=sys.stderr,
                )
                return 0
            remaining -= 1
            print(
                f"coordinator connection lost ({exc}); redialing "
                f"({remaining} redial(s) left)",
                file=sys.stderr,
            )
        finally:
            try:
                sock.close()
            except OSError:
                pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description="Pull-mode experiment-grid worker for the remote "
        "execution backend.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (e.g. 192.168.1.10:7777)",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=40,
        metavar="N",
        help="connection attempts before giving up (default: 40)",
    )
    parser.add_argument(
        "--retry-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="initial pause between connection attempts (default: 0.25)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="multiplicative backoff applied to the retry pause "
        "(default: 2.0; 1.0 = fixed interval)",
    )
    parser.add_argument(
        "--retry-max-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="ceiling for the backed-off retry pause (default: 5.0)",
    )
    parser.add_argument(
        "--redial",
        type=int,
        default=5,
        metavar="N",
        help="reconnection budget after a dropped coordinator "
        "connection (default: 5; 0 = die with the coordinator)",
    )
    parser.add_argument(
        "--protocol",
        type=int,
        default=PROTOCOL_VERSION,
        help=argparse.SUPPRESS,  # test hook: announce a fake version
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log task activity to stderr"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_worker(
        args.connect,
        attempts=args.retry,
        retry_interval=args.retry_interval,
        backoff=args.retry_backoff,
        max_interval=args.retry_max_interval,
        protocol=args.protocol,
        verbose=args.verbose,
        redials=args.redial,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
