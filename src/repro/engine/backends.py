"""Pluggable execution backends for experiment-grid and population dispatch.

Every parallel path in the engine — the experiment grids
(:class:`~repro.engine.grid.GridRunner`) and the population evaluator
(:class:`~repro.engine.population.PopulationEvaluator`) — reduces to the
same operation: evaluate ``fn(*cell)`` for shards of picklable cells and
return the per-shard result lists *in shard order*.  This module owns
that operation behind a small :class:`ExecutorBackend` protocol, so the
dispatch strategy is a plug-in:

* :class:`SerialBackend`  — the in-process reference implementation;
* :class:`ThreadBackend`  — a ``ThreadPoolExecutor`` over shards;
* :class:`ProcessBackend` — the persistent warm process pool
  (:func:`shared_process_pool`), with serial degradation inside pool
  workers and on a broken pool;
* :class:`RemoteBackend`  — a TCP coordinator
  (:class:`RemoteCoordinator`) that hands shards to worker daemons
  started with ``python -m repro.engine.worker --connect HOST:PORT``,
  on this machine or any other that shares the code (and, ideally, the
  on-disk objective/fitness caches).

New strategies (asyncio, SSH fan-out, a cluster scheduler) are one
class plus a :func:`register_backend` call — nothing in ``grid.py`` or
``population.py`` changes.

Determinism contract: for every backend, ``map_shards(fn, shards)``
returns exactly ``[[fn(*cell) for cell in shard] for shard in shards]``
— parallelism, worker death, and reassignment can change *where* and
*when* a shard runs, never what is returned or in which slot.  Cells
must be pure functions of their arguments (module-level callables,
picklable argument tuples).

Remote wire protocol (version :data:`PROTOCOL_VERSION`): length-prefixed
pickles over TCP (8-byte big-endian length, then the pickled dict).
The worker opens with ``{"type": "hello", "protocol": N}``; the
coordinator answers ``welcome`` or ``reject`` (version mismatch, bad
handshake) and then serves a pull loop: worker sends ``ready``,
coordinator answers ``task`` (shard id + function + cells) or
``shutdown``; worker answers ``result`` — acknowledged by the
coordinator with ``ack`` once the result is recorded, so a worker (or
coordinator) going down right after a result lands can never requeue
that shard spuriously — or ``error``.  A worker that dies holding a
task has the task requeued (at most :data:`MAX_REQUEUES` times); a
worker that connects mid-run simply starts pulling remaining tasks.
Pickle implies *trusted networks only* — the coordinator executes
nothing, but workers unpickle and run what the coordinator sends, so
treat the port like an SSH key, not a public API.

The coordinator is a *session*: it serves any number of concurrent
jobs — blocking :meth:`RemoteCoordinator.map_shards` calls and
asynchronous :meth:`RemoteCoordinator.submit_single` tasks (the
futures entry point used by :class:`repro.engine.taskgraph.
EngineSession`) — over one shared task queue.  Workers pull whatever
task is next regardless of which job enqueued it, so shards from
concurrent jobs are work-stolen by whichever worker frees up first;
failure stays job-scoped (a deterministic cell exception fails its own
job, never a co-tenant).  :meth:`RemoteCoordinator.close` drains
in-flight tasks before tearing the fleet down (ack-then-close): the
last shard of a session is recorded, acknowledged, and only then are
workers shut down.

Self-healing (fleet fault tolerance): the coordinator optionally
enforces a *per-task deadline* (``CoordinatorConfig.task_deadline_s``)
— a shard unacknowledged past the deadline is revoked from its
presumed-hung worker and requeued; the hung worker's eventual late
result is acknowledged but discarded, so the ack protocol keeps every
shard at-most-once even under revocation.  A per-worker *health
ledger* scores deaths and deadline timeouts and quarantines workers
past a threshold; a quarantined worker is re-admitted on probation
after a cooldown and must complete one canary task before real shards
resume (:meth:`RemoteCoordinator.fleet_health` snapshots the ledger).
With ``CoordinatorConfig.journal_path`` set the coordinator journals
every recorded result (atomically, keyed by a content digest of the
task) plus a monotonically increasing *epoch*: a coordinator restarted
after a crash replays journalled results instead of redoing them, and
the epoch — advertised in the ``welcome`` message — tells redialing
workers they have rebound to a new incarnation.
"""

from __future__ import annotations

import atexit
import dataclasses
import errno
import hashlib
import inspect
import logging
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.diskcache import atomic_write_bytes, quarantine_corrupt_file
from repro.errors import ExperimentError

_LOG = logging.getLogger("repro.engine.fleet")

Cell = Tuple[Any, ...]

#: Version of the coordinator/worker wire protocol.  Bump on any change
#: to the message shapes below; the coordinator rejects mismatched
#: workers at handshake instead of failing mid-run on a bad unpickle.
#: Version 2 added the result ``ack`` (the coordinator confirms every
#: recorded result before the worker asks for more work).
PROTOCOL_VERSION = 2

#: Deprecated alias: the default shard-requeue budget.  The live knob
#: is :attr:`CoordinatorConfig.max_requeues` (env ``REPRO_MAX_REQUEUES``);
#: this constant only survives as its default value.
MAX_REQUEUES = 3


def _env_float(name: str, default: float) -> float:
    """A positive float from the environment, or the default on junk."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {name}={raw!r}", RuntimeWarning, stacklevel=3
        )
        return default
    return value if value > 0 else default


def _env_optional_float(name: str) -> Optional[float]:
    """A positive float from the environment, or None when unset/junk."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {name}={raw!r}", RuntimeWarning, stacklevel=3
        )
        return None
    return value if value > 0 else None


def _env_int(name: str, default: int) -> int:
    """A non-negative int from the environment, or the default on junk."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-numeric {name}={raw!r}", RuntimeWarning, stacklevel=3
        )
        return default
    return value if value >= 0 else default


@dataclass(frozen=True)
class CoordinatorConfig:
    """Timing knobs for the remote coordinator and its worker fleet.

    These used to be hard-coded constants (the 0.2 s condition-variable
    poll, the 5 s worker-teardown wait); slow shared CI containers need
    them tunable — a stall-abort probe that fires on schedule for a
    laptop is a flake generator for an oversubscribed runner.

    Attributes:
        poll_interval: seconds between coordinator wake-ups (accept
            loop timeout, run-completion and task-queue condition
            polls).  Smaller = snappier scheduling, more idle wake-ups.
        shutdown_timeout: seconds :meth:`RemoteBackend.close` waits for
            a spawned worker daemon to exit before killing it.
        task_deadline_s: optional per-task deadline.  A task still
            unacknowledged this many seconds after assignment is
            revoked from its (presumed hung) worker and requeued
            against ``max_requeues``; a late result from the original
            worker is acknowledged but discarded, so a shard can never
            record twice.  ``None`` (the default) disables deadlines —
            only worker *death* requeues, exactly the pre-deadline
            behaviour.
        max_requeues: how many times one shard may be requeued after
            worker deaths or deadline revocations before the job fails
            with a recoverable error (default: the deprecated module
            constant :data:`MAX_REQUEUES` = 3).
        quarantine_threshold: a worker accumulating this many failures
            plus timeouts is quarantined — it gets no new assignments
            until ``quarantine_cooldown_s`` elapses, after which it is
            put on probation and must complete one canary task before
            real shards resume.  ``0`` disables the circuit breaker.
        quarantine_cooldown_s: seconds a quarantined worker sits out
            before its probation canary.
        journal_path: optional path of the coordinator's crash journal.
            Every recorded result is journalled (atomically, keyed by a
            content digest of the task) so a restarted coordinator
            replays finished work instead of redoing it; the journal
            also persists the coordinator epoch that workers rebind to
            in the handshake.  ``None`` disables journalling.

    Environment overrides (read by :meth:`from_env`):
    ``REPRO_COORDINATOR_POLL_S``, ``REPRO_COORDINATOR_SHUTDOWN_S``,
    ``REPRO_TASK_DEADLINE_S``, ``REPRO_MAX_REQUEUES``,
    ``REPRO_QUARANTINE_THRESHOLD``, ``REPRO_QUARANTINE_COOLDOWN_S``,
    and ``REPRO_COORDINATOR_JOURNAL``.  Timing and health knobs can
    change how long runs take and which worker executes a shard, never
    the results (cells are pure).
    """

    poll_interval: float = 0.2
    shutdown_timeout: float = 5.0
    task_deadline_s: Optional[float] = None
    max_requeues: int = MAX_REQUEUES
    quarantine_threshold: int = 3
    quarantine_cooldown_s: float = 30.0
    journal_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ExperimentError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.shutdown_timeout <= 0:
            raise ExperimentError(
                f"shutdown_timeout must be positive, got {self.shutdown_timeout}"
            )
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ExperimentError(
                f"task_deadline_s must be positive, got {self.task_deadline_s}"
            )
        if self.max_requeues < 0:
            raise ExperimentError(
                f"max_requeues must be >= 0, got {self.max_requeues}"
            )
        if self.quarantine_threshold < 0:
            raise ExperimentError(
                "quarantine_threshold must be >= 0, got "
                f"{self.quarantine_threshold}"
            )
        if self.quarantine_cooldown_s <= 0:
            raise ExperimentError(
                "quarantine_cooldown_s must be positive, got "
                f"{self.quarantine_cooldown_s}"
            )

    @classmethod
    def from_env(cls) -> "CoordinatorConfig":
        """Defaults overridden by the ``REPRO_*`` variables."""
        journal = os.environ.get("REPRO_COORDINATOR_JOURNAL", "").strip()
        return cls(
            poll_interval=_env_float("REPRO_COORDINATOR_POLL_S", 0.2),
            shutdown_timeout=_env_float("REPRO_COORDINATOR_SHUTDOWN_S", 5.0),
            task_deadline_s=_env_optional_float("REPRO_TASK_DEADLINE_S"),
            max_requeues=_env_int("REPRO_MAX_REQUEUES", MAX_REQUEUES),
            quarantine_threshold=_env_int("REPRO_QUARANTINE_THRESHOLD", 3),
            quarantine_cooldown_s=_env_float("REPRO_QUARANTINE_COOLDOWN_S", 30.0),
            journal_path=journal or None,
        )


class RemoteRunError(ExperimentError):
    """A remote ``map_shards`` run failed; carries what *did* finish.

    Attributes:
        completed: shard index -> per-cell results for every shard that
            completed before the failure (cells are pure, so these are
            exactly what any backend would have returned for them).
        recoverable: True for infrastructure failures (requeue budget
            exhausted, stall abort — the work itself is fine, the fleet
            is not) where :class:`FallbackBackend` may drain the
            remaining shards locally; False for deterministic
            cell exceptions, which would fail identically anywhere.
    """

    def __init__(
        self,
        message: str,
        completed: Optional[Dict[int, List[Any]]] = None,
        recoverable: bool = False,
    ):
        super().__init__(message)
        self.completed: Dict[int, List[Any]] = dict(completed or {})
        self.recoverable = recoverable


# --------------------------------------------------------------------------
# Shared warm process pool (moved here from repro.engine.grid, which
# re-exports these names for compatibility).
# --------------------------------------------------------------------------

#: Pools kept alive across runs, keyed by configured worker count.
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}
#: Context fingerprint each pool's workers were forked under.
_POOL_CONTEXTS: Dict[int, Tuple[Tuple[str, Any], ...]] = {}
_POOL_LOCK = threading.Lock()
#: Pid that owns the registry — forked children inherit the dict but
#: not the executors' manager threads, so they must never reuse it.
_POOL_OWNER_PID: Optional[int] = None
#: Set (via the pool initializer) in every worker process.
_IN_POOL_WORKER = False

#: Named providers consulted at warm-pool checkout; see
#: :func:`register_pool_context_provider`.
_POOL_CONTEXT_PROVIDERS: Dict[str, Callable[[], Any]] = {}


def register_pool_context_provider(
    name: str, provider: Callable[[], Any]
) -> None:
    """Register a fingerprint source for the warm-pool context.

    The persistent pool forks its workers once; heavyweight parent
    state built *after* that fork (e.g. a step-1 multiplier library for
    different settings) is invisible to them, so every worker would
    rebuild it per task — results unchanged, time wasted (the PERF.md
    stale-pool caveat).  A provider returns a small hashable token
    describing such fork-inherited state; :func:`shared_process_pool`
    compares the combined token tuple at checkout and refork-replaces a
    pool whose workers were forked under a different context.
    Registration is idempotent per name (latest provider wins).
    """
    _POOL_CONTEXT_PROVIDERS[name] = provider


def current_pool_context() -> Tuple[Tuple[str, Any], ...]:
    """The combined fork-context fingerprint, stable provider order."""
    return tuple(
        (name, _POOL_CONTEXT_PROVIDERS[name]())
        for name in sorted(_POOL_CONTEXT_PROVIDERS)
    )


def _mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """True inside a shared-pool worker process.

    Work dispatched from a worker must not open nested process pools
    (executor teardown across fork levels deadlocks at interpreter
    exit, and N x M workers oversubscribe the machine) — callers
    degrade to in-process execution instead, which returns identical
    results because cells and fitness are pure functions.
    """
    return _IN_POOL_WORKER


def shared_process_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process pool for a worker count (created once).

    Create it *after* heavyweight shared state (the step-1 library, the
    shared predictor) exists in the parent: workers fork with those
    memos warm and never rebuild them.  Thread-safe — concurrent
    callers (e.g. thread-mode grid cells whose GAs fan out to
    processes) share one pool instead of leaking duplicates.

    A forked child (a grid worker whose cell itself requests process
    fan-out) inherits the registry dict but not the executors' manager
    threads; using an inherited executor deadlocks.  The registry is
    therefore pid-stamped: the first call in a new process drops every
    inherited entry and builds its own pool.

    Checkout also compares the pool's fork-context fingerprint
    (:func:`current_pool_context`) against the current one: a pool
    whose workers were forked before a library-settings change would
    silently rebuild the new library in every worker, so it is shut
    down and reforked instead — the same cure as calling
    :func:`shutdown_shared_pools` between harnesses, applied
    automatically.
    """
    global _POOL_OWNER_PID
    stale: Optional[ProcessPoolExecutor] = None
    with _POOL_LOCK:
        # computed under the lock so two racing checkouts agree on one
        # context and cannot thrash refork; providers are plain state
        # reads and never call back into the pool registry
        context = current_pool_context()
        pid = os.getpid()
        if _POOL_OWNER_PID != pid:
            # references only — the executors belong to the parent
            _PROCESS_POOLS.clear()
            _POOL_CONTEXTS.clear()
            _POOL_OWNER_PID = pid
        pool = _PROCESS_POOLS.get(workers)
        if pool is not None and _POOL_CONTEXTS.get(workers) != context:
            stale = _PROCESS_POOLS.pop(workers)
            _POOL_CONTEXTS.pop(workers, None)
            pool = None
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_mark_pool_worker
            )
            _PROCESS_POOLS[workers] = pool
            _POOL_CONTEXTS[workers] = context
    if stale is not None:
        # no cancel_futures: a concurrent thread may still be draining
        # work on the stale pool (its results stay correct — cells are
        # pure); the executor winds down once that work finishes
        stale.shutdown(wait=False)
    return pool


def discard_process_pool(workers: int) -> None:
    """Drop (and shut down) one persistent pool, e.g. after a break."""
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.pop(workers, None)
        _POOL_CONTEXTS.pop(workers, None)
        owned = _POOL_OWNER_PID == os.getpid()
    if pool is not None and owned:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every persistent pool (test teardown / interpreter exit)."""
    with _POOL_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
        _POOL_CONTEXTS.clear()
        owned = _POOL_OWNER_PID == os.getpid()
    for pool in pools:
        if owned:  # inherited executors belong to the parent process
            pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)


def run_shard(fn: Callable[..., Any], cells: Sequence[Cell]) -> List[Any]:
    """Evaluate one shard serially (also the serial reference path)."""
    return [fn(*cell) for cell in cells]


# --------------------------------------------------------------------------
# The backend protocol and the in-process strategies.
# --------------------------------------------------------------------------


class ExecutorBackend:
    """Strategy interface: evaluate shards, results in shard order.

    ``map_shards(fn, shards)`` must equal
    ``[[fn(*cell) for cell in shard] for shard in shards]`` for every
    implementation — that identity is what the engine's bit-identity
    guarantees rest on, and what ``tests/engine/test_backends.py``
    asserts per backend.
    """

    #: Registry key; also the user-facing ``--grid-mode`` value.
    name = "abstract"

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        raise NotImplementedError


class SerialBackend(ExecutorBackend):
    """In-process, in-order evaluation — the reference implementation."""

    name = "serial"

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        return [run_shard(fn, shard) for shard in shards]


class ThreadBackend(ExecutorBackend):
    """One ``ThreadPoolExecutor`` per call, shards as tasks."""

    name = "thread"

    def __init__(self, workers: int):
        self.workers = max(1, workers)

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        if not shards:
            return []
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(shards))
        ) as pool:
            return list(pool.map(run_shard, [fn] * len(shards), shards))


class ProcessBackend(ExecutorBackend):
    """The persistent warm process pool from :func:`shared_process_pool`.

    Keyed by the *configured* worker count so every run shares one
    canonical pool.  Degrades to the serial reference inside a pool
    worker (no nested pools) and when the pool breaks — results are a
    pure function of the cells, so the answer is the same, only slower.
    """

    name = "process"

    def __init__(self, workers: int):
        self.workers = max(1, workers)

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        if not shards:
            return []
        if in_pool_worker():
            return [run_shard(fn, shard) for shard in shards]
        pool = shared_process_pool(self.workers)
        try:
            return list(pool.map(run_shard, [fn] * len(shards), shards))
        except BrokenProcessPool:
            discard_process_pool(self.workers)
            return [run_shard(fn, shard) for shard in shards]


# --------------------------------------------------------------------------
# Remote backend: message framing, coordinator, worker spawning.
# --------------------------------------------------------------------------


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (the only accepted form) into its parts."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ExperimentError(
            f"coordinator address must be HOST:PORT, got {address!r}"
        )
    return host, int(port)


def send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Frame and send one protocol message (8-byte length + pickle)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack(">Q", len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one framed message; ``None`` on a cleanly closed peer."""
    header = _recv_exact(sock, 8)
    if header is None:
        return None
    (length,) = struct.unpack(">Q", header)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def spawn_local_worker(
    address: str, extra_path: Sequence[str] = ()
) -> "subprocess.Popen[bytes]":
    """Start a worker daemon on *this* machine, attached to ``address``.

    The child runs ``python -m repro.engine.worker --connect address``
    with a ``PYTHONPATH`` that guarantees the ``repro`` package (and any
    ``extra_path`` entries — e.g. a test-helper directory whose cell
    functions the coordinator will pickle by reference) resolve to the
    same code the coordinator is running.
    """
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    paths = [src_root, *extra_path]
    if env.get("PYTHONPATH"):
        paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(paths)
    command = [
        sys.executable,
        "-m",
        "repro.engine.worker",
        "--connect",
        address,
    ]
    return subprocess.Popen(command, env=env)


#: Sentinel job id for synthetic canary tasks (worker probation probes)
#: — they belong to no client job and are never requeued.
_CANARY_JOB = -1


def canary_probe(value: int) -> int:
    """The probation canary cell: trivial, deterministic, checkable.

    A worker re-admitted from quarantine must return the expected
    value for one canary shard before it is handed real work again.
    """
    return value * 2 + 1


class _RemoteTask:
    """One queued/assigned shard: its job, payload, and requeue count.

    ``holder`` is the serving connection's identity token while the
    task is assigned (None while queued); ``assigned_at`` is the
    monotonic assignment time the deadline sweep checks; ``worker_id``
    is the holder's health-ledger key; ``key`` is the journal digest
    (None when journalling is off or for canaries).
    """

    __slots__ = (
        "wire_id", "job_id", "index", "fn", "cells", "requeues",
        "holder", "assigned_at", "worker_id", "key",
    )

    def __init__(
        self,
        wire_id: int,
        job_id: int,
        index: int,
        fn: Callable[..., Any],
        cells: List[Cell],
        key: Optional[str] = None,
    ):
        self.wire_id = wire_id
        self.job_id = job_id
        self.index = index
        self.fn = fn
        self.cells = cells
        self.requeues = 0
        self.holder: Optional[object] = None
        self.assigned_at: Optional[float] = None
        self.worker_id: Optional[str] = None
        self.key = key


class _WorkerHealth:
    """Health-ledger entry for one worker identity (usually a pid).

    ``state`` is one of ``active`` (normal service), ``quarantined``
    (no assignments until the cooldown passes) and ``probation``
    (exactly one canary task in flight).  Failures are deaths while
    holding a task; timeouts are deadline revocations.
    """

    __slots__ = (
        "worker_id", "state", "failures", "timeouts", "completed",
        "canaries_passed", "quarantines", "quarantined_at",
    )

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.state = "active"
        self.failures = 0
        self.timeouts = 0
        self.completed = 0
        self.canaries_passed = 0
        self.quarantines = 0
        self.quarantined_at = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "completed": self.completed,
            "canaries_passed": self.canaries_passed,
            "quarantines": self.quarantines,
        }


class _RemoteJob:
    """One client-visible submission (a blocking map or one future)."""

    __slots__ = (
        "job_id", "size", "results", "failure", "on_task_done", "liveness",
    )

    def __init__(
        self,
        job_id: int,
        size: int,
        on_task_done: Optional[Callable[..., None]] = None,
        liveness: Optional[Callable[[], bool]] = None,
    ):
        self.job_id = job_id
        self.size = size
        self.results: Dict[int, List[Any]] = {}
        self.failure: Optional[RemoteRunError] = None
        self.on_task_done = on_task_done
        self.liveness = liveness


#: Open in-process coordinators.  ``coordkill`` faults consult this so
#: one inherited ``REPRO_FAULTS`` value only kills coordinator hosts.
_LIVE_COORDINATORS: "weakref.WeakSet[RemoteCoordinator]" = weakref.WeakSet()

#: On-disk journal format version (see ``CoordinatorConfig.journal_path``).
_JOURNAL_VERSION = 1


def live_coordinator_count() -> int:
    """How many open coordinators this process currently hosts."""
    return sum(1 for coord in _LIVE_COORDINATORS if not coord._closed)


class RemoteCoordinator:
    """TCP work session: a shared task queue served to a worker fleet.

    Args:
        bind: ``HOST:PORT`` to listen on; port ``0`` picks an ephemeral
            port (read the resolved one back from :attr:`address`).
        config: timing knobs (defaults to
            :meth:`CoordinatorConfig.from_env`).

    The coordinator accepts workers for its whole lifetime and serves
    any number of *concurrent* jobs: blocking :meth:`map_shards` calls
    and asynchronous :meth:`submit_single` tasks all feed one shared
    FIFO queue, and every connected worker pulls whatever task is next
    regardless of which job enqueued it — shards from concurrent jobs
    are work-stolen by whichever worker frees up first.  Daemons may
    attach before any job starts or join mid-run and immediately pull
    remaining tasks, and between jobs they idle on the connection
    (workers are only shut down by :meth:`close`).  Per-connection
    handler threads serve the pull loop; all session state is guarded
    by one condition variable.

    Fault tolerance: a connection that drops while holding a shard has
    that shard requeued (bounded by ``config.max_requeues``); because
    cells are pure functions, re-execution elsewhere returns the
    identical result.  With ``config.task_deadline_s`` set, a shard a
    worker *holds* past the deadline is likewise revoked and requeued
    — the hung worker's eventual late result is acknowledged but
    discarded, so no shard records twice.  A worker-side *exception*
    (as opposed to worker death) is deterministic and therefore fatal
    to the task's own job — exactly like the serial reference — while
    co-tenant jobs keep running.  Every recorded result is acknowledged
    to the worker before it asks for more work, and :meth:`close`
    drains assigned tasks before shutting the fleet down, so the last
    shard of a session can neither be dropped nor requeued spuriously.
    Chronic offenders are quarantined via the per-worker health ledger
    (see :meth:`fleet_health`), and with ``config.journal_path`` set a
    restarted coordinator replays journalled results and announces a
    bumped epoch to redialing workers.
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        config: Optional[CoordinatorConfig] = None,
    ):
        self.config = config or CoordinatorConfig.from_env()
        host, port = parse_address(bind)
        self._server = socket.create_server((host, port))
        self._server.settimeout(self.config.poll_interval)
        self.host = host
        self.port = self._server.getsockname()[1]
        self._state = threading.Condition()
        self._jobs: Dict[int, _RemoteJob] = {}
        self._tasks: Dict[int, _RemoteTask] = {}
        self._queue: "deque[int]" = deque()  # wire ids, FIFO across jobs
        self._next_job_id = 0
        self._next_wire_id = 0
        self._assigned = 0  # tasks currently held by workers
        self._active_workers = 0
        self._closing = False  # stop assigning; drain in-flight tasks
        self._closed = False
        # kernel-availability maps already warned about, so a fleet of
        # identical numpy-only workers produces one heads-up, not one
        # per connection
        self._warned_kernel_maps: set = set()
        #: health ledger, keyed by worker identity (pid when advertised)
        self._health: Dict[str, _WorkerHealth] = {}
        #: connection tokens whose assignment the deadline sweep revoked
        #: — their next slot event (late result, error, or death) is
        #: discarded instead of double-accounted
        self._revoked_tokens: set = set()
        #: open worker connections, so :meth:`kill` can sever them
        self._conns: set = set()
        #: journalled results keyed by task digest; replayed on submit
        self._journal_results: Dict[str, List[Any]] = {}
        self.epoch = 0
        if self.config.journal_path:
            self._journal_load()
            self._journal_write_locked()  # persist the epoch bump
        _LIVE_COORDINATORS.add(self)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        """The ``HOST:PORT`` workers should ``--connect`` to."""
        return f"{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the session and release the port (idempotent).

        With ``drain`` (the default) the coordinator first stops
        assigning new tasks, then waits up to
        ``config.shutdown_timeout`` for tasks already held by workers
        to return — their results are recorded and acknowledged, so the
        last in-flight shard of a session is never lost to the
        teardown race (ack-then-close).  Jobs still unfinished after
        the drain fail with a *recoverable* :class:`RemoteRunError`
        carrying everything that did complete.
        """
        callbacks: List[Tuple[Callable[..., None], int, None, RemoteRunError]]
        with self._state:
            if self._closed:
                return
            self._closing = True
            self._state.notify_all()
            if drain:
                deadline = time.monotonic() + self.config.shutdown_timeout
                while self._assigned > 0 and time.monotonic() < deadline:
                    self._state.wait(timeout=self.config.poll_interval)
            self._closed = True
            callbacks = []
            for job in self._jobs.values():
                if job.failure is None and len(job.results) < job.size:
                    job.failure = RemoteRunError(
                        "coordinator closed with the job unfinished",
                        recoverable=True,
                    )
                    if job.on_task_done is not None:
                        callbacks.append(
                            (job.on_task_done, -1, None, job.failure)
                        )
            self._state.notify_all()
        for on_task_done, index, result, failure in callbacks:
            on_task_done(index, result, failure)
        try:
            self._server.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteCoordinator":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def kill(self) -> None:
        """Drain-free teardown simulating a coordinator crash (tests).

        Closes the server socket and every worker connection abruptly —
        no shutdown messages, no drain — so workers observe exactly
        what a SIGKILLed coordinator process looks like and enter their
        redial loop.  In-process clients blocked in :meth:`wait_job`
        fail with a *recoverable* error; a :class:`RemoteBackend` will
        stand up a fresh coordinator (same journal, bumped epoch) on
        its next call.
        """
        callbacks: List[Tuple[Callable[..., None], RemoteRunError]] = []
        with self._state:
            if self._closed:
                return
            self._closed = True
            for job in self._jobs.values():
                if job.failure is None and len(job.results) < job.size:
                    job.failure = RemoteRunError(
                        "coordinator killed with the job unfinished",
                        recoverable=True,
                    )
                    if job.on_task_done is not None:
                        callbacks.append((job.on_task_done, job.failure))
            conns = list(self._conns)
            self._state.notify_all()
        for on_task_done, failure in callbacks:
            on_task_done(-1, None, failure)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._server.close()
        except OSError:
            pass

    def alive(self) -> bool:
        """True while the coordinator can still accept workers."""
        return not self._closed and self._accept_thread.is_alive()

    # -- crash journal --------------------------------------------------

    @staticmethod
    def _task_key(fn: Callable[..., Any], cells: Sequence[Cell]) -> str:
        """Content digest of one task (pure cells ⇒ stable across runs)."""
        payload = pickle.dumps(
            (getattr(fn, "__module__", None), getattr(fn, "__qualname__", None),
             list(cells)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return hashlib.sha256(payload).hexdigest()

    def _journal_load(self) -> None:
        """Read a prior incarnation's journal; bump the epoch past it."""
        path = self.config.journal_path
        assert path is not None
        try:
            with open(path, "rb") as handle:
                data = pickle.loads(handle.read())
            if (
                not isinstance(data, dict)
                or data.get("version") != _JOURNAL_VERSION
            ):
                raise ValueError(f"unsupported journal payload in {path}")
            self._journal_results = dict(data.get("results", {}))
            self.epoch = int(data.get("epoch", -1)) + 1
            _LOG.info(
                "coordinator recovered journal %s: epoch %d, %d result(s) "
                "replayable", path, self.epoch, len(self._journal_results),
            )
        except FileNotFoundError:
            pass
        except (OSError, ValueError, pickle.PickleError, EOFError) as exc:
            quarantine_corrupt_file(path, f"unreadable coordinator journal: {exc}")
            self._journal_results = {}

    def _journal_write_locked(self) -> None:
        """Durably rewrite the journal (caller holds ``_state`` or init)."""
        path = self.config.journal_path
        if not path:
            return
        payload = pickle.dumps(
            {
                "version": _JOURNAL_VERSION,
                "epoch": self.epoch,
                "results": self._journal_results,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        atomic_write_bytes(path, payload)

    # -- fleet health ----------------------------------------------------

    def fleet_health(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot of the per-worker health ledger.

        Keys are worker identities (``pid:N`` for workers advertising a
        pid, ``conn:N`` otherwise); values carry ``state`` (``active`` /
        ``quarantined`` / ``probation``) and the failure / timeout /
        completed / canary counters.  Purely observational — reading it
        never changes scheduling.
        """
        with self._state:
            return {
                worker_id: health.snapshot()
                for worker_id, health in self._health.items()
            }

    def _health_for_locked(self, worker_id: str) -> _WorkerHealth:
        health = self._health.get(worker_id)
        if health is None:
            health = _WorkerHealth(worker_id)
            self._health[worker_id] = health
        return health

    def _note_offense_locked(self, worker_id: Optional[str], kind: str) -> None:
        """Score a death (``failures``) or revocation (``timeouts``)."""
        if worker_id is None:
            return
        health = self._health_for_locked(worker_id)
        if kind == "failure":
            health.failures += 1
        else:
            health.timeouts += 1
        threshold = self.config.quarantine_threshold
        if (
            threshold > 0
            and health.state == "active"
            and health.failures + health.timeouts >= threshold
        ):
            self._quarantine_locked(health, reason=kind)

    def _quarantine_locked(self, health: _WorkerHealth, reason: str) -> None:
        health.state = "quarantined"
        health.quarantines += 1
        health.quarantined_at = time.monotonic()
        _LOG.warning(
            "worker %s quarantined after %d failure(s) + %d timeout(s) "
            "(last offense: %s); cooldown %.1fs",
            health.worker_id, health.failures, health.timeouts, reason,
            self.config.quarantine_cooldown_s,
        )

    # -- job submission -------------------------------------------------

    def submit_job(
        self,
        fn: Callable[..., Any],
        shards: Sequence[Sequence[Cell]],
        on_task_done: Optional[Callable[..., None]] = None,
        liveness: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Enqueue one job's shards on the shared queue; returns job id.

        ``on_task_done(index, result, failure)`` — when given — fires
        once per completed shard (``failure is None``) and once more,
        with ``index == -1``, if the job fails (requeue budget, close,
        or a deterministic cell exception); it is always invoked
        outside the coordinator lock.  ``liveness`` is the stall probe
        for callback-driven jobs (no ``wait_job`` caller to run one):
        the accept loop aborts the job when no worker is connected and
        the probe says none can ever return.
        """
        shards = [list(shard) for shard in shards]
        journaling = bool(self.config.journal_path)
        callbacks: List[Tuple[Callable[..., None], int, List[Any]]] = []
        with self._state:
            if self._closed or self._closing:
                raise ExperimentError("coordinator is closed")
            job_id = self._next_job_id
            self._next_job_id += 1
            job = _RemoteJob(job_id, len(shards), on_task_done, liveness)
            self._jobs[job_id] = job
            for index, shard in enumerate(shards):
                key = self._task_key(fn, shard) if journaling else None
                if key is not None and key in self._journal_results:
                    # a prior incarnation already ran this exact task —
                    # replay its journalled result instead of redoing it
                    result = list(self._journal_results[key])
                    job.results[index] = result
                    if job.on_task_done is not None:
                        callbacks.append((job.on_task_done, index, result))
                    continue
                wire_id = self._next_wire_id
                self._next_wire_id += 1
                self._tasks[wire_id] = _RemoteTask(
                    wire_id, job_id, index, fn, shard, key=key
                )
                self._queue.append(wire_id)
            if (
                len(job.results) == job.size
                and job.on_task_done is not None
            ):
                # fully replayed callback-driven job: reap immediately
                del self._jobs[job_id]
            self._state.notify_all()
        for replay_callback, index, result in callbacks:
            replay_callback(index, result, None)
        return job_id

    def submit_single(
        self,
        fn: Callable[..., Any],
        cells: Sequence[Cell],
        on_done: Callable[
            [Optional[List[Any]], Optional[RemoteRunError]], None
        ],
        liveness: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Enqueue one shard as its own job (the futures entry point).

        ``on_done(result, failure)`` fires exactly once — with the
        per-cell result list on success, or a :class:`RemoteRunError`
        on failure — outside the coordinator lock.  Single-shard jobs
        share the session queue with every other job, so concurrent
        clients' shards interleave onto whichever workers free up
        first.
        """
        fired = []  # on_task_done can see completion AND job failure

        def on_task_done(
            _index: int,
            result: Optional[List[Any]],
            failure: Optional[RemoteRunError],
        ) -> None:
            if fired:
                return
            fired.append(True)
            on_done(result, failure)

        return self.submit_job(
            fn,
            [list(cells)],
            on_task_done=on_task_done,
            liveness=liveness,
        )

    def map_shards(
        self,
        fn: Callable[..., Any],
        shards: Sequence[Sequence[Cell]],
        liveness: Optional[Callable[[], bool]] = None,
    ) -> List[List[Any]]:
        """Dispatch shards to connected workers; block until complete.

        Args:
            fn: module-level cell function (pickled by reference).
            shards: picklable cell tuples, grouped into tasks.
            liveness: optional probe for backend-managed workers; when
                no worker is connected and the probe says none can ever
                return, the job aborts instead of waiting forever.

        Several ``map_shards`` calls may be in flight at once (from
        different threads); their shards share the session queue and
        the worker fleet, and each call fails or completes on its own.
        """
        shards = [list(shard) for shard in shards]
        if not shards:
            return []
        job_id = self.submit_job(fn, shards)
        return self.wait_job(job_id, liveness=liveness)

    def _drop_job_tasks_locked(self, job_id: int) -> None:
        """Forget a finished/failed job's unassigned tasks (lock held)."""
        for wire_id in [
            wire_id
            for wire_id, task in self._tasks.items()
            if task.job_id == job_id
        ]:
            del self._tasks[wire_id]

    def wait_job(
        self, job_id: int, liveness: Optional[Callable[[], bool]] = None
    ) -> List[List[Any]]:
        """Block until a submitted job completes; per-shard results in order."""
        with self._state:
            job = self._jobs[job_id]
            while True:
                if job.failure is not None:
                    self._jobs.pop(job_id, None)
                    self._drop_job_tasks_locked(job_id)
                    failure = job.failure
                    # attach what did finish so FallbackBackend (or a
                    # caller) can drain only the missing shards
                    failure.completed = {
                        index: list(result)
                        for index, result in job.results.items()
                    }
                    raise failure
                if len(job.results) == job.size:
                    self._jobs.pop(job_id, None)
                    return [job.results[index] for index in range(job.size)]
                if (
                    liveness is not None
                    and self._active_workers == 0
                    and not liveness()
                ):
                    self._jobs.pop(job_id, None)
                    self._drop_job_tasks_locked(job_id)
                    raise RemoteRunError(
                        "remote run stalled: every worker exited with "
                        f"{job.size - len(job.results)} "
                        "shard(s) unfinished",
                        completed={
                            index: list(result)
                            for index, result in job.results.items()
                        },
                        recoverable=True,
                    )
                self._state.wait(timeout=self.config.poll_interval)

    # -- worker service -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._state:
                if self._closed:
                    return
            self._sweep_stalled_jobs()
            self._sweep_deadlines()
            try:
                conn, _peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            ).start()

    def _sweep_stalled_jobs(self) -> None:
        """Abort callback-driven jobs whose fleet can never return.

        Blocking ``wait_job`` callers run their own liveness probe;
        futures resolved by ``on_task_done`` have no waiter, so the
        accept loop (which already ticks every ``poll_interval``)
        sweeps jobs carrying a probe and fails them — recoverable, like
        the blocking stall abort — once no worker is connected and the
        probe reports none can come back.
        """
        callbacks: List[Tuple[Callable[..., None], RemoteRunError]] = []
        with self._state:
            if self._active_workers > 0:
                return
            for job in list(self._jobs.values()):
                if (
                    job.liveness is None
                    or job.on_task_done is None
                    or job.failure is not None
                    or job.liveness()
                ):
                    continue
                job.failure = RemoteRunError(
                    "remote run stalled: every worker exited with "
                    f"{job.size - len(job.results)} shard(s) unfinished",
                    recoverable=True,
                )
                callbacks.append((job.on_task_done, job.failure))
                del self._jobs[job.job_id]
                self._drop_job_tasks_locked(job.job_id)
            if callbacks:
                self._state.notify_all()
        for on_task_done, failure in callbacks:
            on_task_done(-1, None, failure)

    def _handshake(self, conn: socket.socket) -> Optional[str]:
        """Run the hello/welcome exchange; returns the worker identity.

        ``None`` means the connection was rejected.  The ``welcome``
        carries the coordinator epoch so a redialing worker can tell a
        reconnect (same epoch) from a rebind to a restarted
        incarnation (higher epoch).
        """
        hello = recv_msg(conn)
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            send_msg(conn, {"type": "reject", "reason": "bad handshake"})
            return None
        if hello.get("protocol") != PROTOCOL_VERSION:
            send_msg(
                conn,
                {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('protocol')!r} does "
                        f"not match coordinator version {PROTOCOL_VERSION}"
                    ),
                },
            )
            return None
        self._check_worker_kernels(hello)
        send_msg(
            conn,
            {
                "type": "welcome",
                "protocol": PROTOCOL_VERSION,
                "epoch": self.epoch,
            },
        )
        pid = hello.get("pid")
        if pid is not None:
            return f"pid:{pid}"
        return f"conn:{id(conn)}"

    def _check_worker_kernels(self, hello: Dict[str, Any]) -> None:
        """Warn (never reject) when a worker lacks a local kernel tier.

        Results are bit-identical across tiers, so a mixed fleet is a
        performance footgun, not a correctness problem: a numpy-only
        worker simply becomes the slow straggler.  Pre-kernel workers
        that send no ``kernels`` field are accepted silently —
        PROTOCOL_VERSION is unchanged.
        """
        advertised = hello.get("kernels")
        if not isinstance(advertised, dict):
            return
        from repro.engine.kernels import kernel_availability

        local = kernel_availability()
        missing = sorted(
            name
            for name, available in local.items()
            if available and not advertised.get(name, False)
        )
        if not missing:
            return
        key = tuple(sorted((k, bool(v)) for k, v in advertised.items()))
        with self._state:
            if key in self._warned_kernel_maps:
                return
            self._warned_kernel_maps.add(key)
        warnings.warn(
            f"remote worker pid={hello.get('pid')} lacks kernel tier(s) "
            f"{', '.join(missing)} available on the coordinator; the "
            "fleet stays bit-identical but that worker falls back to "
            "slower tiers",
            RuntimeWarning,
            stacklevel=2,
        )

    def _next_task(
        self, worker_id: str, token: object
    ) -> Optional[_RemoteTask]:
        """Block until a task is assignable; ``None`` means shut down.

        Between jobs (and while a failed job unwinds) workers idle here
        rather than being shut down, so a persistent backend reuses the
        connected fleet across consecutive jobs.  The queue is shared
        session-wide: entries whose job has since finished or failed
        are skipped lazily, everything else is handed out FIFO
        regardless of which job enqueued it (work-stealing).

        Health gating happens here: a quarantined worker idles without
        assignments until its cooldown passes, then receives exactly
        one synthetic canary task (probation); only a correct canary
        result re-admits it to the real queue.
        """
        with self._state:
            while True:
                if self._closed or self._closing:
                    return None
                health = self._health.get(worker_id)
                if (
                    health is not None
                    and health.state != "active"
                    and self.config.quarantine_threshold > 0
                ):
                    if health.state == "quarantined" and (
                        time.monotonic() - health.quarantined_at
                        >= self.config.quarantine_cooldown_s
                    ):
                        health.state = "probation"
                        _LOG.warning(
                            "worker %s re-admitted on probation; issuing "
                            "canary task", worker_id,
                        )
                        wire_id = self._next_wire_id
                        self._next_wire_id += 1
                        canary = _RemoteTask(
                            wire_id, _CANARY_JOB, 0, canary_probe,
                            [(wire_id,)],
                        )
                        self._tasks[wire_id] = canary
                        self._assign_locked(canary, worker_id, token)
                        return canary
                    # quarantined (cooling down) or probation (canary
                    # already in flight): no real work yet
                    self._state.wait(timeout=self.config.poll_interval)
                    continue
                while self._queue:
                    wire_id = self._queue.popleft()
                    task = self._tasks.get(wire_id)
                    if task is None:
                        continue  # job finished/failed; stale entry
                    job = self._jobs.get(task.job_id)
                    if job is None or job.failure is not None:
                        del self._tasks[wire_id]
                        continue
                    self._assign_locked(task, worker_id, token)
                    return task
                self._state.wait(timeout=self.config.poll_interval)

    def _assign_locked(
        self, task: _RemoteTask, worker_id: str, token: object
    ) -> None:
        task.holder = token
        task.worker_id = worker_id
        task.assigned_at = time.monotonic()
        self._assigned += 1

    def _record_result(
        self, wire_id: int, result: List[Any], token: object
    ) -> Optional[Tuple[Callable[..., None], int, List[Any]]]:
        """Record one task's result; returns the done-callback to fire.

        A result from a connection whose assignment the deadline sweep
        revoked is *discarded* (the sweep already re-accounted the
        assignment slot and requeued the shard — recording here would
        double-record); the worker still gets its ack so the protocol
        stays in step.
        """
        with self._state:
            if token in self._revoked_tokens:
                self._revoked_tokens.discard(token)
                _LOG.warning(
                    "discarding late result for task %d from a "
                    "deadline-revoked assignment", wire_id,
                )
                self._state.notify_all()
                return None
            self._assigned -= 1
            task = self._tasks.pop(wire_id, None)
            callback = None
            if task is not None:
                if task.worker_id is not None:
                    self._health_for_locked(task.worker_id).completed += 1
                if task.job_id == _CANARY_JOB:
                    self._finish_canary_locked(task, result)
                    self._state.notify_all()
                    return None
                job = self._jobs.get(task.job_id)
                if job is not None and job.failure is None:
                    job.results[task.index] = result
                    if task.key is not None:
                        self._journal_results[task.key] = list(result)
                        self._journal_write_locked()
                    if job.on_task_done is not None:
                        callback = (job.on_task_done, task.index, result)
                        if len(job.results) == job.size:
                            # callback-driven jobs have no wait_job
                            # caller to reap them — reap on completion
                            del self._jobs[job.job_id]
            self._state.notify_all()
        return callback

    def _finish_canary_locked(
        self, task: _RemoteTask, result: List[Any]
    ) -> None:
        """Grade a probation canary: correct ⇒ active, wrong ⇒ back out."""
        worker_id = task.worker_id
        if worker_id is None:
            return
        health = self._health_for_locked(worker_id)
        expected = [canary_probe(*cell) for cell in task.cells]
        if result == expected:
            health.state = "active"
            health.failures = 0
            health.timeouts = 0
            health.canaries_passed += 1
            _LOG.warning(
                "worker %s passed its canary; resuming real assignments",
                worker_id,
            )
        else:
            self._quarantine_locked(health, reason="wrong canary result")

    def _record_error(
        self, wire_id: int, error: str, token: object
    ) -> Optional[Tuple[Callable[..., None], RemoteRunError]]:
        """Fail one task's job; returns the failure callback to fire."""
        with self._state:
            if token in self._revoked_tokens:
                # the shard was revoked and requeued; it will either
                # succeed elsewhere or fail there identically
                self._revoked_tokens.discard(token)
                self._state.notify_all()
                return None
            self._assigned -= 1
            task = self._tasks.pop(wire_id, None)
            callback = None
            if task is not None:
                if task.job_id == _CANARY_JOB:
                    if task.worker_id is not None:
                        self._quarantine_locked(
                            self._health_for_locked(task.worker_id),
                            reason="canary error",
                        )
                    self._state.notify_all()
                    return None
                job = self._jobs.get(task.job_id)
                if job is not None and job.failure is None:
                    # a worker-side exception is deterministic — the
                    # cell would fail anywhere, so draining elsewhere
                    # cannot help; co-tenant jobs are unaffected
                    job.failure = RemoteRunError(
                        f"remote worker failed on shard "
                        f"{task.index}: {error}",
                        recoverable=False,
                    )
                    if job.on_task_done is not None:
                        callback = (job.on_task_done, job.failure)
                        del self._jobs[job.job_id]
            self._state.notify_all()
        return callback

    def _sweep_deadlines(self) -> None:
        """Revoke and requeue tasks held past ``config.task_deadline_s``.

        Runs from the accept loop every poll tick.  Revocation marks
        the holding connection's token so the worker's *next* slot
        event (late result, late error, or death) is discarded instead
        of double-accounted, scores a timeout against the worker's
        health ledger, and requeues the shard against the job's requeue
        budget — a hung worker therefore only ever consumes its *own*
        task's budget, never another job's.
        """
        deadline = self.config.task_deadline_s
        if deadline is None:
            return
        now = time.monotonic()
        callbacks: List[Tuple[Callable[..., None], RemoteRunError]] = []
        with self._state:
            for task in list(self._tasks.values()):
                if task.holder is None or task.assigned_at is None:
                    continue
                if now - task.assigned_at < deadline:
                    continue
                worker_id = task.worker_id
                self._revoked_tokens.add(task.holder)
                task.holder = None
                task.assigned_at = None
                task.worker_id = None
                self._assigned -= 1
                self._note_offense_locked(worker_id, "timeout")
                if task.job_id == _CANARY_JOB:
                    # a hung canary sends its worker straight back out
                    del self._tasks[task.wire_id]
                    if worker_id is not None:
                        self._quarantine_locked(
                            self._health_for_locked(worker_id),
                            reason="canary timeout",
                        )
                    continue
                job = self._jobs.get(task.job_id)
                if job is None or job.failure is not None:
                    del self._tasks[task.wire_id]
                    continue
                task.requeues += 1
                _LOG.warning(
                    "task %d (shard %d of job %d) exceeded its %.1fs "
                    "deadline on worker %s; requeue %d/%d",
                    task.wire_id, task.index, task.job_id, deadline,
                    worker_id, task.requeues, self.config.max_requeues,
                )
                if task.requeues > self.config.max_requeues:
                    job.failure = RemoteRunError(
                        f"shard {task.index} timed out on "
                        f"{task.requeues} workers; giving up instead of "
                        "consuming the fleet",
                        recoverable=True,
                    )
                    if job.on_task_done is not None:
                        callbacks.append((job.on_task_done, job.failure))
                        del self._jobs[job.job_id]
                    del self._tasks[task.wire_id]
                else:
                    self._queue.append(task.wire_id)
            self._state.notify_all()
        for on_task_done, failure in callbacks:
            on_task_done(-1, None, failure)

    def _serve_worker(self, conn: socket.socket) -> None:
        held: Optional[_RemoteTask] = None
        registered = False
        token = object()  # this connection's assignment identity
        worker_id: Optional[str] = None
        with self._state:
            if self._closed:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            self._conns.add(conn)
        try:
            worker_id = self._handshake(conn)
            if worker_id is None:
                return
            with self._state:
                self._health_for_locked(worker_id)
                self._active_workers += 1
                self._state.notify_all()
            registered = True
            while True:
                message = recv_msg(conn)
                if message is None:
                    return  # peer closed; finally-block requeues
                kind = message.get("type")
                if kind == "ready":
                    task = self._next_task(worker_id, token)
                    if task is None:
                        send_msg(conn, {"type": "shutdown"})
                        return
                    held = task
                    send_msg(
                        conn,
                        {
                            "type": "task",
                            "task_id": task.wire_id,
                            "fn": task.fn,
                            "cells": task.cells,
                        },
                    )
                elif kind == "result":
                    # clear the held task *before* acking: once the
                    # result is recorded, this worker dying can no
                    # longer requeue (and thus double-run) the shard
                    wire_id = message["task_id"]
                    held = None
                    callback = self._record_result(
                        wire_id, message["result"], token
                    )
                    if callback is not None:
                        on_task_done, index, result = callback
                        on_task_done(index, result, None)
                    send_msg(conn, {"type": "ack", "task_id": wire_id})
                elif kind == "error":
                    # deterministic failure is job-scoped: fail that
                    # job, keep serving the connection so co-tenant
                    # jobs keep their worker
                    wire_id = message["task_id"]
                    held = None
                    fail_callback = self._record_error(
                        wire_id, message["error"], token
                    )
                    if fail_callback is not None:
                        on_task_done, run_error = fail_callback
                        on_task_done(-1, None, run_error)
                else:
                    return  # protocol confusion: drop the connection
        except (OSError, pickle.PickleError, EOFError, ConnectionError):
            pass  # connection-level failure; finally-block requeues
        finally:
            fail_callback = None
            with self._state:
                self._conns.discard(conn)
                if registered:
                    self._active_workers -= 1
                if held is not None and token in self._revoked_tokens:
                    # the deadline sweep already revoked (and
                    # re-accounted) this assignment — a dead hung
                    # worker must not requeue the shard a second time
                    self._revoked_tokens.discard(token)
                    held = None
                if held is not None:
                    self._assigned -= 1
                    if registered and held.worker_id is not None:
                        self._note_offense_locked(
                            held.worker_id, "failure"
                        )
                    task = self._tasks.get(held.wire_id)
                    if task is not None and task.holder is not token:
                        task = None  # reassigned elsewhere; not ours
                    if task is not None and task.job_id == _CANARY_JOB:
                        # death during probation: straight back out
                        del self._tasks[task.wire_id]
                        if task.worker_id is not None:
                            self._quarantine_locked(
                                self._health_for_locked(task.worker_id),
                                reason="died holding canary",
                            )
                        task = None
                    job = (
                        self._jobs.get(task.job_id)
                        if task is not None
                        else None
                    )
                    if task is not None and job is not None:
                        task.holder = None
                        task.assigned_at = None
                        task.worker_id = None
                        task.requeues += 1
                        if task.requeues > self.config.max_requeues:
                            # worker *death* is an infrastructure
                            # failure; the surviving shards can still
                            # run elsewhere
                            if job.failure is None:
                                job.failure = RemoteRunError(
                                    f"shard {task.index} killed "
                                    f"{task.requeues} workers; giving up "
                                    "instead of consuming the fleet",
                                    recoverable=True,
                                )
                                if job.on_task_done is not None:
                                    fail_callback = (
                                        job.on_task_done,
                                        job.failure,
                                    )
                                    del self._jobs[job.job_id]
                            del self._tasks[held.wire_id]
                        else:
                            self._queue.append(held.wire_id)
                self._state.notify_all()
            if fail_callback is not None:
                on_task_done, run_error = fail_callback
                on_task_done(-1, None, run_error)
            try:
                conn.close()
            except OSError:
                pass


class RemoteBackend(ExecutorBackend):
    """Persistent remote dispatch with optional local worker spawning.

    Args:
        coordinator: ``HOST:PORT`` to bind (default: loopback with an
            ephemeral port — single-machine multi-process mode).
        spawn: local worker daemons to keep attached (default 2);
            ``0`` relies entirely on externally started workers, which
            may connect at any point while a run is in flight.

    The coordinator and spawned daemons persist across ``map_shards``
    calls — a harness that maps several grids (or several harnesses
    sharing one backend via :func:`shared_remote_backend`) pays daemon
    start-up and per-worker library rebuilds once, mirroring the warm
    process pool.  Daemons that died (or were killed by fault
    injection) are respawned at the next call.  :meth:`close` shuts
    the coordinator down and reaps the spawned daemons; external
    workers receive ``shutdown`` and exit on their own.
    """

    name = "remote"

    def __init__(
        self,
        coordinator: Optional[str] = None,
        spawn: Optional[int] = None,
        config: Optional[CoordinatorConfig] = None,
        task_deadline_s: Optional[float] = None,
    ):
        self.bind = coordinator if coordinator else "127.0.0.1:0"
        self.spawn = 2 if spawn is None else max(0, spawn)
        self.config = config or CoordinatorConfig.from_env()
        if task_deadline_s is not None:
            self.config = dataclasses.replace(
                self.config, task_deadline_s=task_deadline_s
            )
        self._lock = threading.Lock()
        self._coordinator: Optional[RemoteCoordinator] = None
        self._procs: List["subprocess.Popen[bytes]"] = []

    def _ensure_up(
        self,
    ) -> Tuple[RemoteCoordinator, List["subprocess.Popen[bytes]"]]:
        """Bind the coordinator once; top up daemons that have died.

        A coordinator that died ungracefully (see
        :meth:`RemoteCoordinator.kill`) is replaced by a fresh
        incarnation on the same bind — with a journal configured it
        replays recorded results and bumps the epoch, and surviving
        workers redial into it — so a persistent client session heals
        across coordinator crashes instead of erroring forever.
        """
        with self._lock:
            if self._coordinator is not None and not self._coordinator.alive():
                _LOG.warning(
                    "coordinator on %s died; rebinding a fresh incarnation",
                    self.bind,
                )
                self._coordinator = None
            if self._coordinator is None:
                # a dead incarnation's accept thread releases the port
                # only on its next poll tick, so rebinding the same
                # HOST:PORT right after a crash can transiently hit
                # EADDRINUSE — wait it out (bounded) instead of failing
                # the healing path
                deadline = time.monotonic() + self.config.shutdown_timeout
                while True:
                    try:
                        self._coordinator = RemoteCoordinator(
                            self.bind, config=self.config
                        )
                        break
                    except OSError as exc:
                        if (
                            exc.errno != errno.EADDRINUSE
                            or time.monotonic() >= deadline
                        ):
                            raise
                        time.sleep(self.config.poll_interval)
            self._procs = [
                proc for proc in self._procs if proc.poll() is None
            ]
            while len(self._procs) < self.spawn:
                self._procs.append(
                    spawn_local_worker(self._coordinator.address)
                )
            return self._coordinator, list(self._procs)

    def fleet_health(self) -> Dict[str, Dict[str, Any]]:
        """The live coordinator's health ledger ({} before first use)."""
        with self._lock:
            coordinator = self._coordinator
        if coordinator is None:
            return {}
        return coordinator.fleet_health()

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        if not shards:
            return []
        coordinator, workers = self._ensure_up()

        def spawned_alive() -> bool:
            return any(proc.poll() is None for proc in workers)

        liveness = spawned_alive if workers else None
        return coordinator.map_shards(fn, shards, liveness=liveness)

    def submit_cells(
        self,
        fn: Callable[..., Any],
        cells: Sequence[Cell],
        on_done: Callable[
            [Optional[List[Any]], Optional[RemoteRunError]], None
        ],
    ) -> None:
        """Enqueue one shard asynchronously (the futures entry point).

        The shard joins the coordinator session's shared queue, so
        concurrent clients' cells interleave onto whichever worker
        frees up first; ``on_done(result, failure)`` fires exactly once
        from a coordinator thread.
        """
        coordinator, workers = self._ensure_up()

        def spawned_alive() -> bool:
            return any(proc.poll() is None for proc in workers)

        liveness = spawned_alive if workers else None
        coordinator.submit_single(fn, cells, on_done, liveness=liveness)

    def close(self) -> None:
        """Drain in-flight tasks, shut the coordinator, reap daemons."""
        with self._lock:
            if self._coordinator is not None:
                self._coordinator.close(drain=True)
            self._coordinator = None
            procs, self._procs = self._procs, []
        for proc in procs:
            try:
                proc.wait(timeout=self.config.shutdown_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                # reaping a SIGKILLed child is bounded by the kernel
                proc.wait()  # repro: noqa[TMO001]


class FallbackBackend(ExecutorBackend):
    """Graceful degradation: finish a failed remote run locally.

    Wraps a primary backend (typically :class:`RemoteBackend`).  When a
    run dies of an *infrastructure* failure — the requeue budget is
    exhausted or the stall-abort probe fires
    (:class:`RemoteRunError` with ``recoverable=True``) — the shards
    that never completed are drained on a local fallback backend with a
    :class:`RuntimeWarning`, instead of losing the whole run minutes
    in.  Completed shards are *not* re-executed: cells are pure, so the
    remote partial results are exactly what the fallback would compute.

    Deterministic cell exceptions (``recoverable=False``) re-raise
    unchanged — they would fail identically on the fallback, and
    papering over them would turn a real bug into a slow mystery.

    A coordinator unreachable at *connect* time (the bind or dial
    raises a plain :class:`OSError` before any shard ran) degrades the
    same way: all shards drain locally with a warning.

    Args:
        primary: the backend to try first.
        fallback: local drain target (default :class:`SerialBackend`);
            must honour the same determinism contract.
    """

    name = "fallback"

    def __init__(
        self,
        primary: ExecutorBackend,
        fallback: Optional[ExecutorBackend] = None,
    ):
        self.primary = primary
        self.fallback = fallback or SerialBackend()

    def map_shards(
        self, fn: Callable[..., Any], shards: Sequence[Sequence[Cell]]
    ) -> List[List[Any]]:
        shards = [list(shard) for shard in shards]
        try:
            return self.primary.map_shards(fn, shards)
        except OSError as exc:
            # the coordinator could not even be reached (bind/dial
            # failure before any shard ran): drain everything locally
            warnings.warn(
                f"remote backend unreachable at connect time ({exc}); "
                f"draining all {len(shards)} shard(s) on the local "
                f"{type(self.fallback).__name__}",
                RuntimeWarning,
                stacklevel=2,
            )
            return self.fallback.map_shards(fn, shards)
        except RemoteRunError as exc:
            if not exc.recoverable:
                raise
            missing = [
                index
                for index in range(len(shards))
                if index not in exc.completed
            ]
            warnings.warn(
                f"remote run failed ({exc}); draining {len(missing)} of "
                f"{len(shards)} shard(s) on the local "
                f"{type(self.fallback).__name__}",
                RuntimeWarning,
                stacklevel=2,
            )
            drained = self.fallback.map_shards(
                fn, [shards[index] for index in missing]
            )
            merged: List[List[Any]] = []
            for index in range(len(shards)):
                if index in exc.completed:
                    merged.append(exc.completed[index])
                else:
                    merged.append(drained[missing.index(index)])
            return merged

    def close(self) -> None:
        """Release the primary backend's resources (if it has any)."""
        close = getattr(self.primary, "close", None)
        if close is not None:
            close()


#: Persistent remote backends, keyed by (bind, spawn, deadline, worker
#: env) so a run never reuses a fleet spawned with a different
#: PYTHONPATH or a different revocation policy.
_REMOTE_BACKENDS: Dict[
    Tuple[str, int, Optional[float], str], RemoteBackend
] = {}
_REMOTE_LOCK = threading.Lock()
_REMOTE_OWNER_PID: Optional[int] = None


def shared_remote_backend(
    coordinator: Optional[str] = None,
    spawn: Optional[int] = None,
    task_deadline_s: Optional[float] = None,
) -> RemoteBackend:
    """The persistent remote backend for an address/fleet spec.

    Like :func:`shared_process_pool`, created once and reused across
    runs (the coordinator keeps its port, spawned daemons keep their
    warm library/predictor state) and pid-stamped so forked children
    never reuse a parent's sockets.
    """
    global _REMOTE_OWNER_PID
    bind = coordinator if coordinator else "127.0.0.1:0"
    count = 2 if spawn is None else max(0, spawn)
    key = (bind, count, task_deadline_s, os.environ.get("PYTHONPATH", ""))
    with _REMOTE_LOCK:
        pid = os.getpid()
        if _REMOTE_OWNER_PID != pid:
            _REMOTE_BACKENDS.clear()  # references belong to the parent
            _REMOTE_OWNER_PID = pid
        backend = _REMOTE_BACKENDS.get(key)
        if backend is None:
            backend = RemoteBackend(
                coordinator=bind, spawn=count, task_deadline_s=task_deadline_s
            )
            _REMOTE_BACKENDS[key] = backend
        return backend


def shutdown_remote_backends() -> None:
    """Close every persistent remote backend (teardown / exit)."""
    with _REMOTE_LOCK:
        backends = list(_REMOTE_BACKENDS.values())
        _REMOTE_BACKENDS.clear()
        owned = _REMOTE_OWNER_PID == os.getpid()
    for backend in backends:
        if owned:
            backend.close()


atexit.register(shutdown_remote_backends)


# --------------------------------------------------------------------------
# Backend registry — future strategies plug in here.
# --------------------------------------------------------------------------

BackendFactory = Callable[..., ExecutorBackend]

_BACKEND_FACTORIES: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a dispatch strategy under a ``--grid-mode`` name.

    ``factory`` is called with the keyword options ``workers``,
    ``coordinator``, ``spawn`` and ``task_deadline_s`` and may ignore
    whichever do not apply.
    """
    _BACKEND_FACTORIES[name] = factory


def backend_names() -> Tuple[str, ...]:
    """Registered strategy names, stable order (registration order)."""
    return tuple(_BACKEND_FACTORIES)


def create_backend(
    name: str,
    workers: int = 1,
    coordinator: Optional[str] = None,
    spawn: Optional[int] = None,
    task_deadline_s: Optional[float] = None,
) -> ExecutorBackend:
    """Instantiate a registered backend by name."""
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ExperimentError(
            f"unknown execution backend {name!r}; "
            f"registered: {backend_names()}"
        )
    kwargs = {
        "workers": workers,
        "coordinator": coordinator,
        "spawn": spawn,
        "task_deadline_s": task_deadline_s,
    }
    # factories registered before task_deadline_s existed take three
    # keywords; pass each factory exactly what it declares so the
    # registry contract stays additive
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - C callables
        parameters = None
    if parameters is not None and not any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    ):
        kwargs = {k: v for k, v in kwargs.items() if k in parameters}
    return factory(**kwargs)


register_backend(
    "serial",
    lambda workers, coordinator, spawn, task_deadline_s: SerialBackend(),
)
register_backend(
    "thread",
    lambda workers, coordinator, spawn, task_deadline_s: ThreadBackend(
        workers
    ),
)
register_backend(
    "process",
    lambda workers, coordinator, spawn, task_deadline_s: ProcessBackend(
        workers
    ),
)
register_backend(
    "remote",
    lambda workers, coordinator, spawn, task_deadline_s: (
        shared_remote_backend(
            coordinator=coordinator,
            spawn=spawn,
            task_deadline_s=task_deadline_s,
        )
    ),
)
register_backend(
    "remote-fallback",
    lambda workers, coordinator, spawn, task_deadline_s: FallbackBackend(
        shared_remote_backend(
            coordinator=coordinator,
            spawn=spawn,
            task_deadline_s=task_deadline_s,
        )
    ),
)
