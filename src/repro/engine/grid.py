"""Sharded experiment-grid execution over pluggable backends.

Every experiment harness enumerates a grid of independent cells —
(network, node, threshold, tier) combinations, each a deterministic
function of its parameters — and the seed iterated them serially.
:class:`GridRunner` shards those cells and hands the shards to an
:class:`~repro.engine.backends.ExecutorBackend`: the in-process serial
reference, a thread pool, the *persistent* warm process pool (created
once per worker count, reused across harness and designer runs), or the
TCP coordinator that fans shards out to ``repro.engine.worker`` daemons
on other machines.  Cells that opt into ``cache_dir`` share the on-disk
objective/fitness caches
(:class:`~repro.engine.diskcache.FitnessDiskCache`) as their
cross-process — and, on a shared filesystem, cross-node — store.

Determinism contract: results are reassembled by shard index and cells
keep their submission order inside each shard, so the returned list is
identical — values and ordering — for one shard, two shards, N shards,
every backend, and the serial reference mode.  Cells must be pure
functions of their arguments (module-level callables, picklable
argument tuples); that purity is also what makes the remote backend's
fault tolerance free, because a reassigned cell recomputes the same
answer anywhere.

The warm-pool helpers (``shared_process_pool`` and friends) live in
:mod:`repro.engine.backends` and are re-exported here for
compatibility.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.engine.backends import (  # noqa: F401  (compat re-exports)
    Cell,
    ExecutorBackend,
    backend_names,
    create_backend,
    discard_process_pool,
    in_pool_worker,
    run_shard,
    shared_process_pool,
    shutdown_shared_pools,
)
from repro.engine.taskgraph import EngineSession
from repro.errors import ExperimentError


#: Modes that dispatch through the remote coordinator (and therefore
#: accept ``coordinator=``, ``workers=0``, and per-cell sharding).
REMOTE_MODES = ("remote", "remote-fallback")


def grid_modes() -> tuple:
    """Valid ``GridConfig.mode`` values — ``auto`` plus the registry.

    Computed on demand so backends registered after this module was
    imported (the whole point of :func:`register_backend`) become valid
    modes immediately.
    """
    return ("auto",) + backend_names()


@dataclass(frozen=True)
class GridConfig:
    """Execution policy for experiment grids.

    Attributes:
        mode: ``auto`` or a registered backend name (``serial`` /
            ``thread`` / ``process`` / ``remote``).  ``auto`` resolves
            to ``process`` on multi-CPU machines with more than one
            cell, else ``serial``; it never resolves to ``remote``.
        workers: pool size for the parallel modes (default: CPU count).
            In ``remote`` mode this is the number of *local* worker
            daemons spawned for the run (default 2); ``0`` means no
            local spawning — externally started workers
            (``python -m repro.engine.worker --connect HOST:PORT``) do
            all the work and may join while the run is in flight.
        shards: number of contiguous cell groups dispatched as units
            (default: one per worker; in ``remote`` mode one per cell,
            so joining workers and reassignment stay fine-grained).
            Shard count changes scheduling granularity only, never
            results.
        coordinator: ``HOST:PORT`` the remote coordinator binds
            (default ``127.0.0.1:0`` — loopback, ephemeral port).  Bind
            a routable host to accept workers from other machines.
        task_deadline_s: per-task deadline in seconds for the remote
            modes — a shard unacked past this is revoked from its
            (presumably hung) worker and requeued against the requeue
            budget; the worker's late result is discarded (``None`` =
            wait forever, the pre-deadline behaviour).
    """

    mode: str = "auto"
    workers: Optional[int] = None
    shards: Optional[int] = None
    coordinator: Optional[str] = None
    task_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        modes = grid_modes()
        if self.mode not in modes:
            raise ExperimentError(
                f"unknown grid mode {self.mode!r}; expected one of {modes}"
            )
        minimum_workers = 0 if self.mode in REMOTE_MODES else 1
        if self.workers is not None and self.workers < minimum_workers:
            raise ExperimentError(
                f"workers must be >= {minimum_workers}, got {self.workers}"
            )
        if self.shards is not None and self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")
        if self.coordinator is not None and self.mode not in REMOTE_MODES:
            raise ExperimentError(
                f"coordinator is only meaningful with modes {REMOTE_MODES}, "
                f"got mode={self.mode!r}"
            )
        if self.task_deadline_s is not None:
            if self.mode not in REMOTE_MODES:
                raise ExperimentError(
                    "task_deadline_s is only meaningful with modes "
                    f"{REMOTE_MODES}, got mode={self.mode!r}"
                )
            if self.task_deadline_s <= 0:
                raise ExperimentError(
                    f"task_deadline_s must be > 0, got {self.task_deadline_s}"
                )

    def resolved_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutionPlan:
    """One declarative unit of grid work: what to run, over what.

    The consolidated :meth:`GridRunner.run` entry point executes plans;
    the two shapes correspond to the legacy ``map``/``map_batches``
    pair:

    - ``ExecutionPlan.for_cells(fn, cells)`` — evaluate ``fn(*cell)``
      per cell; ``run`` returns ``[fn(*cell) for cell in cells]``.
    - ``ExecutionPlan.for_batches(fn, items, extra)`` — ``fn`` is
      *batch-decomposable* (``fn(a + b) == fn(a) + fn(b)``, one result
      per item); ``run`` returns ``list(fn(items, *extra))`` computed
      as contiguous sub-batches.

    Plans are inert data: building one performs no work and implies no
    execution policy — mode, workers, and sharding stay on the runner's
    :class:`GridConfig`, so the same plan can be handed to a serial
    reference runner and a remote-session runner for an identity check.
    """

    kind: str
    fn: Callable[..., Any]
    items: Tuple[Any, ...]
    extra: Tuple[Any, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ("cells", "batches"):
            raise ExperimentError(
                f"unknown plan kind {self.kind!r}; "
                "expected 'cells' or 'batches'"
            )
        if self.kind == "cells" and self.extra:
            raise ExperimentError(
                "extra arguments are only meaningful for batch plans "
                "(cells carry their own arguments)"
            )

    @classmethod
    def for_cells(
        cls, fn: Callable[..., Any], cells: Sequence[Cell]
    ) -> "ExecutionPlan":
        """A per-cell plan: ``fn(*cell)`` for every cell, in order."""
        return cls(
            kind="cells", fn=fn, items=tuple(tuple(c) for c in cells)
        )

    @classmethod
    def for_batches(
        cls,
        fn: Callable[..., List[Any]],
        items: Sequence[Any],
        extra: Sequence[Any] = (),
    ) -> "ExecutionPlan":
        """A batch plan: ``fn(sub_batch, *extra)`` over contiguous splits."""
        return cls(
            kind="batches", fn=fn, items=tuple(items), extra=tuple(extra)
        )


class GridRunner:
    """Deterministically ordered execution over independent grid cells.

    Args:
        config: execution policy (defaults to ``auto``).

    :meth:`run` is the single entry point: build an
    :class:`ExecutionPlan` (per-cell or batch-decomposable) and the
    runner executes it over the configured backend through the
    submit/future engine (:class:`~repro.engine.taskgraph
    .EngineSession`), returning results in item order for every mode
    and shard count — sharding can only change *where* and *when* a
    cell runs, never what is returned or in which slot.  A broken
    process pool degrades to the serial reference, and a remote worker
    dying mid-cell has the cell reassigned (results are a pure function
    of the cells, so the answer is the same — only slower).

    Long-lived clients that want to overlap stages can skip the
    blocking entry point and drive a :meth:`session` directly:
    ``submit`` shards as their inputs become available, gather futures
    when (and only when) the results are needed.
    """

    def __init__(self, config: Optional[GridConfig] = None):
        self.config = config or GridConfig()

    def resolved_mode(self, n_cells: int) -> str:
        mode = self.config.mode
        if mode != "auto":
            return mode
        if n_cells > 1 and self.config.resolved_workers() > 1:
            return "process"
        return "serial"

    def shard_cells(
        self, cells: Sequence[Cell], default_count: Optional[int] = None
    ) -> List[List[Cell]]:
        """Split cells into contiguous shards preserving order.

        Concatenating the shards in index order restores the input
        exactly; shard sizes differ by at most one cell.  The shard
        count is ``config.shards`` when set, else ``default_count``,
        else one shard per resolved worker.
        """
        cells = list(cells)
        count = self.config.shards
        if count is None:
            count = (
                default_count
                if default_count is not None
                else min(len(cells), self.config.resolved_workers())
            )
        count = max(1, min(count, len(cells)))
        base, extra = divmod(len(cells), count)
        shards: List[List[Cell]] = []
        start = 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            shards.append(cells[start:stop])
            start = stop
        return shards

    def backend(self, mode: str, n_shards: int) -> ExecutorBackend:
        """Instantiate the executor backend for a resolved mode."""
        workers = self.config.resolved_workers()
        if mode == "thread":
            workers = min(workers, max(1, n_shards))
        return create_backend(
            mode,
            workers=workers,
            coordinator=self.config.coordinator,
            # remote: spawn exactly the configured count (0 = external
            # workers only); None falls back to the backend default of 2
            spawn=self.config.workers if mode in REMOTE_MODES else None,
            task_deadline_s=self.config.task_deadline_s,
        )

    def session(
        self, n_tasks: int = 0, max_inflight: Optional[int] = None
    ) -> EngineSession:
        """An :class:`EngineSession` over this runner's resolved backend.

        ``n_tasks`` is the expected task count, used only for mode
        resolution (``auto`` picks serial for a single local task);
        ``0`` means "unknown, assume many".  The caller owns the
        session (``with runner.session() as session:``); closing it
        leaves shared backends (warm pool, coordinator fleet) up.
        """
        n_tasks = n_tasks or (self.config.resolved_workers() + 1)
        mode = self.resolved_mode(n_tasks)
        if (mode == "process" or mode in REMOTE_MODES) and in_pool_worker():
            mode = "serial"  # no nested fan-out — see in_pool_worker()
        backend = self.backend(mode, n_shards=n_tasks)
        return EngineSession(backend, max_inflight=max_inflight)

    def run(self, plan: ExecutionPlan) -> List[Any]:
        """Execute one plan; results in item order (the single entry point).

        Per-cell plans return ``[fn(*cell) for cell in cells]``; batch
        plans return ``list(fn(items, *extra))`` computed over
        contiguous sub-batches (sized by ``config.shards`` or one per
        resolved worker — the batched accuracy stage uses this to shard
        a multiplier stack into sub-stacks that each keep the one-pass
        :meth:`~repro.nn.inference.QuantCNN.forward_stack` advantage).
        Identical — values and ordering — for every mode, shard count,
        and backend; serial resolution short-circuits to the direct
        reference call without touching an executor.
        """
        if plan.kind == "cells":
            return self._run_cells(plan.fn, list(plan.items))
        return self._run_batches(plan.fn, list(plan.items), plan.extra)

    def _run_cells(
        self, fn: Callable[..., Any], cells: List[Cell]
    ) -> List[Any]:
        if not cells:
            return []
        mode = self.resolved_mode(len(cells))
        if (mode == "process" or mode in REMOTE_MODES) and in_pool_worker():
            mode = "serial"  # no nested fan-out — see in_pool_worker()
        if mode == "serial" or (len(cells) == 1 and mode not in REMOTE_MODES):
            return run_shard(fn, cells)

        shards = self.shard_cells(
            cells, default_count=len(cells) if mode in REMOTE_MODES else None
        )
        backend = self.backend(mode, n_shards=len(shards))
        with EngineSession(backend) as session:
            futures = [session.submit(fn, shard) for shard in shards]
            shard_results = session.gather(futures)
        return [result for shard in shard_results for result in shard]

    def _run_batches(
        self,
        fn: Callable[..., List[Any]],
        items: List[Any],
        extra: Tuple[Any, ...],
    ) -> List[Any]:
        if not items:
            return []
        mode = self.resolved_mode(len(items))
        if (mode == "process" or mode in REMOTE_MODES) and in_pool_worker():
            mode = "serial"  # no nested fan-out — see in_pool_worker()
        if mode == "serial":
            return list(fn(items, *extra))
        batches = self.shard_cells(items)
        if len(batches) == 1:
            return list(fn(items, *extra))
        cells = [(batch,) + extra for batch in batches]
        results = self._run_cells(fn, cells)
        return [value for batch_result in results for value in batch_result]

    # -- deprecated map-style shims ------------------------------------

    def map(self, fn: Callable[..., Any], cells: Sequence[Cell]) -> List[Any]:
        """Deprecated: use ``run(ExecutionPlan.for_cells(fn, cells))``."""
        warnings.warn(
            "GridRunner.map is deprecated; use "
            "GridRunner.run(ExecutionPlan.for_cells(fn, cells))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(ExecutionPlan.for_cells(fn, cells))

    def map_batches(
        self,
        fn: Callable[..., List[Any]],
        items: Sequence[Any],
        extra: Sequence[Any] = (),
    ) -> List[Any]:
        """Deprecated: use ``run(ExecutionPlan.for_batches(fn, items))``."""
        warnings.warn(
            "GridRunner.map_batches is deprecated; use "
            "GridRunner.run(ExecutionPlan.for_batches(fn, items, extra))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(ExecutionPlan.for_batches(fn, items, extra))
