"""Sharded experiment-grid execution with a warm process pool.

Every experiment harness enumerates a grid of independent cells —
(network, node, threshold, tier) combinations, each a deterministic
function of its parameters — and the seed iterated them serially.
:class:`GridRunner` shards those cells across a *persistent* process
pool: the pool is created once per worker count and reused across
harness (and designer) runs, so paper-scale sweeps amortise worker
start-up instead of paying it per generation or per figure.  Workers
forked from a warm parent inherit the in-process library/predictor
memos, and cells that opt into ``cache_dir`` share the on-disk fitness
cache (:class:`~repro.engine.diskcache.FitnessDiskCache`) as their
cross-process store.

Determinism contract: results are reassembled by shard index and cells
keep their submission order inside each shard, so the returned list is
identical — values and ordering — for one shard, two shards, N shards,
and the serial reference mode.  Cells must be pure functions of their
arguments (module-level callables, picklable argument tuples).
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

Cell = Tuple[Any, ...]

_MODES = ("auto", "serial", "thread", "process")

#: Pools kept alive across runs, keyed by configured worker count.
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOL_LOCK = threading.Lock()
#: Pid that owns the registry — forked children inherit the dict but
#: not the executors' manager threads, so they must never reuse it.
_POOL_OWNER_PID: Optional[int] = None
#: Set (via the pool initializer) in every worker process.
_IN_POOL_WORKER = False


def _mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """True inside a shared-pool worker process.

    Work dispatched from a worker must not open nested process pools
    (executor teardown across fork levels deadlocks at interpreter
    exit, and N x M workers oversubscribe the machine) — callers
    degrade to in-process execution instead, which returns identical
    results because cells and fitness are pure functions.
    """
    return _IN_POOL_WORKER


def shared_process_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process pool for a worker count (created once).

    Create it *after* heavyweight shared state (the step-1 library, the
    shared predictor) exists in the parent: workers fork with those
    memos warm and never rebuild them.  Thread-safe — concurrent
    callers (e.g. thread-mode grid cells whose GAs fan out to
    processes) share one pool instead of leaking duplicates.

    A forked child (a grid worker whose cell itself requests process
    fan-out) inherits the registry dict but not the executors' manager
    threads; using an inherited executor deadlocks.  The registry is
    therefore pid-stamped: the first call in a new process drops every
    inherited entry and builds its own pool.
    """
    global _POOL_OWNER_PID
    with _POOL_LOCK:
        pid = os.getpid()
        if _POOL_OWNER_PID != pid:
            # references only — the executors belong to the parent
            _PROCESS_POOLS.clear()
            _POOL_OWNER_PID = pid
        pool = _PROCESS_POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_mark_pool_worker
            )
            _PROCESS_POOLS[workers] = pool
        return pool


def discard_process_pool(workers: int) -> None:
    """Drop (and shut down) one persistent pool, e.g. after a break."""
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.pop(workers, None)
        owned = _POOL_OWNER_PID == os.getpid()
    if pool is not None and owned:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every persistent pool (test teardown / interpreter exit)."""
    with _POOL_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
        owned = _POOL_OWNER_PID == os.getpid()
    for pool in pools:
        if owned:  # inherited executors belong to the parent process
            pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)


def run_shard(fn: Callable[..., Any], cells: Sequence[Cell]) -> List[Any]:
    """Evaluate one shard serially (also the serial reference path)."""
    return [fn(*cell) for cell in cells]


@dataclass(frozen=True)
class GridConfig:
    """Execution policy for experiment grids.

    Attributes:
        mode: ``auto`` / ``serial`` / ``thread`` / ``process``.  ``auto``
            resolves to ``process`` on multi-CPU machines with more than
            one cell, else ``serial``.
        workers: pool size for the parallel modes (default: CPU count).
        shards: number of contiguous cell groups dispatched as units
            (default: one per worker, capped at the cell count).  Shard
            count changes scheduling granularity only, never results.
    """

    mode: str = "auto"
    workers: Optional[int] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ExperimentError(
                f"unknown grid mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.workers is not None and self.workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")

    def resolved_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


class GridRunner:
    """Deterministically ordered map over independent experiment cells.

    Args:
        config: execution policy (defaults to ``auto``).

    ``map(fn, cells)`` returns ``[fn(*cell) for cell in cells]`` in cell
    order for every mode and shard count; sharding can only change
    *where* and *when* a cell runs, never what is returned or in which
    slot.  A broken process pool degrades to the serial reference
    (results are a pure function of the cells, so the answer is the
    same — only slower).
    """

    def __init__(self, config: Optional[GridConfig] = None):
        self.config = config or GridConfig()

    def resolved_mode(self, n_cells: int) -> str:
        mode = self.config.mode
        if mode != "auto":
            return mode
        if n_cells > 1 and self.config.resolved_workers() > 1:
            return "process"
        return "serial"

    def shard_cells(self, cells: Sequence[Cell]) -> List[List[Cell]]:
        """Split cells into contiguous shards preserving order.

        Concatenating the shards in index order restores the input
        exactly; shard sizes differ by at most one cell.
        """
        cells = list(cells)
        count = self.config.shards
        if count is None:
            count = min(len(cells), self.config.resolved_workers())
        count = max(1, min(count, len(cells)))
        base, extra = divmod(len(cells), count)
        shards: List[List[Cell]] = []
        start = 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            shards.append(cells[start:stop])
            start = stop
        return shards

    def map(self, fn: Callable[..., Any], cells: Sequence[Cell]) -> List[Any]:
        """Evaluate ``fn(*cell)`` for every cell, results in cell order.

        ``fn`` must be a module-level callable and cells picklable
        tuples (process mode ships both to the workers).
        """
        cells = [tuple(cell) for cell in cells]
        if not cells:
            return []
        mode = self.resolved_mode(len(cells))
        if mode == "process" and in_pool_worker():
            mode = "serial"  # no nested pools — see in_pool_worker()
        if mode == "serial" or len(cells) == 1:
            return run_shard(fn, cells)

        shards = self.shard_cells(cells)
        functions = [fn] * len(shards)
        if mode == "thread":
            with ThreadPoolExecutor(
                max_workers=min(self.config.resolved_workers(), len(shards))
            ) as pool:
                shard_results = list(pool.map(run_shard, functions, shards))
        else:
            # keyed by the *configured* count (not clamped to the shard
            # count) so every run shares one canonical warm pool
            workers = self.config.resolved_workers()
            pool = shared_process_pool(workers)
            try:
                shard_results = list(pool.map(run_shard, functions, shards))
            except BrokenProcessPool:
                discard_process_pool(workers)
                return run_shard(fn, cells)
        return [result for shard in shard_results for result in shard]
